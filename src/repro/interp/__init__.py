"""Craig interpolation from resolution proofs — an "other application".

The paper closes §1 by noting that checkable resolution proofs enable
more than validation; the most influential follow-on use (McMillan,
CAV 2003 — contemporaneous with this paper) is computing *Craig
interpolants* from the very resolution traces this library checks. Given
an unsatisfiable A ∧ B and a resolution refutation, the interpolant I
satisfies:

1. A implies I,
2. I ∧ B is unsatisfiable,
3. I mentions only variables shared by A and B.

Interpolants are the engine of unbounded SAT-based model checking: they
overapproximate reachable-state images using nothing but the proofs the
solver already produces.
"""

from repro.interp.interpolant import Interpolant, compute_interpolant, verify_interpolant

__all__ = ["Interpolant", "compute_interpolant", "verify_interpolant"]
