"""McMillan-style interpolation over the checked resolution graph.

Interpolant construction (McMillan's system):

* leaf clause in A  ->  OR of its literals over *shared* variables
  (False when none);
* leaf clause in B  ->  True;
* resolution on pivot v:
  - v local to A (does not occur in B): I = I_left OR I_right,
  - otherwise (v occurs in B):          I = I_left AND I_right.

The partial interpolant of the empty-clause root is the interpolant of
(A, B). We build it as a :class:`repro.circuits.Circuit` over one input
net per shared variable, so it can be simulated, printed, or Tseitin-
encoded straight back into CNF for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.circuits.netlist import Circuit
from repro.circuits.tseitin import tseitin_encode
from repro.cnf import CnfFormula
from repro.resolution.graph import EMPTY_CLAUSE_ID, ResolutionGraph
from repro.trace.records import Trace


@dataclass
class Interpolant:
    """The interpolant circuit plus its variable interface.

    ``circuit`` has one input per entry of ``input_vars`` (same order) and
    a single output computing I. ``shared_vars`` is the full shared set
    (a superset of ``input_vars`` when some shared variables ended up
    unused by the proof).
    """

    circuit: Circuit
    input_vars: list[int]
    shared_vars: set[int]

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Evaluate I under a (total over input_vars) assignment."""
        inputs = [assignment[var] for var in self.input_vars]
        return self.circuit.simulate(inputs)[0]

    def to_cnf_implication(self, num_formula_vars: int) -> tuple[CnfFormula, int]:
        """Tseitin-encode I over the original variable numbering.

        Returns ``(formula, output_var)`` where ``formula`` contains only
        the encoding clauses (callers add A- or B-clauses plus a unit on
        ``output_var``) and input nets are bound to the original variable
        IDs.
        """
        formula = CnfFormula(num_formula_vars)
        bindings = dict(zip(self.circuit.inputs, self.input_vars))
        encoded = tseitin_encode(self.circuit, formula, bindings=bindings)
        return formula, encoded.var(self.circuit.outputs[0])


def compute_interpolant(
    formula: CnfFormula,
    trace: Trace,
    a_clause_ids: Iterable[int],
) -> Interpolant:
    """Compute the Craig interpolant of (A, B) from a checked refutation.

    ``a_clause_ids`` selects the A-partition among the original clauses;
    every other original clause belongs to B. The trace is validated (via
    the resolution-graph construction) before interpolation begins.
    """
    a_ids = set(a_clause_ids)
    for cid in a_ids:
        if not 1 <= cid <= formula.num_clauses:
            raise ValueError(f"A-partition references unknown clause {cid}")

    graph = ResolutionGraph.from_trace(formula, trace)

    a_vars: set[int] = set()
    b_vars: set[int] = set()
    for clause in formula:
        target = a_vars if clause.cid in a_ids else b_vars
        target.update(clause.variables())
    shared = a_vars & b_vars

    circuit = Circuit(name="interpolant")
    input_vars = sorted(shared)
    net_of_var = {var: circuit.add_input() for var in input_vars}

    const_true: int | None = None
    const_false: int | None = None

    def true_net() -> int:
        nonlocal const_true
        if const_true is None:
            const_true = circuit.const(True)
        return const_true

    def false_net() -> int:
        nonlocal const_false
        if const_false is None:
            const_false = circuit.const(False)
        return const_false

    def or_nets(nets: list[int]) -> int:
        if not nets:
            return false_net()
        if len(nets) == 1:
            return nets[0]
        return circuit.or_(*nets)

    def leaf_interpolant(cid: int) -> int:
        if cid not in a_ids:
            return true_net()
        literal_nets = []
        for lit in graph.literals[cid]:
            var = abs(lit)
            if var in shared:
                net = net_of_var[var]
                literal_nets.append(net if lit > 0 else circuit.not_(net))
        return or_nets(literal_nets)

    def combine(pivot: int, left: int, right: int) -> int:
        if pivot in b_vars:
            return circuit.and_(left, right)
        return circuit.or_(left, right)

    partial: dict[int, int] = {}

    def interpolant_of(cid: int) -> int:
        cached = partial.get(cid)
        if cached is not None:
            return cached
        if graph.is_leaf(cid) and cid != EMPTY_CLAUSE_ID:
            net = leaf_interpolant(cid)
            partial[cid] = net
            return net
        sources = graph.parents[cid]
        accumulated_net = interpolant_of(sources[0])
        accumulated_lits: FrozenSet[int] = graph.literals[sources[0]]
        for source in sources[1:]:
            source_lits = graph.literals[source]
            pivot = _pivot_between(accumulated_lits, source_lits, cid)
            accumulated_net = combine(pivot, accumulated_net, interpolant_of(source))
            accumulated_lits = (accumulated_lits | source_lits) - {pivot, -pivot}
        partial[cid] = accumulated_net
        return accumulated_net

    # The DAG is shallow per-node but long end-to-end: process in ID order
    # so the recursion above only ever descends one level.
    for cid in sorted(graph.parents):
        if cid != EMPTY_CLAUSE_ID:
            interpolant_of(cid)
    root = interpolant_of(EMPTY_CLAUSE_ID)
    circuit.mark_output(root)
    return Interpolant(circuit=circuit, input_vars=input_vars, shared_vars=shared)


def _pivot_between(left: FrozenSet[int], right: FrozenSet[int], cid: int) -> int:
    clashing = [abs(lit) for lit in left if -lit in right]
    if len(clashing) != 1:
        raise AssertionError(
            f"node {cid}: resolution chain lost the exactly-one-clash "
            "invariant (checked earlier, so this is a bug)"
        )
    return clashing[0]


def verify_interpolant(
    formula: CnfFormula,
    a_clause_ids: Iterable[int],
    interpolant: Interpolant,
) -> bool:
    """Check both interpolant obligations with independent SAT calls.

    (1) A AND NOT I is unsatisfiable (so A implies I);
    (2) I AND B is unsatisfiable.
    The variable condition holds by construction (inputs are shared vars).
    """
    from repro.solver import Solver, SolverConfig  # local: avoid cycle at import

    a_ids = set(a_clause_ids)
    encoding, output_var = interpolant.to_cnf_implication(formula.num_vars)

    def side_check(clause_ids: Iterable[int], output_literal: int) -> bool:
        side = CnfFormula(encoding.num_vars)
        for clause in encoding:
            side.add_clause(list(clause.literals))
        for cid in clause_ids:
            side.add_clause(list(formula[cid].literals))
        side.add_clause([output_literal])
        return Solver(side, SolverConfig()).solve().is_unsat

    b_ids = [cid for cid in range(1, formula.num_clauses + 1) if cid not in a_ids]
    return side_check(sorted(a_ids), -output_var) and side_check(b_ids, output_var)
