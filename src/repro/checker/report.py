"""The result object shared by all checkers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.checker.errors import CheckFailure, FailureKind

#: Version of the persisted ``CheckReport`` JSON payload. Bump whenever a
#: field changes meaning or shape: the verdict cache and the service
#: journal refuse to replay entries written under a different version, so
#: a stale on-disk verdict can never masquerade as a current one.
REPORT_SCHEMA_VERSION = 1


def _jsonable(value):
    """Coerce a failure-context value into something JSON can round-trip.

    Context values are debugging payloads (clause IDs, literal tuples,
    occasionally a set of variables); anything exotic degrades to ``repr``
    rather than poisoning the whole report serialization.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(item) for item in value)
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    return repr(value)


def failure_to_json(failure: CheckFailure) -> dict:
    """Serialize a :class:`CheckFailure` into the stable report schema."""
    return {
        "kind": failure.kind.value,
        "message": failure.message,
        "context": {key: _jsonable(val) for key, val in failure.context.items()},
    }


def failure_from_json(payload: dict) -> CheckFailure:
    """Rebuild a :class:`CheckFailure` from its JSON form."""
    return CheckFailure(
        FailureKind(payload["kind"]),
        payload["message"],
        **payload.get("context", {}),
    )


@dataclass
class CheckReport:
    """Outcome of a checking run.

    ``verified`` is True only when the empty clause was derived and every
    intermediate check passed. ``clauses_built`` / ``total_learned`` feed
    Table 2's "Num. Cls Built" and "Built %" columns; ``peak_memory_units``
    is the logical peak (see :mod:`repro.checker.memory`).

    ``original_core`` (depth-first and hybrid only) is the set of original
    clause IDs the proof touched — an unsatisfiable core (§4, Table 3).
    ``learned_used`` is the analogous set of learned clause IDs.

    ``window_stats`` (parallel checker only) holds one summary dict per
    verified window: per-window builds, resolutions, interface sizes and
    peak memory. ``peak_memory_units`` is then the max across workers plus
    the coordinator's interface overhead, not a sum.

    ``degradation`` (supervisor only) records the attempt ladder that led
    to this verdict: one dict per attempt with the checker method, its
    outcome (``"verified"`` / a :class:`~repro.checker.errors.FailureKind`
    value) and elapsed seconds, in the order tried. A verdict reached via
    fallback therefore states *how* it was reached. ``recovery`` (parallel
    checker only) logs worker-level fault handling: crashes, hangs,
    retries and in-process re-assignments, one dict per event.

    ``fingerprint`` (service layer) names the exact artifacts this verdict
    is about: SHA-256 hex digests of the formula, the trace, and the
    checking options, as computed by :mod:`repro.service.fingerprint`. A
    persisted report (verdict cache, job results) always carries it, so a
    verdict can be audited against — and never returned for — different
    inputs. ``from_cache`` is a runtime-only flag set by the service when
    a report was served from the verdict cache; it is not serialized.
    """

    method: str
    verified: bool
    failure: CheckFailure | None = None
    clauses_built: int = 0
    total_learned: int = 0
    peak_memory_units: int = 0
    check_time: float = 0.0
    resolutions: int = 0
    original_core: set[int] | None = None
    learned_used: set[int] | None = None
    window_stats: list[dict] | None = None
    degradation: list[dict] | None = None
    recovery: list[dict] | None = None
    fingerprint: dict | None = None
    from_cache: bool = False
    # Core-first pruning summary (``PrunePlan.to_dict()``) when the check
    # ran under a prune plan; ``None`` for unpruned runs. Additive and
    # optional, so the report schema version is unchanged.
    prune: dict | None = None
    # Resident-memory high-water marks
    # (:func:`repro.checker.kernel.engine_memory_stats`): peak logical
    # units, peak unique interned clauses and peak measured store bytes;
    # the streaming checker adds its budget/spill counters. Additive and
    # optional — schema version unchanged.
    memory: dict | None = None
    # Clausal-proof statistics (:class:`repro.proofs.DratChecker`): step
    # counts, RUP vs RAT lemma split, resolvent checks and the checking
    # mode (forward/backward). ``None`` for resolution-trace checks.
    # Additive and optional — schema version unchanged.
    proof: dict | None = None

    @property
    def built_pct(self) -> float:
        """Percentage of learned clauses the checker had to construct."""
        if self.total_learned == 0:
            return 0.0
        return 100.0 * self.clauses_built / self.total_learned

    def raise_if_failed(self) -> None:
        """Re-raise the recorded failure (for callers preferring exceptions)."""
        if self.failure is not None:
            raise self.failure
        if not self.verified:
            raise AssertionError("check unverified but no failure recorded")

    def to_json(self) -> dict:
        """The stable, documented JSON form of this report.

        The payload always carries ``schema_version`` =
        :data:`REPORT_SCHEMA_VERSION`; consumers (the verdict cache, the
        service journal, ``repro check --format json`` scrapers) must
        reject any other version rather than guess at field meanings.
        Optional fields are present only when set, and set-valued fields
        are emitted as sorted lists so the payload is deterministic.
        """
        payload: dict = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "method": self.method,
            "verified": self.verified,
            "clauses_built": self.clauses_built,
            "total_learned": self.total_learned,
            "peak_memory_units": self.peak_memory_units,
            "check_time_s": round(self.check_time, 6),
            "resolutions": self.resolutions,
        }
        if self.failure is not None:
            payload["failure"] = failure_to_json(self.failure)
        if self.original_core is not None:
            payload["original_core"] = sorted(self.original_core)
        if self.learned_used is not None:
            payload["learned_used"] = sorted(self.learned_used)
        if self.window_stats is not None:
            payload["window_stats"] = self.window_stats
        if self.degradation is not None:
            payload["degradation"] = self.degradation
        if self.recovery is not None:
            payload["recovery"] = self.recovery
        if self.fingerprint is not None:
            payload["fingerprint"] = self.fingerprint
        if self.prune is not None:
            payload["prune"] = self.prune
        if self.memory is not None:
            payload["memory"] = self.memory
        if self.proof is not None:
            payload["proof"] = self.proof
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "CheckReport":
        """Rebuild a report from :meth:`to_json` output.

        Raises ``ValueError`` on a missing or different ``schema_version``
        — deserializing across schema versions is exactly the bug the
        version field exists to prevent.
        """
        version = payload.get("schema_version")
        if version != REPORT_SCHEMA_VERSION:
            raise ValueError(
                f"report schema version {version!r} is not the supported "
                f"version {REPORT_SCHEMA_VERSION}"
            )
        failure = payload.get("failure")
        core = payload.get("original_core")
        learned_used = payload.get("learned_used")
        return cls(
            method=payload["method"],
            verified=payload["verified"],
            failure=failure_from_json(failure) if failure is not None else None,
            clauses_built=payload.get("clauses_built", 0),
            total_learned=payload.get("total_learned", 0),
            peak_memory_units=payload.get("peak_memory_units", 0),
            check_time=payload.get("check_time_s", 0.0),
            resolutions=payload.get("resolutions", 0),
            original_core=set(core) if core is not None else None,
            learned_used=set(learned_used) if learned_used is not None else None,
            window_stats=payload.get("window_stats"),
            degradation=payload.get("degradation"),
            recovery=payload.get("recovery"),
            fingerprint=payload.get("fingerprint"),
            prune=payload.get("prune"),
            memory=payload.get("memory"),
            proof=payload.get("proof"),
        )

    def summary(self) -> str:
        status = "Check Succeeded" if self.verified else f"Check Failed: {self.failure}"
        line = (
            f"[{self.method}] {status} | built {self.clauses_built}/"
            f"{self.total_learned} learned ({self.built_pct:.1f}%) | "
            f"peak {self.peak_memory_units} units | {self.check_time:.3f}s"
        )
        if self.from_cache:
            line += " | cached"
        if self.prune is not None:
            line += (
                f" | pruned {self.prune.get('skipped', 0)} dead "
                f"({100.0 * self.prune.get('dead_fraction', 0.0):.1f}%)"
            )
        if self.degradation and len(self.degradation) > 1:
            ladder = " -> ".join(
                f"{attempt['method']}:{attempt['outcome']}" for attempt in self.degradation
            )
            line += f" | ladder {ladder}"
        return line
