"""The result object shared by all checkers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.checker.errors import CheckFailure


@dataclass
class CheckReport:
    """Outcome of a checking run.

    ``verified`` is True only when the empty clause was derived and every
    intermediate check passed. ``clauses_built`` / ``total_learned`` feed
    Table 2's "Num. Cls Built" and "Built %" columns; ``peak_memory_units``
    is the logical peak (see :mod:`repro.checker.memory`).

    ``original_core`` (depth-first and hybrid only) is the set of original
    clause IDs the proof touched — an unsatisfiable core (§4, Table 3).
    ``learned_used`` is the analogous set of learned clause IDs.

    ``window_stats`` (parallel checker only) holds one summary dict per
    verified window: per-window builds, resolutions, interface sizes and
    peak memory. ``peak_memory_units`` is then the max across workers plus
    the coordinator's interface overhead, not a sum.

    ``degradation`` (supervisor only) records the attempt ladder that led
    to this verdict: one dict per attempt with the checker method, its
    outcome (``"verified"`` / a :class:`~repro.checker.errors.FailureKind`
    value) and elapsed seconds, in the order tried. A verdict reached via
    fallback therefore states *how* it was reached. ``recovery`` (parallel
    checker only) logs worker-level fault handling: crashes, hangs,
    retries and in-process re-assignments, one dict per event.
    """

    method: str
    verified: bool
    failure: CheckFailure | None = None
    clauses_built: int = 0
    total_learned: int = 0
    peak_memory_units: int = 0
    check_time: float = 0.0
    resolutions: int = 0
    original_core: set[int] | None = None
    learned_used: set[int] | None = None
    window_stats: list[dict] | None = None
    degradation: list[dict] | None = None
    recovery: list[dict] | None = None

    @property
    def built_pct(self) -> float:
        """Percentage of learned clauses the checker had to construct."""
        if self.total_learned == 0:
            return 0.0
        return 100.0 * self.clauses_built / self.total_learned

    def raise_if_failed(self) -> None:
        """Re-raise the recorded failure (for callers preferring exceptions)."""
        if self.failure is not None:
            raise self.failure
        if not self.verified:
            raise AssertionError("check unverified but no failure recorded")

    def summary(self) -> str:
        status = "Check Succeeded" if self.verified else f"Check Failed: {self.failure}"
        line = (
            f"[{self.method}] {status} | built {self.clauses_built}/"
            f"{self.total_learned} learned ({self.built_pct:.1f}%) | "
            f"peak {self.peak_memory_units} units | {self.check_time:.3f}s"
        )
        if self.degradation and len(self.degradation) > 1:
            ladder = " -> ".join(
                f"{attempt['method']}:{attempt['outcome']}" for attempt in self.degradation
            )
            line += f" | ladder {ladder}"
        return line
