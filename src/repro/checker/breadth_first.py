"""The breadth-first checker (§3.3 of the paper).

Streams the trace in generation order, building every learned clause as its
record arrives. A counting pre-pass (written to a temporary file, exactly as
the paper describes — even one in-memory counter per learned clause may not
fit) records how many times each clause is used as a resolve source; during
checking, a clause is deleted the moment its last use completes. Peak
resident memory therefore never exceeds what the solver itself held while
producing the trace.

The counting pass can be chunked over clause-ID ranges
(``count_chunk_size``) — the paper: "we may also need to break the first
pass into several passes so that we can count the number of usages of the
clauses in one range at a time."
"""

from __future__ import annotations

import os
import pickle
import time
from array import array
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from typing import Iterator, Sequence

from repro import faults
from repro.checker.counts import (
    COUNT_SIZE as _COUNT_SIZE,
    CountsReader,
    new_counts_file,
    write_count_range,
)
from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.kernel import ClauseLits, engine_memory_stats, make_engine
from repro.checker.level_zero import LevelZeroState, derive_empty_clause
from repro.checker.memory import Deadline, MemoryMeter
from repro.checker.report import CheckReport
from repro.checker.resolution import ResolutionError
from repro.cnf import CnfFormula
from repro.trace.binary_format import (
    MAGIC,
    active_decoder_mode,
    iter_binary_records_raw,
    scan_binary_learned,
)
from repro.trace.io import iter_trace_records
from repro.trace.records import (
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    Trace,
    TraceError,
    TraceHeader,
    TraceRecord,
    TraceResult,
)

# Version 2 replaced the shape-only fingerprint (num_original,
# total_learned, binary_fast) with one that also carries the streaming
# SHA-256 of the trace content: two different traces with the same shape
# must never validate against each other's checkpoints. Version-1 files
# are rejected by load_checkpoint — the resume path treats that as a
# mismatch and falls back to a full run (never fatal).
_CHECKPOINT_VERSION = 2


class CheckpointError(ValueError):
    """A checkpoint file is unreadable or belongs to a different check."""


@dataclass
class BfCheckpoint:
    """A resumable snapshot of the BF checking pass.

    Everything the streaming pass holds between two records, in plain
    picklable types: the stream position (``records_consumed``, an index
    into the record stream — format-agnostic, so ASCII and binary traces
    checkpoint identically), the resident clause literals and their
    remaining-use counts, the trail/conflict/status records seen so far,
    and the progress counters. ``fingerprint`` ties the snapshot to one
    specific check: the clause extent, the stream flavour, and the
    streaming SHA-256 of the trace *content* (see
    :func:`repro.trace.fingerprint.trace_content_hash`); resuming against
    a different trace — even one with the same shape — falls back to a
    fresh full run.
    """

    version: int
    # (num_original, total_learned, binary_fast, trace_sha256)
    fingerprint: tuple[int, int, bool, str]
    records_consumed: int
    last_cid: int
    resident: dict[int, tuple[int, ...]]
    remaining: dict[int, int]
    level_zero: list[tuple[int, bool, int]]  # (var, value, antecedent)
    final_conflicts: list[int]
    status: str
    clauses_built: int
    resolutions: int
    meter_current: int
    meter_peak: int
    context: dict = field(default_factory=dict)  # free-form (trace path, time)


FP_CHECKPOINT_WRITE = faults.register_fault_point(
    "checkpoint.write", writes=True,
    doc="just before a BF checkpoint snapshot is written",
)


def write_checkpoint(checkpoint: BfCheckpoint, path: str | Path) -> None:
    """Atomically *and durably* persist a snapshot.

    Write-to-temp + rename makes the swap atomic; the file fsync makes the
    bytes durable before the rename exposes them; the parent-directory
    fsync makes the rename itself survive power loss. A checkpoint whose
    whole point is resuming after a crash must not itself be lost to one.
    """
    faults.fault_point(FP_CHECKPOINT_WRITE)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    parent = os.path.dirname(os.fspath(path)) or "."
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_checkpoint(path: str | Path) -> BfCheckpoint:
    """Load a snapshot; raises :class:`CheckpointError` on anything unusable."""
    try:
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError) as exc:
        raise CheckpointError(f"cannot load checkpoint {path}: {exc}") from exc
    if not isinstance(checkpoint, BfCheckpoint):
        raise CheckpointError(f"{path} does not hold a BF checkpoint")
    if checkpoint.version != _CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {checkpoint.version} unsupported "
            f"(expected {_CHECKPOINT_VERSION})"
        )
    return checkpoint


class BreadthFirstChecker:
    """Validates an UNSAT claim by streaming the trace with bounded memory."""

    method = "breadth-first"

    def __init__(
        self,
        formula: CnfFormula,
        trace_source: str | Path | Trace,
        memory_limit: int | None = None,
        count_chunk_size: int | None = None,
        tmp_dir: str | Path | None = None,
        precheck: bool = False,
        use_kernel: bool = True,
        deadline: Deadline | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 0,
        resume_from: str | Path | None = None,
        prune_plan=None,
    ):
        self.formula = formula
        self._source = trace_source
        # Core-first pruning (repro.analysis.graph.PrunePlan): skip learned
        # clauses outside the proof cone and take the use counts from the
        # plan, eliminating the extent and counting passes entirely.
        self._plan = prune_plan
        self._precheck = precheck
        self.precheck_report = None
        self.meter = MemoryMeter(limit=memory_limit)
        self._engine = make_engine(use_kernel, formula)
        self._chunk_size = count_chunk_size
        self._tmp_dir = str(tmp_dir) if tmp_dir is not None else None
        self._num_original: int | None = None
        self._resident: dict[int, ClauseLits] = {}
        self._remaining: dict[int, int] = {}
        self._clauses_built = 0
        self._total_learned = 0
        self._resolutions = 0
        self._binary_fast = False
        self._deadline = deadline
        # Checkpoint/resume: snapshot every `checkpoint_every` learned
        # builds to `checkpoint_path`; `resume_from` restarts from a prior
        # snapshot (falling back to a full run if it doesn't match).
        self._checkpoint_path = str(checkpoint_path) if checkpoint_path else None
        self._checkpoint_every = max(0, checkpoint_every)
        self._resume_from = str(resume_from) if resume_from else None
        self.resumed = False  # did this run actually start from a snapshot?
        self.resume_error: str | None = None
        self._trace_hash: str | None = None  # computed lazily, checkpoint paths only
        if self._checkpoint_every and not self._checkpoint_path:
            raise ValueError("checkpoint_every needs a checkpoint_path to write to")

    # -- public API ----------------------------------------------------------

    def check(self) -> CheckReport:
        """Run the check; never raises — failures land in the report."""
        start = time.perf_counter()
        failure: CheckFailure | None = None
        verified = False
        counts_path: str | None = None
        try:
            if self._deadline is not None:
                self._deadline.check()
            if self._precheck:
                from repro.checker.precheck import run_precheck

                self.precheck_report = run_precheck(self._source)
            max_cid, counts_path = self._extent_and_counts()
            with open(counts_path, "rb") as counts_file:
                assert self._num_original is not None
                counts = CountsReader(counts_file, self._num_original + 1)
                verified = self._checking_pass(counts)
        except CheckFailure as exc:
            failure = exc
        except TraceError as exc:
            # A record stream can turn out to be malformed mid-pass (torn
            # file, zero-source record, bad varint). The public contract is
            # "never raises", so convert instead of letting it escape.
            failure = CheckFailure(FailureKind.MALFORMED_TRACE, str(exc))
        finally:
            if counts_path is not None:
                os.unlink(counts_path)
        return CheckReport(
            method=self.method,
            verified=verified,
            failure=failure,
            clauses_built=self._clauses_built,
            total_learned=self._total_learned,
            peak_memory_units=self.meter.peak,
            check_time=time.perf_counter() - start,
            resolutions=self._resolutions,
            prune=self._plan.to_dict() if self._plan is not None else None,
            memory=engine_memory_stats(self._engine, self.meter),
        )

    # -- record streaming -------------------------------------------------------

    def _records(self) -> Iterator[TraceRecord]:
        if isinstance(self._source, Trace):
            return self._source.records()
        return iter_trace_records(self._source)

    # -- passes 0+1: extent and counting ----------------------------------------

    def _extent_and_counts(self) -> tuple[int, str]:
        """Run the extent and counting passes; returns (max_cid, counts path).

        When the source is a binary trace file (and neither the legacy
        decoder nor chunked counting was requested), both passes fuse into
        one :func:`scan_binary_learned` sweep that decodes the varints in
        place without constructing record objects — the same arithmetic at
        a fraction of the cost. Everything else takes the generic
        record-streaming passes.

        With a prune plan, both passes vanish: the plan already carries the
        extent and the exact use counts restricted to the proof cone.
        """
        fast_eligible = (
            self._chunk_size is None
            and isinstance(self._source, (str, Path))
            and active_decoder_mode() == "batched"
        )
        if fast_eligible:
            with open(self._source, "rb") as handle:
                self._binary_fast = handle.read(len(MAGIC)) == MAGIC
        if self._plan is not None:
            return self._plan_counts()
        if self._binary_fast:
            return self._fused_scan()
        max_cid = self._scan_extent()
        return max_cid, self._counting_pass(max_cid)

    def _plan_counts(self) -> tuple[int, str]:
        """Materialize the prune plan's use counts as the counts file."""
        plan = self._plan
        assert plan is not None
        if self.formula.num_clauses != plan.num_original:
            raise CheckFailure(
                FailureKind.UNKNOWN_CLAUSE,
                "formula / trace disagree on the number of original clauses",
                formula_clauses=self.formula.num_clauses,
                trace_clauses=plan.num_original,
            )
        self._num_original = plan.num_original
        self._total_learned = plan.total_learned
        first_learned = plan.num_original + 1
        with new_counts_file(self._tmp_dir) as (path, handle):
            write_count_range(
                handle, first_learned, plan.max_cid + 1, plan.needed_counts.get
            )
        return plan.max_cid, path

    def _fused_scan(self) -> tuple[int, str]:
        headers, max_cid, num_learned, counts = scan_binary_learned(self._source)
        if not headers:
            raise CheckFailure(FailureKind.BAD_HEADER, "trace has no header")
        for _num_vars, num_original in headers:
            self._num_original = num_original
            if num_original > max_cid:
                max_cid = num_original
            if self.formula.num_clauses != num_original:
                raise CheckFailure(
                    FailureKind.UNKNOWN_CLAUSE,
                    "formula / trace disagree on the number of original clauses",
                    formula_clauses=self.formula.num_clauses,
                    trace_clauses=num_original,
                )
        self._total_learned = num_learned
        first_learned = self._num_original + 1
        with new_counts_file(self._tmp_dir) as (path, handle):
            write_count_range(handle, first_learned, max_cid + 1, counts.get)
        return max_cid, path

    # -- pass 0: extent ----------------------------------------------------------

    def _scan_extent(self) -> int:
        """Find the number of original clauses and the largest clause ID."""
        max_cid = 0
        self._total_learned = 0
        saw_header = False
        deadline = self._deadline
        ticks = 0
        for record in self._records():
            if deadline is not None:
                ticks += 1
                if not ticks & 0x3FF:
                    deadline.check()
            if isinstance(record, TraceHeader):
                saw_header = True
                self._num_original = record.num_original_clauses
                max_cid = max(max_cid, record.num_original_clauses)
                if self.formula.num_clauses != record.num_original_clauses:
                    raise CheckFailure(
                        FailureKind.UNKNOWN_CLAUSE,
                        "formula / trace disagree on the number of original clauses",
                        formula_clauses=self.formula.num_clauses,
                        trace_clauses=record.num_original_clauses,
                    )
            elif isinstance(record, LearnedClause):
                self._total_learned += 1
                max_cid = max(max_cid, record.cid)
        if not saw_header:
            raise CheckFailure(FailureKind.BAD_HEADER, "trace has no header")
        return max_cid

    # -- pass 1: counting ---------------------------------------------------------

    def _count_references(self, low: int, high: int, counts: array) -> None:
        """Accumulate uses of clause IDs in [low, high) into ``counts``."""
        assert self._num_original is not None
        num_original = self._num_original
        deadline = self._deadline
        ticks = 0
        for record in self._records():
            if deadline is not None:
                ticks += 1
                if not ticks & 0x3FF:
                    deadline.check()
            if isinstance(record, LearnedClause):
                for source in record.sources:
                    if low <= source < high and source > num_original:
                        counts[source - low] += 1
            elif isinstance(record, LevelZeroAssignment):
                if low <= record.antecedent < high and record.antecedent > num_original:
                    counts[record.antecedent - low] += 1
            elif isinstance(record, FinalConflict):
                if low <= record.cid < high and record.cid > num_original:
                    counts[record.cid - low] += 1

    def _counting_pass(self, max_cid: int) -> str:
        """Write per-learned-clause use counts to a temporary file."""
        assert self._num_original is not None
        first_learned = self._num_original + 1
        span = max(0, max_cid - self._num_original)
        chunk = self._chunk_size or max(span, 1)
        with new_counts_file(self._tmp_dir) as (path, handle):
            for low in range(first_learned, max_cid + 1, chunk):
                high = min(low + chunk, max_cid + 1)
                counts = array("Q", bytes(_COUNT_SIZE * (high - low)))
                self._count_references(low, high, counts)
                counts.tofile(handle)
        return path

    # -- pass 2: checking -----------------------------------------------------------

    def _get_clause(self, cid: int) -> ClauseLits:
        assert self._num_original is not None
        # One dict probe covers both kinds of clause on the hot path:
        # originals are cached here after their first materialization
        # (they are never reference-counted, so they simply stay).
        clause = self._resident.get(cid)
        if clause is not None:
            return clause
        if cid <= self._num_original:
            clause = self._engine.original(cid)
            self._resident[cid] = clause
            return clause
        raise CheckFailure(
            FailureKind.UNKNOWN_CLAUSE,
            "clause is not resident: never defined, defined later, or "
            "already fully consumed",
            cid=cid,
        )

    def _consume_use(self, cid: int) -> None:
        """Decrement a resident clause's remaining-use counter; free at zero."""
        assert self._num_original is not None
        if cid <= self._num_original:
            return
        remaining = self._remaining.get(cid)
        if remaining is None:
            return
        if remaining <= 1:
            clause = self._resident.pop(cid)
            del self._remaining[cid]
            self.meter.release(self.meter.clause_units(len(clause)))
            self._engine.release(clause)
        else:
            self._remaining[cid] = remaining - 1

    def _build_learned(self, cid: int, sources: Sequence[int], counts: CountsReader) -> None:
        if not sources:
            # Normal parsing rejects zero-source records, but a hand-built
            # Trace can smuggle one in; fail the report, don't IndexError.
            raise CheckFailure(
                FailureKind.MALFORMED_TRACE,
                "learned clause record has no resolve sources",
                cid=cid,
            )
        if max(sources) >= cid:
            for source in sources:
                if source >= cid:
                    raise CheckFailure(
                        FailureKind.CYCLIC_TRACE,
                        "learned clause resolves from a clause with an ID not "
                        "smaller than its own",
                        cid=cid,
                        source=source,
                    )
        try:
            clause = self._engine.chain(cid, sources, self._get_clause)
        except ResolutionError as exc:
            self._resolutions += max(0, (exc.context.get("chain_position") or 1) - 1)
            raise
        self._resolutions += len(sources) - 1
        self._clauses_built += 1
        # Decrement sources only after the build succeeded, so diagnostics
        # for a failed build still see the inputs. (Inline _consume_use:
        # this loop runs once per resolve source across the whole trace.)
        num_original = self._num_original
        remaining_map = self._remaining
        for source in sources:
            if source <= num_original:
                continue
            remaining = remaining_map.get(source)
            if remaining is None:
                continue
            if remaining <= 1:
                freed = self._resident.pop(source)
                del remaining_map[source]
                self.meter.release(self.meter.clause_units(len(freed)))
                self._engine.release(freed)
            else:
                remaining_map[source] = remaining - 1
        total_uses = counts.read(cid)
        if total_uses == 0:
            self._engine.release(clause)
            return  # validated, never used again: drop immediately
        self._resident[cid] = clause
        self._remaining[cid] = total_uses
        self.meter.allocate(self.meter.clause_units(len(clause)))

    def _trace_fingerprint(self) -> str:
        """Streaming content hash of the trace source, computed at most once.

        Only the checkpoint/resume paths pay for this — a plain check
        never hashes anything.
        """
        if self._trace_hash is None:
            from repro.trace.fingerprint import trace_content_hash

            content = trace_content_hash(self._source)
            if self._plan is not None:
                # A pruned run's stream position skips dead clauses, so its
                # snapshots are only resumable under the same skip set.
                content = f"{content}+prune:{self._plan.digest()}"
            self._trace_hash = content
        return self._trace_hash

    def _load_resume_checkpoint(self) -> BfCheckpoint | None:
        """Load and validate the resume snapshot; ``None`` = run from scratch.

        An unreadable or mismatched checkpoint is never fatal — the whole
        point of the resilience layer is that the check still completes —
        but the reason is kept on ``resume_error`` for the caller.
        """
        assert self._resume_from is not None
        try:
            checkpoint = load_checkpoint(self._resume_from)
        except CheckpointError as exc:
            self.resume_error = str(exc)
            return None
        expected = (
            self._num_original,
            self._total_learned,
            self._binary_fast,
            self._trace_fingerprint(),
        )
        # Tuple comparison also rejects any old-format fingerprint that
        # slipped past the version gate (a 3-tuple never equals a 4-tuple).
        if checkpoint.fingerprint != expected:
            self.resume_error = (
                f"checkpoint fingerprint {checkpoint.fingerprint} does not "
                f"match this check {expected}; running from scratch"
            )
            return None
        return checkpoint

    def _restore_checkpoint(self, checkpoint: BfCheckpoint):
        """Re-seat the streaming pass's state from a snapshot."""
        self._resident = {
            cid: self._engine.materialize(lits)
            for cid, lits in checkpoint.resident.items()
        }
        self._remaining = dict(checkpoint.remaining)
        self._clauses_built = checkpoint.clauses_built
        self._resolutions = checkpoint.resolutions
        self.meter.current = checkpoint.meter_current
        self.meter.peak = checkpoint.meter_peak
        level_zero_entries = [
            LevelZeroAssignment(var, value, antecedent)
            for var, value, antecedent in checkpoint.level_zero
        ]
        return level_zero_entries, list(checkpoint.final_conflicts)

    def _snapshot(
        self,
        records_consumed: int,
        last_cid: int,
        level_zero_entries: list[LevelZeroAssignment],
        final_conflicts: list[int],
        status: str,
    ) -> None:
        assert self._num_original is not None and self._checkpoint_path is not None
        checkpoint = BfCheckpoint(
            version=_CHECKPOINT_VERSION,
            fingerprint=(
                self._num_original,
                self._total_learned,
                self._binary_fast,
                self._trace_fingerprint(),
            ),
            records_consumed=records_consumed,
            last_cid=last_cid,
            resident={cid: tuple(lits) for cid, lits in self._resident.items()},
            remaining=dict(self._remaining),
            level_zero=[(e.var, e.value, e.antecedent) for e in level_zero_entries],
            final_conflicts=list(final_conflicts),
            status=status,
            clauses_built=self._clauses_built,
            resolutions=self._resolutions,
            meter_current=self.meter.current,
            meter_peak=self.meter.peak,
            context={"source": str(self._source) if not isinstance(self._source, Trace) else "<in-memory>"},
        )
        write_checkpoint(checkpoint, self._checkpoint_path)

    def _checking_pass(self, counts: CountsReader) -> bool:
        assert self._num_original is not None
        level_zero_entries: list[LevelZeroAssignment] = []
        final_conflicts: list[int] = []
        status = "UNKNOWN"
        last_cid = self._num_original
        if self._binary_fast:
            # Binary source with the batched decoder: learned records come
            # through as bare (cid, sources) tuples, skipping record
            # construction on the dominant record type.
            stream = iter_binary_records_raw(self._source)
        else:
            stream = self._records()
        records_consumed = 0
        if self._resume_from is not None:
            checkpoint = self._load_resume_checkpoint()
            if checkpoint is not None:
                level_zero_entries, final_conflicts = self._restore_checkpoint(checkpoint)
                status = checkpoint.status
                last_cid = checkpoint.last_cid
                records_consumed = checkpoint.records_consumed
                stream = islice(stream, records_consumed, None)
                self.resumed = True
        deadline = self._deadline
        checkpoint_every = self._checkpoint_every
        builds_since_snapshot = 0
        skip = self._plan.skip if self._plan is not None else None
        for record in stream:
            records_consumed += 1
            if deadline is not None and not records_consumed & 0xFF:
                deadline.check()
            if type(record) is tuple:
                cid, sources = record
            elif isinstance(record, LearnedClause):
                cid = record.cid
                sources = record.sources
            elif isinstance(record, LevelZeroAssignment):
                level_zero_entries.append(record)
                self.meter.allocate(self.meter.record_units(3))
                continue
            elif isinstance(record, FinalConflict):
                final_conflicts.append(record.cid)
                continue
            elif isinstance(record, TraceResult):
                status = record.status
                continue
            else:
                continue  # TraceHeader and anything future: not checked here
            if cid <= last_cid:
                raise CheckFailure(
                    FailureKind.CYCLIC_TRACE,
                    "learned clause IDs must be strictly increasing",
                    cid=cid,
                    previous=last_cid,
                )
            last_cid = cid
            if skip is not None and cid in skip:
                continue  # statically dead: no path to the empty clause
            self._build_learned(cid, sources, counts)
            if checkpoint_every:
                builds_since_snapshot += 1
                if builds_since_snapshot >= checkpoint_every:
                    builds_since_snapshot = 0
                    self._snapshot(
                        records_consumed, last_cid, level_zero_entries,
                        final_conflicts, status,
                    )

        if status != "UNSAT":
            raise CheckFailure(
                FailureKind.BAD_STATUS,
                "trace does not claim UNSAT; nothing to check",
                status=status,
            )
        if not final_conflicts:
            raise CheckFailure(
                FailureKind.BAD_FINAL_CONFLICT,
                "trace has no final conflicting clause",
            )
        final_cid = final_conflicts[0]
        # The counting pass charged one use per FinalConflict record, but
        # only the first conflict seeds the derivation below. Release the
        # unused conflicts' counts so clauses referenced only by them don't
        # stay resident forever (inflating peak_memory_units).
        for unused_cid in final_conflicts[1:]:
            self._consume_use(unused_cid)
        level_zero = LevelZeroState(level_zero_entries)
        steps = derive_empty_clause(
            final_cid,
            self._get_clause(final_cid),
            level_zero,
            get_clause=self._get_clause,
            on_use=self._consume_use,
            resolve_fn=self._engine.resolve,
            deadline=self._deadline,
        )
        self._resolutions += steps
        return True
