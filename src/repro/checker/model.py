"""Validation of SAT claims.

"When the solver claims satisfiability ... an independent program can take
this and verify that it indeed satisfies the formula. The NP-Completeness
of SAT guarantees that such a check takes polynomial time — in fact linear
time for CNF."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnf import CnfFormula


@dataclass
class ModelCheckResult:
    """Outcome of a satisfying-assignment check."""

    satisfied: bool
    falsified_clause_ids: list[int]
    unassigned_vars: list[int]

    def __bool__(self) -> bool:
        return self.satisfied


def check_model(formula: CnfFormula, model: dict[int, bool]) -> ModelCheckResult:
    """Check a model against a formula in a single linear pass.

    A clause whose literals are all either falsified or unassigned counts
    as falsified — the solver must provide values for every variable it
    relies on. Unassigned variables that some clause actually mentions are
    reported so the caller can distinguish "partial model" from "wrong
    model".
    """
    falsified: list[int] = []
    unassigned: set[int] = set()
    for clause in formula:
        satisfied = False
        for lit in clause:
            value = model.get(abs(lit))
            if value is None:
                unassigned.add(abs(lit))
            elif value == (lit > 0):
                satisfied = True
                break
        if not satisfied:
            falsified.append(clause.cid)
    return ModelCheckResult(
        satisfied=not falsified,
        falsified_clause_ids=falsified,
        unassigned_vars=sorted(unassigned),
    )
