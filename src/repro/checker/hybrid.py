"""The hybrid checker — the paper's future-work design (§5).

"It is desirable to have a checker that has the advantage of both the
depth-first and breadth-first approaches without suffering from their
respective shortcomings."

Strategy:

1. **Marking pass** (depth-first over the *clause-ID graph* only): stream
   the trace keeping just the resolve-source ID lists — integers, no
   literals — then walk backwards from the final conflicting clause and the
   level-0 antecedents to find the set of *needed* learned clauses, with
   per-clause use counts restricted to needed consumers.
2. **Streaming pass** (breadth-first): stream the trace again, building
   only the needed clauses, deleting each as soon as its last needed use
   completes.

Compared to DF it never holds unneeded literals; compared to BF it builds
only the DF subset (Table 2's "Built %"). It still holds the ID graph in
memory — a disk-based DFS (the paper cites external-memory graph traversal)
would remove that too; we account its memory honestly so the trade-off is
visible in the benchmarks.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterator

from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.kernel import ClauseLits, engine_memory_stats, make_engine
from repro.checker.level_zero import LevelZeroState, derive_empty_clause
from repro.checker.memory import Deadline, MemoryMeter
from repro.checker.report import CheckReport
from repro.checker.resolution import ResolutionError
from repro.cnf import CnfFormula
from repro.trace.io import iter_trace_records
from repro.trace.records import (
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    Trace,
    TraceError,
    TraceHeader,
    TraceRecord,
    TraceResult,
)


class HybridChecker:
    """Marks the needed sub-DAG by ID, then streams and builds only that."""

    method = "hybrid"

    def __init__(
        self,
        formula: CnfFormula,
        trace_source: str | Path | Trace,
        memory_limit: int | None = None,
        precheck: bool = False,
        use_kernel: bool = True,
        deadline: Deadline | None = None,
        prune_plan=None,
    ):
        self.formula = formula
        self._source = trace_source
        # With a precomputed prune plan the marking pass degenerates to a
        # lean stream (no ID-graph retention): the plan already carries the
        # needed set and its use counts.
        self._plan = prune_plan
        self._precheck = precheck
        self.precheck_report = None
        self.meter = MemoryMeter(limit=memory_limit)
        self._deadline = deadline
        self._engine = make_engine(use_kernel, formula)
        self._num_original: int | None = None
        self._resident: dict[int, ClauseLits] = {}
        self._remaining: dict[int, int] = {}
        self._clauses_built = 0
        self._total_learned = 0
        self._resolutions = 0
        self._original_core: set[int] = set()
        self._learned_used: set[int] = set()

    def check(self) -> CheckReport:
        """Run the check; never raises — failures land in the report."""
        start = time.perf_counter()
        failure: CheckFailure | None = None
        verified = False
        try:
            if self._precheck:
                from repro.checker.precheck import run_precheck

                self.precheck_report = run_precheck(self._source)
            if self._plan is not None:
                needed_counts, level_zero_entries, final_cid, status = self._plan_pass()
            else:
                needed_counts, level_zero_entries, final_cid, status = self._marking_pass()
            if status != "UNSAT":
                raise CheckFailure(
                    FailureKind.BAD_STATUS,
                    "trace does not claim UNSAT; nothing to check",
                    status=status,
                )
            verified = self._streaming_pass(needed_counts, level_zero_entries, final_cid)
        except CheckFailure as exc:
            failure = exc
        except TraceError as exc:
            # Malformed record streams surface mid-pass; the contract is
            # "never raises", so convert to a reported failure.
            failure = CheckFailure(FailureKind.MALFORMED_TRACE, str(exc))
        return CheckReport(
            method=self.method,
            verified=verified,
            failure=failure,
            clauses_built=self._clauses_built,
            total_learned=self._total_learned,
            peak_memory_units=self.meter.peak,
            check_time=time.perf_counter() - start,
            resolutions=self._resolutions,
            original_core=self._original_core if verified else None,
            learned_used=self._learned_used if verified else None,
            prune=self._plan.to_dict() if self._plan is not None else None,
            memory=engine_memory_stats(self._engine, self.meter),
        )

    # -- shared helpers -------------------------------------------------------

    def _records(self) -> Iterator[TraceRecord]:
        if isinstance(self._source, Trace):
            return self._source.records()
        return iter_trace_records(self._source)

    # -- pass 1: mark the needed sub-DAG ----------------------------------------

    def _marking_pass(self):
        sources_by_cid: dict[int, tuple[int, ...]] = {}
        level_zero_entries: list[LevelZeroAssignment] = []
        final_conflicts: list[int] = []
        status = "UNKNOWN"
        graph_units = 0
        deadline = self._deadline
        if deadline is not None:
            deadline.check()
        ticks = 0
        for record in self._records():
            if deadline is not None:
                ticks += 1
                if not ticks & 0xFF:
                    deadline.check()
            if isinstance(record, TraceHeader):
                self._num_original = record.num_original_clauses
                if self.formula.num_clauses != record.num_original_clauses:
                    raise CheckFailure(
                        FailureKind.UNKNOWN_CLAUSE,
                        "formula / trace disagree on the number of original clauses",
                        formula_clauses=self.formula.num_clauses,
                        trace_clauses=record.num_original_clauses,
                    )
            elif isinstance(record, LearnedClause):
                if record.cid in sources_by_cid:
                    raise CheckFailure(
                        FailureKind.CYCLIC_TRACE,
                        "duplicate learned clause ID",
                        cid=record.cid,
                    )
                sources_by_cid[record.cid] = record.sources
                graph_units += self.meter.record_units(1 + len(record.sources))
            elif isinstance(record, LevelZeroAssignment):
                level_zero_entries.append(record)
            elif isinstance(record, FinalConflict):
                final_conflicts.append(record.cid)
            elif isinstance(record, TraceResult):
                status = record.status
        if self._num_original is None:
            raise CheckFailure(FailureKind.BAD_HEADER, "trace has no header")
        if not final_conflicts and status == "UNSAT":
            raise CheckFailure(
                FailureKind.BAD_FINAL_CONFLICT,
                "trace has no final conflicting clause",
            )
        self._total_learned = len(sources_by_cid)
        # The ID graph is held in memory during marking: account for it.
        self.meter.allocate(graph_units)

        needed_counts: dict[int, int] = {}
        if status == "UNSAT":
            roots = [final_conflicts[0]] + [e.antecedent for e in level_zero_entries]
            stack = [cid for cid in roots if cid > self._num_original]
            visited: set[int] = set()
            while stack:
                cid = stack.pop()
                if cid in visited:
                    continue
                visited.add(cid)
                sources = sources_by_cid.get(cid)
                if sources is None:
                    raise CheckFailure(
                        FailureKind.UNKNOWN_CLAUSE,
                        "trace references a clause ID that was never defined",
                        cid=cid,
                    )
                for source in sources:
                    if source >= cid:
                        raise CheckFailure(
                            FailureKind.CYCLIC_TRACE,
                            "learned clause resolves from a clause with an ID "
                            "not smaller than its own",
                            cid=cid,
                            source=source,
                        )
                    if source > self._num_original:
                        needed_counts[source] = needed_counts.get(source, 0) + 1
                        if source not in visited:
                            stack.append(source)
            # Roots get one extra use each (final derivation / antecedent use).
            for root in roots:
                if root > self._num_original:
                    needed_counts[root] = needed_counts.get(root, 0) + 1
        self.meter.release(graph_units)

        final_cid = final_conflicts[0] if final_conflicts else -1
        return needed_counts, level_zero_entries, final_cid, status

    # -- pass 1 (pruned): lean stream, counts come from the plan ------------------

    def _plan_pass(self):
        """Marking-pass replacement under a prune plan.

        The plan already identified the needed sub-DAG and its use counts,
        so this pass never retains the ID graph — it only validates the
        header and collects the trail/conflict/status records the second
        pass needs.
        """
        plan = self._plan
        assert plan is not None
        if self.formula.num_clauses != plan.num_original:
            raise CheckFailure(
                FailureKind.UNKNOWN_CLAUSE,
                "formula / trace disagree on the number of original clauses",
                formula_clauses=self.formula.num_clauses,
                trace_clauses=plan.num_original,
            )
        level_zero_entries: list[LevelZeroAssignment] = []
        final_conflicts: list[int] = []
        status = "UNKNOWN"
        saw_header = False
        deadline = self._deadline
        if deadline is not None:
            deadline.check()
        ticks = 0
        for record in self._records():
            if deadline is not None:
                ticks += 1
                if not ticks & 0xFF:
                    deadline.check()
            if isinstance(record, TraceHeader):
                saw_header = True
                self._num_original = record.num_original_clauses
                if self.formula.num_clauses != record.num_original_clauses:
                    raise CheckFailure(
                        FailureKind.UNKNOWN_CLAUSE,
                        "formula / trace disagree on the number of original clauses",
                        formula_clauses=self.formula.num_clauses,
                        trace_clauses=record.num_original_clauses,
                    )
            elif isinstance(record, LevelZeroAssignment):
                level_zero_entries.append(record)
            elif isinstance(record, FinalConflict):
                final_conflicts.append(record.cid)
            elif isinstance(record, TraceResult):
                status = record.status
        if not saw_header:
            raise CheckFailure(FailureKind.BAD_HEADER, "trace has no header")
        if not final_conflicts and status == "UNSAT":
            raise CheckFailure(
                FailureKind.BAD_FINAL_CONFLICT,
                "trace has no final conflicting clause",
            )
        self._total_learned = plan.total_learned
        final_cid = final_conflicts[0] if final_conflicts else -1
        return dict(plan.needed_counts), level_zero_entries, final_cid, status

    # -- pass 2: stream and build only the needed clauses -------------------------

    def _get_clause(self, cid: int) -> ClauseLits:
        assert self._num_original is not None
        if cid <= self._num_original:
            return self._engine.original(cid)
        clause = self._resident.get(cid)
        if clause is None:
            raise CheckFailure(
                FailureKind.UNKNOWN_CLAUSE,
                "clause is not resident: never defined, defined later, or "
                "already fully consumed",
                cid=cid,
            )
        return clause

    def _note_use(self, cid: int) -> None:
        assert self._num_original is not None
        if cid <= self._num_original:
            self._original_core.add(cid)
            return
        self._learned_used.add(cid)
        remaining = self._remaining.get(cid)
        if remaining is None:
            return
        if remaining <= 1:
            clause = self._resident.pop(cid)
            del self._remaining[cid]
            self.meter.release(self.meter.clause_units(len(clause)))
            self._engine.release(clause)
        else:
            self._remaining[cid] = remaining - 1

    def _streaming_pass(self, needed_counts, level_zero_entries, final_cid) -> bool:
        assert self._num_original is not None
        deadline = self._deadline
        ticks = 0
        for record in self._records():
            if deadline is not None:
                ticks += 1
                if not ticks & 0xFF:
                    deadline.check()
            if not isinstance(record, LearnedClause):
                continue
            uses = needed_counts.get(record.cid)
            if uses is None:
                continue  # not on any path to the empty clause: skip
            if not record.sources:
                raise CheckFailure(
                    FailureKind.MALFORMED_TRACE,
                    "learned clause record has no resolve sources",
                    cid=record.cid,
                )
            try:
                clause = self._engine.chain(record.cid, record.sources, self._get_clause)
            except ResolutionError as exc:
                self._resolutions += max(0, (exc.context.get("chain_position") or 1) - 1)
                raise
            for source in record.sources:
                self._note_use(source)
            self._resolutions += len(record.sources) - 1
            self._clauses_built += 1
            self._resident[record.cid] = clause
            self._remaining[record.cid] = uses
            self.meter.allocate(self.meter.clause_units(len(clause)))

        level_zero = LevelZeroState(level_zero_entries)
        self.meter.allocate(self.meter.record_units(3) * len(level_zero_entries))
        steps = derive_empty_clause(
            final_cid,
            self._get_clause(final_cid),
            level_zero,
            get_clause=self._get_clause,
            on_use=self._note_use,
            resolve_fn=self._engine.resolve,
            deadline=self._deadline,
        )
        self._resolutions += steps
        return True
