"""Static pre-pass for the checkers: reject garbage before the replay.

All three checkers accept ``precheck=True``; the pre-pass runs the
:mod:`repro.analysis` linter over the trace source (streaming for file
sources) and converts any error-severity diagnostic into a
:class:`~repro.checker.errors.CheckFailure` of kind ``STATIC_PRECHECK``
*before* a single clause is built or a single resolution performed. The
failure context carries the rule IDs so callers can triage without
re-running the linter.
"""

from __future__ import annotations

from repro.checker.errors import CheckFailure, FailureKind


def run_precheck(source) -> "AnalysisReport":  # noqa: F821 - forward ref in doc
    """Lint ``source``; raise :class:`CheckFailure` if any error rule fired.

    Returns the full :class:`~repro.analysis.diagnostics.AnalysisReport` so
    callers can surface warnings and reachability even on success. Imported
    lazily to keep :mod:`repro.analysis` free of checker dependencies (the
    analyzer must never touch resolution).
    """
    from repro.analysis import analyze_trace

    report = analyze_trace(source)
    if not report.ok:
        first = report.errors[0]
        raise CheckFailure(
            FailureKind.STATIC_PRECHECK,
            "static trace analysis rejected the trace before replay: "
            + first.message,
            rules=sorted({d.rule_id for d in report.errors}),
            num_errors=len(report.errors),
            record_index=first.record_index,
            cids=list(first.cids),
        )
    return report
