"""The resilient checking supervisor: budgets, fallback, recovery (§3 + §5).

The paper's operational story is a robustness one: the depth-first checker
is fastest but memory-outs on the two hardest Table 2 instances, while the
breadth-first checker never exceeds the solver's own footprint. A checking
*service* has to turn that trade-off into policy: enforce wall-clock and
memory budgets, and when the fast strategy exhausts one, degrade to the
frugal one instead of crashing — recording every attempt so the final
verdict states how it was reached.

:class:`CheckSupervisor` wraps every checker behind one entry point:

* **Budgets** — each attempt runs under a fresh
  :class:`~repro.checker.memory.Deadline` (``FailureKind.TIMEOUT``) and the
  checkers' existing logical memory limit (``FailureKind.MEMORY_OUT``).
  A raw ``MemoryError`` from the Python allocator is converted to the same
  structured memory-out, so even a genuine heap exhaustion degrades
  predictably.
* **The degradation ladder** — under the ``fallback`` policy a resource
  failure moves down the paper-faithful ladder DF → hybrid → BF (the
  parallel checker falls back to BF; RUP proofs have no resolution trace
  to re-check, so they get budgets only). For trace files at or above
  ``streaming_threshold_bytes`` the final BF rung is replaced by the
  shifting-window streaming checker
  (:class:`~repro.checker.streaming.StreamingWindowChecker`), whose
  bounded window spills to disk instead of memory-outing — the ladder's
  never-memory-out floor. ``strict`` runs exactly one attempt. The
  ladder is recorded in ``CheckReport.degradation``.
* **Worker-crash recovery** — delegated to
  :class:`~repro.checker.parallel.ParallelWindowedChecker`: per-window
  timeouts, fresh-pool retries and in-process re-assignment, with
  ``FailureKind.WORKER_CRASH`` only after every layer is exhausted.
* **Checkpoint/resume** — BF attempts can snapshot their streaming state
  every N learned clauses and restart from the last snapshot
  (``repro check --resume``), so an interrupted multi-hour check does not
  start over.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.checker.breadth_first import BreadthFirstChecker
from repro.checker.depth_first import DepthFirstChecker
from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.hybrid import HybridChecker
from repro.checker.memory import Deadline
from repro.checker.parallel import ParallelWindowedChecker
from repro.checker.report import CheckReport
from repro.checker.rup import RupChecker
from repro.checker.streaming import StreamingWindowChecker
from repro.cnf import CnfFormula
from repro.trace.records import Trace, TraceError

#: Failure kinds the fallback policy is allowed to degrade on. Anything
#: else (a bad resolution, a cyclic trace, …) is a verdict about the
#: *proof*, not about the checker's resources — retrying a different
#: strategy on those would only re-discover the same bug more slowly.
DEGRADABLE_KINDS = frozenset(
    {FailureKind.TIMEOUT, FailureKind.MEMORY_OUT, FailureKind.WORKER_CRASH}
)

FP_ATTEMPT = faults.register_fault_point(
    "supervisor.attempt",
    doc="at the start of one supervised check attempt (key = method name)",
)

#: The paper-faithful degradation ladder, per starting method: fastest
#: first, most memory-frugal last (Table 2's DF memory-outs are exactly
#: what the BF tail exists for).
LADDERS: dict[str, tuple[str, ...]] = {
    "df": ("df", "hybrid", "bf"),
    "hybrid": ("hybrid", "bf"),
    "bf": ("bf",),
    "parallel": ("parallel", "bf"),
    "rup": ("rup",),
    "drat": ("drat",),
    "streaming": ("streaming",),
}

#: File sizes at or above this make the streaming checker the ladder's
#: last rung instead of BF: for traces this big, BF's resident window can
#: still memory-out, while the streaming tier spills to disk and never
#: does. Overridable per run via ``streaming_threshold_bytes`` (0 forces
#: streaming eligibility for any file, ``None`` disables the rewrite).
DEFAULT_STREAMING_THRESHOLD = 64 * 1024 * 1024


@dataclass(frozen=True)
class CheckPolicy:
    """How the supervisor reacts when an attempt exhausts its budget.

    ``strict`` runs the requested checker once and reports whatever
    happened; ``fallback`` walks the degradation ladder until an attempt
    verifies, fails for a non-resource reason, or the ladder runs dry.
    """

    name: str

    def ladder(self, method: str) -> tuple[str, ...]:
        try:
            full = LADDERS[method]
        except KeyError:
            raise ValueError(f"unknown checker method {method!r}") from None
        return full if self.name == "fallback" else full[:1]

    @classmethod
    def parse(cls, name: str) -> "CheckPolicy":
        if name not in ("strict", "fallback"):
            raise ValueError(f"unknown policy {name!r} (want 'strict' or 'fallback')")
        return cls(name)


STRICT = CheckPolicy("strict")
FALLBACK = CheckPolicy("fallback")


@dataclass
class Attempt:
    """One rung of the ladder: what ran, how it ended, what it cost."""

    method: str
    outcome: str  # "verified" | a FailureKind value
    elapsed: float
    detail: str = ""
    recovery_events: int = 0
    pruned: bool = False  # did this attempt run under a prune plan?
    memory: dict | None = None  # the rung's resident-memory high-water marks

    def to_dict(self) -> dict:
        entry = {
            "method": self.method,
            "outcome": self.outcome,
            "elapsed_s": round(self.elapsed, 4),
        }
        if self.detail:
            entry["detail"] = self.detail
        if self.recovery_events:
            entry["recovery_events"] = self.recovery_events
        if self.pruned:
            entry["pruned"] = True
        if self.memory is not None:
            entry["memory"] = self.memory
        return entry


@dataclass
class SupervisorConfig:
    """Everything the resilience layer needs beyond the formula and trace."""

    method: str = "df"
    policy: CheckPolicy = field(default_factory=lambda: FALLBACK)
    timeout: float | None = None  # wall-clock seconds, per attempt
    memory_limit: int | None = None  # logical units (see repro.checker.memory)
    max_retries: int = 1  # parallel: fresh-pool retry rounds per window
    window_timeout: float | None = None  # parallel: per-window watchdog
    num_workers: int = 2  # parallel only
    window_size: int | None = None  # parallel only
    use_kernel: bool = True
    precheck: bool = False
    count_chunk_size: int | None = None  # bf + streaming
    # Streaming tier: the resident-clause budget in logical units (the CLI's
    # --memory-window; defaults to memory_limit when unset), the decode
    # batch size, and the file-size threshold that swaps the streaming
    # checker in for BF as the fallback ladder's last rung.
    memory_window: int | None = None
    window_records: int | None = None
    streaming_threshold_bytes: int | None = DEFAULT_STREAMING_THRESHOLD
    checkpoint_path: str | None = None  # bf only
    checkpoint_every: int = 0  # bf only: learned builds between snapshots
    resume_from: str | None = None  # bf only
    tmp_dir: str | None = None
    inprocess_fallback: bool = True  # parallel: re-assign crashed windows
    # Core-first pruning: compute a static PrunePlan from the trace once
    # and hand it to every rung of the ladder. A trace the analyzer finds
    # structurally suspect yields no plan — the check runs unpruned, so
    # pruning can never change a verdict the analyzer wouldn't vouch for.
    prune: bool = False
    # DRAT only: two-pass backward (core-first) checking — the clausal
    # analogue of ``prune``, computed from the proof itself rather than a
    # resolution trace (see repro.proofs.drat).
    backward: bool = False
    # Declarative record of how the proof/trace source format was chosen
    # ("trace" / "drup" / "drat" / "auto"); the method already encodes the
    # outcome, but job options carry this so fingerprints distinguish it.
    proof_format: str | None = None
    # Content digests of (formula, trace, options), as computed by
    # repro.service.fingerprint. Purely declarative: the supervisor stamps
    # them onto the final report so a persisted verdict (verdict cache,
    # job results) names the exact inputs it is about.
    fingerprint: dict | None = None


class CheckSupervisor:
    """Runs a check under budgets with policy-driven degradation.

    ``check()`` never raises — exactly the checkers' own contract — and
    the returned report always carries the full attempt ladder in
    ``degradation``, even when it is one rung long.
    """

    def __init__(
        self,
        formula: CnfFormula,
        trace_source: str | Path | Trace,
        config: SupervisorConfig | None = None,
        **overrides,
    ):
        self.formula = formula
        self._source = trace_source
        config = config or SupervisorConfig()
        for key, value in overrides.items():
            if not hasattr(config, key):
                raise TypeError(f"unknown supervisor option {key!r}")
            setattr(config, key, value)
        if isinstance(config.policy, str):
            config.policy = CheckPolicy.parse(config.policy)
        self.config = config
        self.attempts: list[Attempt] = []
        self._loaded_trace: Trace | None = None
        self._plan = None
        self._plan_computed = False

    # -- public API ----------------------------------------------------------

    def check(self) -> CheckReport:
        config = self.config
        ladder = self._resolve_ladder(config.policy.ladder(config.method))
        report: CheckReport | None = None
        start = time.perf_counter()
        for rung, method in enumerate(ladder):
            report = self._attempt(method)
            failure = report.failure
            degradable = (
                failure is not None
                and failure.kind in DEGRADABLE_KINDS
                and rung < len(ladder) - 1
            )
            if report.verified or not degradable:
                break
        assert report is not None
        report.degradation = [attempt.to_dict() for attempt in self.attempts]
        report.check_time = time.perf_counter() - start
        if config.fingerprint is not None:
            report.fingerprint = dict(config.fingerprint)
        return report

    # -- ladder shaping -------------------------------------------------------

    def _streaming_eligible(self) -> bool:
        """Is the source a trace file big enough for the streaming tier?"""
        threshold = self.config.streaming_threshold_bytes
        if threshold is None or not isinstance(self._source, (str, Path)):
            return False
        try:
            return os.path.getsize(self._source) >= threshold
        except OSError:
            return False

    def _resolve_ladder(self, ladder: tuple[str, ...]) -> tuple[str, ...]:
        """Swap the streaming tier in as the last resort for huge traces.

        BF's delete-on-last-use residency matches the solver's own peak —
        which for a multi-GB trace can itself be a memory-out. When the
        trace file crosses ``streaming_threshold_bytes``, the fallback
        ladder's final BF rung becomes the streaming checker (BF-identical
        verdicts, but overflow spills to disk instead of failing); a
        ladder that *starts* at BF keeps its BF rung and gains streaming
        after it.
        """
        if self.config.policy.name != "fallback":
            return ladder  # strict runs exactly the requested rung
        if ladder[-1] != "bf" or not self._streaming_eligible():
            return ladder
        if len(ladder) == 1:
            return ("bf", "streaming")
        return ladder[:-1] + ("streaming",)

    # -- one rung ------------------------------------------------------------

    def _attempt(self, method: str) -> CheckReport:
        started = time.perf_counter()
        try:
            # Chaos-drill hook: an in-process fault here behaves like the
            # checker blowing up, which the ladder already classifies.
            faults.fault_point(FP_ATTEMPT, key=method)
            checker = self._build_checker(method)
            report = checker.check()
        except faults.FaultInjected as exc:
            failure = CheckFailure(
                FailureKind.WORKER_CRASH, f"injected fault: {exc}", method=method
            )
            report = CheckReport(
                method=method,
                verified=False,
                failure=failure,
                check_time=time.perf_counter() - started,
            )
        except MemoryError:
            # The allocator itself gave out (e.g. while materializing a DF
            # trace). Same degradation semantics as the logical budget.
            failure = CheckFailure(
                FailureKind.MEMORY_OUT,
                "the Python allocator raised MemoryError during checking",
                method=method,
            )
            report = CheckReport(
                method=method,
                verified=False,
                failure=failure,
                check_time=time.perf_counter() - started,
            )
        except TraceError as exc:
            # Loading a malformed trace (DF materializes it up front) must
            # honour the checkers' "never raises" contract too.
            failure = CheckFailure(FailureKind.MALFORMED_TRACE, str(exc))
            report = CheckReport(
                method=method,
                verified=False,
                failure=failure,
                check_time=time.perf_counter() - started,
            )
        outcome = "verified" if report.verified else report.failure.kind.value
        detail = "" if report.verified else report.failure.message
        self.attempts.append(
            Attempt(
                method=report.method,
                outcome=outcome,
                elapsed=time.perf_counter() - started,
                detail=detail,
                recovery_events=len(report.recovery or ()),
                pruned=report.prune is not None,
                memory=report.memory,
            )
        )
        return report

    def _prune_plan(self):
        """The shared PrunePlan, computed at most once across all rungs.

        ``None`` whenever pruning is off, the source is not a resolution
        trace (RUP proofs), or the static analyzer vetoed the trace.
        """
        if not self._plan_computed:
            self._plan_computed = True
            if self.config.prune:
                from repro.analysis.graph import compute_prune_plan

                self._plan = compute_prune_plan(self._source)
        return self._plan

    def _trace_for_df(self) -> Trace:
        """DF needs the fully materialized trace; load it once, lazily."""
        if self._loaded_trace is None:
            if isinstance(self._source, Trace):
                self._loaded_trace = self._source
            else:
                from repro.trace.io import load_trace

                self._loaded_trace = load_trace(self._source)
        return self._loaded_trace

    def _build_checker(self, method: str):
        config = self.config
        deadline = Deadline(config.timeout)
        common = dict(
            memory_limit=config.memory_limit,
            precheck=config.precheck,
            use_kernel=config.use_kernel,
            deadline=deadline,
            prune_plan=self._prune_plan(),
        )
        if method == "df":
            return DepthFirstChecker(self.formula, self._trace_for_df(), **common)
        if method == "hybrid":
            return HybridChecker(self.formula, self._source, **common)
        if method == "bf":
            return BreadthFirstChecker(
                self.formula,
                self._source,
                count_chunk_size=config.count_chunk_size,
                tmp_dir=config.tmp_dir,
                checkpoint_path=config.checkpoint_path,
                checkpoint_every=config.checkpoint_every,
                resume_from=config.resume_from,
                **common,
            )
        if method == "parallel":
            return ParallelWindowedChecker(
                self.formula,
                self._source,
                num_workers=config.num_workers,
                window_size=config.window_size,
                tmp_dir=config.tmp_dir,
                window_timeout=config.window_timeout,
                max_retries=config.max_retries,
                inprocess_fallback=config.inprocess_fallback,
                **common,
            )
        if method == "streaming":
            # No memory_limit: the streaming tier's whole contract is that
            # memory pressure becomes disk traffic, never a MEMORY_OUT.
            # The budget defaults to the run's memory limit, so "fall back
            # when X units is exceeded" and "stay under X units" agree.
            return StreamingWindowChecker(
                self.formula,
                self._source,
                memory_budget=(
                    config.memory_window
                    if config.memory_window is not None
                    else config.memory_limit
                ),
                window_records=config.window_records,
                count_chunk_size=config.count_chunk_size,
                tmp_dir=config.tmp_dir,
                precheck=config.precheck,
                use_kernel=config.use_kernel,
                deadline=deadline,
                prune_plan=self._prune_plan(),
            )
        if method == "rup":
            # The supervisor's source *is* the DRUP proof here; there is no
            # resolution trace to analyze, so the plan is always None.
            return RupChecker(
                self.formula, self._source, deadline=deadline,
                prune_plan=self._prune_plan(),
            )
        if method == "drat":
            # Like rup, the source is the clausal proof file. Backward
            # (core-first) checking replaces trace-based pruning here.
            from repro.proofs.drat import DratChecker

            return DratChecker(
                self.formula,
                self._source,
                backward=config.backward,
                deadline=deadline,
            )
        raise ValueError(f"unknown checker method {method!r}")


def supervised_check(
    formula: CnfFormula,
    trace_source: str | Path | Trace,
    **options,
) -> CheckReport:
    """One-call convenience wrapper: ``supervised_check(f, t, method="df")``."""
    return CheckSupervisor(formula, trace_source, **options).check()
