"""Reverse-unit-propagation (RUP) proof checking — "other applications".

The paper's resolution traces are the direct ancestor of today's clausal
proof formats (RUP, DRUP, DRAT). This module closes the loop: the solver
can additionally log each learned clause's *literals* in the textbook DRUP
format, and :class:`RupChecker` validates the claim without any resolve
sources — clause C is accepted iff unit propagation on the current database
plus the negation of C yields a conflict.

DRUP file format (ASCII, one clause per line):

    l1 l2 ... 0        add a learned clause
    d l1 l2 ... 0      delete a clause
    0                  the derived empty clause (end of proof)
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import IO, Iterable, Iterator, Sequence

from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.memory import Deadline
from repro.checker.report import CheckReport
from repro.checker.store import ClauseStore
from repro.checker.unitprop import UnitPropagator
from repro.cnf import CnfFormula
from repro.proofs.parser import iter_proof_steps, read_proof


class DrupWriter:
    """Logs learned-clause literals (and deletions) in DRUP format.

    Attach to the solver via ``Solver`` 's ``drup_writer`` argument. The
    writer is orthogonal to the resolution trace writer — both can be
    active at once. For the binary DRAT encoding use
    :func:`repro.proofs.open_proof_writer` (same interface).
    """

    def __init__(self, path: str | Path):
        self._handle: IO[str] = open(path, "w", encoding="ascii")
        self._closed = False

    def add_clause(self, literals: Sequence[int]) -> None:
        self._handle.write(" ".join(map(str, literals)) + " 0\n")

    def delete_clause(self, literals: Sequence[int]) -> None:
        self._handle.write("d " + " ".join(map(str, literals)) + " 0\n")

    def finish_unsat(self) -> None:
        self._handle.write("0\n")

    def close(self) -> None:
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "DrupWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_drup(path: str | Path) -> Iterator[tuple[str, list[int]]]:
    """Yield ("add" | "delete", literals) steps from a DRUP/DRAT file.

    Thin compatibility wrapper over :func:`repro.proofs.iter_proof_steps`
    — proof tokenizing lives in :mod:`repro.proofs.parser` now, which also
    understands the binary DRAT encoding (auto-detected). Tokenizer errors
    carry ``FailureKind.MALFORMED_PROOF``.
    """
    return iter_proof_steps(path)


class RupChecker:
    """Validates a DRUP proof against the original formula."""

    method = "rup"

    def __init__(
        self,
        formula: CnfFormula,
        proof_path: str | Path,
        deadline: Deadline | None = None,
        prune_plan=None,
    ):
        self.formula = formula
        self.proof_path = proof_path
        self._deadline = deadline
        # Core-first pruning. DRUP identifies lemmas by position, not ID,
        # so the plan's ``skip_ordinals`` only apply when the proof's add
        # steps align 1:1 with the trace's learned records (preprocessing
        # resolvents are traced but not DRUP-logged, breaking alignment);
        # otherwise the check silently runs unpruned. Skipping a dead lemma
        # preserves RUP-ness of every kept one: a kept clause's trivial
        # resolution chain lies entirely inside the kept cone.
        self._plan = prune_plan
        self._prune_applied = False
        self._pruned_steps = 0

    def check(self) -> CheckReport:
        """Run the check; never raises — failures land in the report."""
        start = time.perf_counter()
        failure: CheckFailure | None = None
        verified = False
        steps = 0
        try:
            verified, steps = self._run()
        except CheckFailure as exc:
            failure = exc
        prune_info = None
        if self._plan is not None:
            prune_info = self._plan.to_dict()
            prune_info["applied"] = self._prune_applied
            prune_info["steps_skipped"] = self._pruned_steps
        return CheckReport(
            method=self.method,
            verified=verified,
            failure=failure,
            clauses_built=steps,
            total_learned=steps + self._pruned_steps,
            check_time=time.perf_counter() - start,
            resolutions=steps,
            prune=prune_info,
        )

    def _proof_steps(self) -> tuple[Iterable[tuple[str, list[int]]], frozenset[int]]:
        """The proof's step stream plus the add-step ordinals to skip.

        Unpruned checks stream the proof file directly (constant memory).
        With a prune plan the proof is materialized in *one* pass —
        :func:`repro.proofs.read_proof` folds the add-step count needed
        for the plan's alignment guard into that same pass, so the file
        is never read twice.
        """
        if self._plan is None or not self._plan.skip_ordinals:
            return iter_proof_steps(self.proof_path), frozenset()
        doc = read_proof(self.proof_path)
        if doc.num_adds != self._plan.total_learned:
            return doc.steps, frozenset()  # not 1:1 with the trace: unpruned
        self._prune_applied = True
        return doc.steps, self._plan.skip_ordinals

    def _run(self) -> tuple[bool, int]:
        engine = UnitPropagator(self.formula.num_vars, store=ClauseStore())
        index_of: dict[tuple[int, ...], list[int]] = {}
        for clause in self.formula:
            index = engine.add_clause(clause.literals)
            key = tuple(sorted(set(clause.literals)))
            index_of.setdefault(key, []).append(index)

        proof_steps, skip_ordinals = self._proof_steps()
        # Deletions of skipped clauses must consume a skip credit instead of
        # removing an identical *kept* clause from the database.
        skipped_pool: dict[tuple[int, ...], int] = {}
        ordinal = 0
        steps = 0
        deadline = self._deadline
        if deadline is not None:
            deadline.check()
        ticks = 0
        for kind, literals in proof_steps:
            if deadline is not None:
                ticks += 1
                if not ticks & 0x3F:
                    deadline.check()
            if kind == "delete":
                key = tuple(sorted(set(literals)))
                credit = skipped_pool.get(key, 0)
                if credit:
                    skipped_pool[key] = credit - 1
                    continue
                indices = index_of.get(key)
                if indices:
                    engine.remove_clause(indices.pop())
                # Deleting an unknown clause is tolerated (drat-trim does too).
                continue
            if literals:
                this_ordinal = ordinal
                ordinal += 1
                if this_ordinal in skip_ordinals:
                    self._pruned_steps += 1
                    key = tuple(sorted(set(literals)))
                    skipped_pool[key] = skipped_pool.get(key, 0) + 1
                    continue  # statically dead: neither checked nor added
            steps += 1
            if not engine.propagate([-lit for lit in literals]):
                raise CheckFailure(
                    FailureKind.BAD_RESOLUTION,
                    "clause is not RUP: negating it does not propagate to "
                    "a conflict",
                    step=steps,
                    literals=literals,
                )
            if not literals:
                return True, steps  # the empty clause: proof complete
            index = engine.add_clause(literals)
            index_of.setdefault(tuple(sorted(set(literals))), []).append(index)

        raise CheckFailure(
            FailureKind.NOT_EMPTY,
            "DRUP proof ended without deriving the empty clause",
            steps=steps,
        )
