"""A small, self-contained unit-propagation engine for the RUP checker.

Deliberately independent from the solver's BCP: a checker that shares the
propagation code with the solver it validates would inherit its bugs. This
one trades speed for simplicity — counter-based propagation over clause
lists, no watched literals — but borrows the resolution kernel's reusable
buffers for its hot state: the per-call assignment lives in a
:class:`~repro.checker.kernel.SignedCounters` generation buffer (no dict
allocation per ``propagate``), and clause literals can be interned in a
shared :class:`~repro.checker.store.ClauseStore` so duplicated proof
clauses cost one buffer.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.checker.kernel import SignedCounters
from repro.checker.store import ClauseStore


class UnitPropagator:
    """Propagates unit clauses over a growable clause set.

    Clauses are added with :meth:`add_clause`; :meth:`propagate` runs unit
    propagation from a set of assumption literals and reports whether a
    conflict (some clause with all literals false) was reached.
    """

    def __init__(self, num_vars: int, store: ClauseStore | None = None):
        self.num_vars = num_vars
        self.clauses: list[Sequence[int]] = []
        self._store = store
        self._assign = SignedCounters(num_vars)
        self._occurrences: dict[int, list[int]] = {}
        self._unit_indices: set[int] = set()
        self._has_empty = False

    def grow(self, num_vars: int) -> None:
        if num_vars > self.num_vars:
            self.num_vars = num_vars

    def add_clause(self, literals: Sequence[int]) -> int:
        """Add a clause; returns its index."""
        index = len(self.clauses)
        if self._store is not None:
            clause: Sequence[int] = self._store.intern(literals)
        else:
            clause = list(dict.fromkeys(literals))
        self.clauses.append(clause)
        if not clause:
            self._has_empty = True
        elif len(clause) == 1:
            self._unit_indices.add(index)
        for lit in clause:
            self._occurrences.setdefault(lit, []).append(index)
            var = abs(lit)
            if var > self.num_vars:
                self.num_vars = var
        return index

    def remove_clause(self, index: int) -> None:
        """Remove a clause (its slot is tombstoned)."""
        clause = self.clauses[index]
        if clause is None:
            return
        for lit in clause:
            self._occurrences[lit].remove(index)
        self._unit_indices.discard(index)
        if self._store is not None:
            self._store.release(clause)
        self.clauses[index] = None  # type: ignore[call-overload]

    def propagate(self, assumptions: Iterable[int]) -> bool:
        """Unit-propagate from ``assumptions``; True iff a conflict arises.

        Conflicting assumptions (both phases of a variable) count as an
        immediate conflict. Assignment state is a ±generation stamp per
        variable — ``+gen`` true, ``-gen`` false — reset in O(1) by
        bumping the generation.
        """
        if self._has_empty:
            return True
        counters = self._assign
        counters.ensure(self.num_vars)
        marks = counters.marks
        gen = counters.new_generation()
        neg_gen = -gen
        queue: list[int] = []
        unit_literals = [self.clauses[index][0] for index in self._unit_indices]
        for lit in list(assumptions) + unit_literals:
            var = abs(lit)
            if var >= len(marks):
                counters.ensure(var)
                marks = counters.marks
            desired = gen if lit > 0 else neg_gen
            mark = marks[var]
            if mark != gen and mark != neg_gen:
                marks[var] = desired
                queue.append(lit)
            elif mark != desired:
                return True

        head = 0
        while head < len(queue):
            lit = queue[head]
            head += 1
            # Clauses containing -lit may have become unit or conflicting.
            for index in self._occurrences.get(-lit, ()):
                clause = self.clauses[index]
                if clause is None:
                    continue
                unit_lit = 0
                satisfied = False
                for clause_lit in clause:
                    mark = marks[abs(clause_lit)]
                    if mark != gen and mark != neg_gen:
                        if unit_lit:
                            unit_lit = None  # two free literals: not unit
                            break
                        unit_lit = clause_lit
                    elif (mark == gen) == (clause_lit > 0):
                        satisfied = True
                        break
                if satisfied or unit_lit is None:
                    continue
                if unit_lit == 0:
                    return True  # all literals false: conflict
                marks[abs(unit_lit)] = gen if unit_lit > 0 else neg_gen
                queue.append(unit_lit)
        return False
