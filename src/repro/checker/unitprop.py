"""A small, self-contained unit-propagation engine for the RUP checker.

Deliberately independent from the solver's BCP: a checker that shares the
propagation code with the solver it validates would inherit its bugs. This
one trades speed for simplicity — counter-based propagation over clause
lists, no watched literals.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class UnitPropagator:
    """Propagates unit clauses over a growable clause set.

    Clauses are added with :meth:`add_clause`; :meth:`propagate` runs unit
    propagation from a set of assumption literals and reports whether a
    conflict (some clause with all literals false) was reached.
    """

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        self.clauses: list[list[int]] = []
        self._occurrences: dict[int, list[int]] = {}
        self._unit_indices: set[int] = set()
        self._has_empty = False

    def grow(self, num_vars: int) -> None:
        if num_vars > self.num_vars:
            self.num_vars = num_vars

    def add_clause(self, literals: Sequence[int]) -> int:
        """Add a clause; returns its index."""
        index = len(self.clauses)
        clause = list(dict.fromkeys(literals))
        self.clauses.append(clause)
        if not clause:
            self._has_empty = True
        elif len(clause) == 1:
            self._unit_indices.add(index)
        for lit in clause:
            self._occurrences.setdefault(lit, []).append(index)
            var = abs(lit)
            if var > self.num_vars:
                self.num_vars = var
        return index

    def remove_clause(self, index: int) -> None:
        """Remove a clause (its slot is tombstoned)."""
        clause = self.clauses[index]
        if clause is None:
            return
        for lit in clause:
            self._occurrences[lit].remove(index)
        self._unit_indices.discard(index)
        self.clauses[index] = None  # type: ignore[call-overload]

    def propagate(self, assumptions: Iterable[int]) -> bool:
        """Unit-propagate from ``assumptions``; True iff a conflict arises.

        Conflicting assumptions (both phases of a variable) count as an
        immediate conflict.
        """
        if self._has_empty:
            return True
        value: dict[int, bool] = {}
        queue: list[int] = []
        unit_literals = [self.clauses[index][0] for index in self._unit_indices]
        for lit in list(assumptions) + unit_literals:
            var = abs(lit)
            phase = lit > 0
            existing = value.get(var)
            if existing is None:
                value[var] = phase
                queue.append(lit)
            elif existing != phase:
                return True

        head = 0
        while head < len(queue):
            lit = queue[head]
            head += 1
            # Clauses containing -lit may have become unit or conflicting.
            for index in self._occurrences.get(-lit, ()):
                clause = self.clauses[index]
                if clause is None:
                    continue
                unit_lit = 0
                satisfied = False
                for clause_lit in clause:
                    existing = value.get(abs(clause_lit))
                    if existing is None:
                        if unit_lit:
                            unit_lit = None  # two free literals: not unit
                            break
                        unit_lit = clause_lit
                    elif existing == (clause_lit > 0):
                        satisfied = True
                        break
                if satisfied or unit_lit is None:
                    continue
                if unit_lit == 0:
                    return True  # all literals false: conflict
                value[abs(unit_lit)] = unit_lit > 0
                queue.append(unit_lit)
        return False
