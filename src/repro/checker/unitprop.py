"""A small, self-contained unit-propagation engine for the RUP checker.

Deliberately independent from the solver's BCP: a checker that shares the
propagation code with the solver it validates would inherit its bugs. This
one trades speed for simplicity — counter-based propagation over clause
lists, no watched literals — but borrows the resolution kernel's reusable
buffers for its hot state: the per-call assignment lives in a
:class:`~repro.checker.kernel.SignedCounters` generation buffer (no dict
allocation per ``propagate``), and clause literals can be interned in a
shared :class:`~repro.checker.store.ClauseStore` so duplicated proof
clauses cost one buffer.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.checker.kernel import SignedCounters
from repro.checker.store import ClauseStore


class UnitPropagator:
    """Propagates unit clauses over a growable clause set.

    Clauses are added with :meth:`add_clause`; :meth:`propagate` runs unit
    propagation from a set of assumption literals and reports whether a
    conflict (some clause with all literals false) was reached.
    """

    def __init__(self, num_vars: int, store: ClauseStore | None = None):
        self.num_vars = num_vars
        self.clauses: list[Sequence[int]] = []
        self._store = store
        self._assign = SignedCounters(num_vars)
        self._occurrences: dict[int, list[int]] = {}
        self._unit_indices: set[int] = set()
        self._empty_indices: set[int] = set()
        self._has_empty = False

    def grow(self, num_vars: int) -> None:
        if num_vars > self.num_vars:
            self.num_vars = num_vars

    def add_clause(self, literals: Sequence[int]) -> int:
        """Add a clause; returns its index."""
        index = len(self.clauses)
        if self._store is not None:
            clause: Sequence[int] = self._store.intern(literals)
        else:
            clause = list(dict.fromkeys(literals))
        self.clauses.append(clause)
        if not clause:
            self._has_empty = True
            self._empty_indices.add(index)
        elif len(clause) == 1:
            self._unit_indices.add(index)
        for lit in clause:
            self._occurrences.setdefault(lit, []).append(index)
            var = abs(lit)
            if var > self.num_vars:
                self.num_vars = var
        return index

    def occurrences(self, lit: int) -> Sequence[int]:
        """Indices of clauses containing ``lit``.

        The RAT check enumerates resolution partners through this index.
        Entries for tombstoned slots never appear (removal scrubs them),
        but callers iterating while mutating should still skip ``None``
        slots in :attr:`clauses`.
        """
        return self._occurrences.get(lit, ())

    def remove_clause(self, index: int) -> None:
        """Remove a clause (its slot is tombstoned)."""
        clause = self.clauses[index]
        if clause is None:
            return
        for lit in clause:
            self._occurrences[lit].remove(index)
        self._unit_indices.discard(index)
        self._empty_indices.discard(index)
        self._has_empty = bool(self._empty_indices)
        if self._store is not None:
            self._store.release(clause)
        self.clauses[index] = None  # type: ignore[call-overload]

    def propagate(self, assumptions: Iterable[int]) -> bool:
        """Unit-propagate from ``assumptions``; True iff a conflict arises.

        Conflicting assumptions (both phases of a variable) count as an
        immediate conflict. Assignment state is a ±generation stamp per
        variable — ``+gen`` true, ``-gen`` false — reset in O(1) by
        bumping the generation.
        """
        if self._has_empty:
            return True
        counters = self._assign
        counters.ensure(self.num_vars)
        marks = counters.marks
        gen = counters.new_generation()
        neg_gen = -gen
        queue: list[int] = []
        unit_literals = [self.clauses[index][0] for index in self._unit_indices]
        for lit in list(assumptions) + unit_literals:
            var = abs(lit)
            if var >= len(marks):
                counters.ensure(var)
                marks = counters.marks
            desired = gen if lit > 0 else neg_gen
            mark = marks[var]
            if mark != gen and mark != neg_gen:
                marks[var] = desired
                queue.append(lit)
            elif mark != desired:
                return True

        head = 0
        while head < len(queue):
            lit = queue[head]
            head += 1
            # Clauses containing -lit may have become unit or conflicting.
            for index in self._occurrences.get(-lit, ()):
                clause = self.clauses[index]
                if clause is None:
                    continue
                unit_lit = 0
                satisfied = False
                for clause_lit in clause:
                    mark = marks[abs(clause_lit)]
                    if mark != gen and mark != neg_gen:
                        if unit_lit:
                            unit_lit = None  # two free literals: not unit
                            break
                        unit_lit = clause_lit
                    elif (mark == gen) == (clause_lit > 0):
                        satisfied = True
                        break
                if satisfied or unit_lit is None:
                    continue
                if unit_lit == 0:
                    return True  # all literals false: conflict
                marks[abs(unit_lit)] = gen if unit_lit > 0 else neg_gen
                queue.append(unit_lit)
        return False

    def propagate_tracked(
        self, assumptions: Iterable[int]
    ) -> tuple[bool, list[int]]:
        """Like :meth:`propagate`, but also return the conflict's clause cone.

        Returns ``(conflict, used)`` where ``used`` is a sorted list of
        clause indices: the conflicting clause plus, transitively, the
        reason clause of every propagated literal that fed it. That cone
        alone reproduces the conflict, which is exactly what backward
        (core-first) proof checking needs to mark antecedent lemmas.
        ``used`` is empty when there is no conflict, or when the conflict
        comes from the assumptions alone.
        """
        if self._has_empty:
            return True, [min(self._empty_indices)]
        counters = self._assign
        counters.ensure(self.num_vars)
        marks = counters.marks
        gen = counters.new_generation()
        neg_gen = -gen
        reasons: dict[int, int] = {}  # var -> index of the clause implying it
        queue: list[int] = []
        seeds = [(lit, None) for lit in assumptions]
        seeds += [
            (self.clauses[index][0], index) for index in self._unit_indices
        ]
        for lit, reason in seeds:
            var = abs(lit)
            if var >= len(marks):
                counters.ensure(var)
                marks = counters.marks
            desired = gen if lit > 0 else neg_gen
            mark = marks[var]
            if mark != gen and mark != neg_gen:
                marks[var] = desired
                if reason is not None:
                    reasons[var] = reason
                queue.append(lit)
            elif mark != desired:
                roots = [entry for entry in (reason, reasons.get(var)) if entry is not None]
                return True, self._conflict_cone(roots, reasons)

        head = 0
        while head < len(queue):
            lit = queue[head]
            head += 1
            for index in self._occurrences.get(-lit, ()):
                clause = self.clauses[index]
                if clause is None:
                    continue
                unit_lit = 0
                satisfied = False
                for clause_lit in clause:
                    mark = marks[abs(clause_lit)]
                    if mark != gen and mark != neg_gen:
                        if unit_lit:
                            unit_lit = None
                            break
                        unit_lit = clause_lit
                    elif (mark == gen) == (clause_lit > 0):
                        satisfied = True
                        break
                if satisfied or unit_lit is None:
                    continue
                if unit_lit == 0:
                    return True, self._conflict_cone([index], reasons)
                var = abs(unit_lit)
                marks[var] = gen if unit_lit > 0 else neg_gen
                reasons[var] = index
                queue.append(unit_lit)
        return False, []

    def _conflict_cone(
        self, roots: Iterable[int], reasons: dict[int, int]
    ) -> list[int]:
        """Transitive reason closure of ``roots`` over the reason graph."""
        cone: set[int] = set()
        stack = list(roots)
        while stack:
            index = stack.pop()
            if index in cone:
                continue
            cone.add(index)
            for lit in self.clauses[index] or ():
                reason = reasons.get(abs(lit))
                if reason is not None and reason not in cone:
                    stack.append(reason)
        return sorted(cone)
