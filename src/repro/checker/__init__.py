"""Independent resolution-based checkers for SAT solver validation (§3).

Given the original CNF formula and the solver's trace, each checker tries to
re-derive the empty clause by resolution. Success proves the UNSAT claim;
failure pinpoints a bug in the solver (or its trace generation) with a
structured diagnostic.

* :class:`DepthFirstChecker` — Fig. 3 of the paper. Builds only the clauses
  the proof needs; holds the whole trace (and every built clause) in memory.
  Byproduct: the unsatisfiable core used by §4's Table 3.
* :class:`BreadthFirstChecker` — streams the trace in generation order with
  a counting pre-pass and reference-counted deletion; peak memory never
  exceeds what the solver itself held.
* :class:`HybridChecker` — the paper's future-work design: DF-style marking
  over the clause-ID graph plus BF-style streaming of only the needed
  clauses.
* :class:`ParallelWindowedChecker` — partitions the trace into clause-ID
  windows and verifies them concurrently across worker processes, with a
  byte-identical cross-check on the interface clauses windows share.
* :class:`StreamingWindowChecker` — the constant-memory tier: decodes an
  mmap'd trace in batches behind a shifting window whose resident clauses
  are bounded by a budget; overflow spills to disk, so it never
  memory-outs regardless of trace size.
* :func:`check_model` — the easy direction: linear-time validation of a
  satisfying assignment.
* :class:`RupChecker` — modern extension: validates DRUP-style proofs by
  reverse unit propagation (the lineage that leads to drat-trim).
* :class:`DratChecker` (re-exported from :mod:`repro.proofs`) — the full
  clausal front end: text or binary DRAT with RAT fallback and two-pass
  backward (core-first) checking.
* :class:`CheckSupervisor` — the resilience layer: wall-clock/memory
  budgets, the DF → hybrid → BF degradation ladder, worker-crash recovery
  and BF checkpoint/resume (see :mod:`repro.checker.supervisor`).
"""

from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.report import CheckReport
from repro.checker.resolution import resolve, resolve_chain, ResolutionError
from repro.checker.memory import (
    CheckTimeout,
    Deadline,
    MemoryLimitExceeded,
    MemoryMeter,
)
from repro.checker.kernel import (
    KernelEngine,
    ReferenceEngine,
    ResolutionKernel,
    SignedCounters,
    make_engine,
)
from repro.checker.store import ClauseStore
from repro.checker.model import check_model
from repro.checker.precheck import run_precheck
from repro.checker.depth_first import DepthFirstChecker
from repro.checker.breadth_first import (
    BfCheckpoint,
    BreadthFirstChecker,
    CheckpointError,
    load_checkpoint,
    write_checkpoint,
)
from repro.checker.hybrid import HybridChecker
from repro.checker.parallel import ParallelWindowedChecker, WindowManifest, run_window
from repro.checker.streaming import StreamingWindowChecker
from repro.checker.rup import RupChecker, DrupWriter
from repro.proofs.drat import DratChecker
from repro.checker.supervisor import (
    CheckPolicy,
    CheckSupervisor,
    SupervisorConfig,
    supervised_check,
)

__all__ = [
    "CheckFailure",
    "FailureKind",
    "CheckReport",
    "resolve",
    "resolve_chain",
    "ResolutionError",
    "MemoryMeter",
    "MemoryLimitExceeded",
    "CheckTimeout",
    "Deadline",
    "ResolutionKernel",
    "ClauseStore",
    "KernelEngine",
    "ReferenceEngine",
    "make_engine",
    "SignedCounters",
    "check_model",
    "run_precheck",
    "DepthFirstChecker",
    "BreadthFirstChecker",
    "HybridChecker",
    "ParallelWindowedChecker",
    "StreamingWindowChecker",
    "WindowManifest",
    "run_window",
    "RupChecker",
    "DrupWriter",
    "DratChecker",
    "CheckPolicy",
    "CheckSupervisor",
    "SupervisorConfig",
    "supervised_check",
    "BfCheckpoint",
    "CheckpointError",
    "load_checkpoint",
    "write_checkpoint",
]
