"""The parallel windowed checker: verify clause-ID windows concurrently.

Motivated by window-shifting proof verification (Chen) and by splitting
certified checking into independent, separately-validated pieces
(Cruz-Filipe et al.): a resolution trace ordered by clause ID partitions
into contiguous windows whose resolutions only ever look backwards.

Pipeline:

1. **Pre-pass** (coordinator, one stream over the trace, reusing the BF
   checker's counting idea): collect the integer ID graph, the level-0
   trail and the final conflicts; enforce the stream-order invariants the
   BF checker enforces (header first, strictly increasing learned IDs).
2. **Window planning**: partition the learned records into windows of
   equal record count (:mod:`repro.trace.windows`); compute, per window,
   the *interface clauses* — learned clauses referenced across a window
   boundary — and write a per-window **manifest** (in-window records,
   interface-closure records, use counts) to a temp directory.
3. **Workers** (``multiprocessing``): each worker replays only its
   window's resolutions against the formula plus the interface clauses it
   imports. Imported clauses are *independently re-derived* from their
   recorded chains (the closure in the manifest), so no worker ever waits
   on another — the redundancy is then cross-checked in step 4.
4. **Merge** (coordinator): every interface clause exported by the window
   that owns it must be byte-identical to what each importing window
   derived; then the empty-clause derivation runs over the exported
   interface, and per-window reports merge into one
   :class:`~repro.checker.report.CheckReport` (peak logical memory =
   max across workers + the coordinator's interface overhead).

``check()`` never raises — failures land in the report, exactly like the
sequential checkers. That contract extends to process-level faults: a
worker killed mid-window (SIGKILL, OOM killer) or a broken pool is
detected, the affected windows are retried against a fresh pool up to
``max_retries`` times, still-failing windows are re-assigned to in-process
sequential checking, and only when every recovery layer is exhausted does
the run report ``FailureKind.WORKER_CRASH`` — with the window IDs involved.
Hung windows are bounded by ``window_timeout`` (parent-side watchdog) and
by the deadline carried inside each manifest (worker-side polling).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import shutil
import tempfile
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import FrozenSet, Iterator

from repro import faults
from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.kernel import ClauseLits, make_engine
from repro.checker.level_zero import LevelZeroState, derive_empty_clause
from repro.checker.memory import Deadline, MemoryMeter
from repro.checker.report import CheckReport
from repro.checker.resolution import ResolutionError
from repro.cnf import CnfFormula
from repro.trace.io import iter_trace_records
from repro.trace.records import (
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    Trace,
    TraceError,
    TraceHeader,
    TraceRecord,
    TraceResult,
)
from repro.trace.windows import WindowPlan, plan_windows


@dataclass
class WindowManifest:
    """Everything one worker needs to verify one window in isolation."""

    index: int
    lo: int
    hi: int
    num_original: int
    records: list[tuple[int, tuple[int, ...]]]  # in-window (cid, sources), stream order
    closure: list[tuple[int, tuple[int, ...]]]  # interface scaffolding, ascending cid
    imports: tuple[int, ...]  # direct cross-window imports (subset of closure)
    exports: tuple[int, ...]  # in-window cids later windows / the final stage need
    counts: dict[int, int]  # in-window use counts (BF-style reference counting)
    memory_limit: int | None
    use_kernel: bool = True  # marking kernel (default) or the frozenset oracle
    timeout_s: float | None = None  # worker-side wall-clock budget for this window


def _interface_bytes(literals: FrozenSet[int] | tuple[int, ...]) -> bytes:
    """Canonical byte encoding of a clause for interface comparison."""
    return b",".join(b"%d" % lit for lit in sorted(literals))


def _failure_payload(exc: CheckFailure) -> tuple[str, str, dict]:
    """A picklable (kind, message, context) triple for cross-process return."""
    context = {
        key: value if isinstance(value, (int, float, str, bool, type(None))) else repr(value)
        for key, value in exc.context.items()
    }
    return exc.kind.value, exc.message, context


def _revive_failure(payload: tuple[str, str, dict]) -> CheckFailure:
    kind_value, message, context = payload
    return CheckFailure(FailureKind(kind_value), message, **context)


def run_window(formula: CnfFormula, manifest: WindowManifest) -> dict:
    """Verify one window; returns a picklable outcome dict (never raises)."""
    meter = MemoryMeter(limit=manifest.memory_limit)
    deadline = Deadline(getattr(manifest, "timeout_s", None))
    engine = make_engine(manifest.use_kernel, formula)
    built: dict[int, ClauseLits] = {}
    stats = {"resolutions": 0, "import_resolutions": 0, "clauses_built": 0, "import_builds": 0}
    exports = frozenset(manifest.exports)

    def get_clause(cid: int) -> ClauseLits:
        if cid <= manifest.num_original:
            return engine.original(cid)
        clause = built.get(cid)
        if clause is None:
            raise CheckFailure(
                FailureKind.UNKNOWN_CLAUSE,
                "clause is not resident: never defined, defined later, or "
                "already fully consumed",
                cid=cid,
                window=manifest.index,
            )
        return clause

    def build_chain(cid: int, sources: tuple[int, ...], counter: str) -> ClauseLits:
        if not sources:
            raise CheckFailure(
                FailureKind.MALFORMED_TRACE,
                "learned clause record has no resolve sources",
                cid=cid,
            )
        for source in sources:
            if source >= cid:
                raise CheckFailure(
                    FailureKind.CYCLIC_TRACE,
                    "learned clause resolves from a clause with an ID not "
                    "smaller than its own",
                    cid=cid,
                    source=source,
                )
        try:
            clause = engine.chain(cid, sources, get_clause)
        except ResolutionError as exc:
            stats[counter] += max(0, (exc.context.get("chain_position") or 1) - 1)
            raise
        stats[counter] += len(sources) - 1
        return clause

    ticks = 0
    try:
        deadline.check()
        # Phase 1: independently re-derive the imported interface clauses.
        # Scaffolding stays resident for the whole window (interface overhead).
        for cid, sources in manifest.closure:
            ticks += 1
            if not ticks & 0xFF:
                deadline.check()
            built[cid] = build_chain(cid, sources, "import_resolutions")
            stats["import_builds"] += 1
            meter.allocate(meter.clause_units(len(built[cid])))

        # Phase 2: BF-style replay of the window's own records, freeing each
        # clause the moment its last in-window use completes (exports and
        # interface scaffolding are retained).
        remaining = dict(manifest.counts)
        for cid, sources in manifest.records:
            ticks += 1
            if not ticks & 0xFF:
                deadline.check()
            clause = build_chain(cid, sources, "resolutions")
            stats["clauses_built"] += 1
            for source in sources:
                if manifest.lo <= source < cid and source not in exports:
                    left = remaining.get(source)
                    if left is None:
                        continue
                    if left <= 1:
                        del remaining[source]
                        freed = built.pop(source, None)
                        if freed is not None:
                            meter.release(meter.clause_units(len(freed)))
                            engine.release(freed)
                    else:
                        remaining[source] = left - 1
            if remaining.get(cid, 0) > 0 or cid in exports:
                built[cid] = clause
                meter.allocate(meter.clause_units(len(clause)))
            else:
                engine.release(clause)

        export_lits = {}
        for cid in manifest.exports:
            clause = built.get(cid)
            if clause is None:
                raise CheckFailure(
                    FailureKind.UNKNOWN_CLAUSE,
                    "a clause needed by a later window is never defined in "
                    "its own window",
                    cid=cid,
                    window=manifest.index,
                )
            export_lits[cid] = tuple(sorted(clause))
        import_lits = {cid: tuple(sorted(built[cid])) for cid in manifest.imports}
    except CheckFailure as exc:
        return {"window": manifest.index, "failure": _failure_payload(exc)}
    except TraceError as exc:
        return {
            "window": manifest.index,
            "failure": (FailureKind.MALFORMED_TRACE.value, str(exc), {}),
        }

    return {
        "window": manifest.index,
        "failure": None,
        "peak_units": meter.peak,
        "exports": export_lits,
        "imports": import_lits,
        **stats,
    }


# -- multiprocessing plumbing (top-level for spawn-safety) -----------------------

_WORKER_FORMULA: CnfFormula | None = None

# Process-level fault injection for the recovery tests — the worker-side
# analogue of repro.solver.buggy. The legacy spelling
# ``REPRO_CHECK_FAULT="<mode>:<window>:<token_path>[:<seconds>]"`` still
# works (repro.faults translates it into a key-gated plan entry on this
# fault point); the token file makes the fault one-shot across processes:
# the first worker to unlink it wins, so a retried window runs clean —
# exactly the transient fault (OOM kill, preemption) the recovery
# machinery exists for.
FAULT_ENV = faults.LEGACY_CHECK_FAULT_ENV

FP_WINDOW = faults.register_fault_point(
    "parallel.window",
    doc="inside a parallel-check worker, before it checks its window "
        "(key = window index)",
)


def _worker_init(formula: CnfFormula) -> None:
    global _WORKER_FORMULA
    _WORKER_FORMULA = formula


def _check_window_task(manifest_path: str) -> dict:
    assert _WORKER_FORMULA is not None, "worker pool initializer did not run"
    with open(manifest_path, "rb") as handle:
        manifest = pickle.load(handle)
    faults.fault_point(FP_WINDOW, key=manifest.index)
    return run_window(_WORKER_FORMULA, manifest)


class ParallelWindowedChecker:
    """Validates an UNSAT claim by checking clause-ID windows concurrently."""

    method = "parallel-windowed"

    def __init__(
        self,
        formula: CnfFormula,
        trace_source: str | Path | Trace,
        num_workers: int = 2,
        window_size: int | None = None,
        memory_limit: int | None = None,
        tmp_dir: str | Path | None = None,
        precheck: bool = False,
        use_kernel: bool = True,
        deadline: Deadline | None = None,
        window_timeout: float | None = None,
        max_retries: int = 1,
        inprocess_fallback: bool = True,
        prune_plan=None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        self.formula = formula
        self._source = trace_source
        self._num_workers = num_workers
        self._window_size = window_size
        self._memory_limit = memory_limit
        self._use_kernel = use_kernel
        self._tmp_dir = str(tmp_dir) if tmp_dir is not None else None
        self._precheck = precheck
        self.precheck_report = None
        self.meter = MemoryMeter()  # the coordinator's interface accounting
        self._total_learned = 0
        self.plan: WindowPlan | None = None
        self._deadline = deadline
        self._window_timeout = window_timeout
        self._max_retries = max_retries
        self._inprocess_fallback = inprocess_fallback
        # Core-first pruning: dead clauses are dropped from the pre-pass ID
        # graph, so windows replay (and ship interfaces for) only the cone.
        # The cone is closed under resolve sources, so every import still
        # resolves within the pruned graph.
        self._plan = prune_plan
        # One dict per fault-handling event (crash, hang, retry, inline
        # re-assignment), in order; surfaced as ``CheckReport.recovery``.
        self.recovery_events: list[dict] = []

    # -- public API ----------------------------------------------------------

    def check(self) -> CheckReport:
        """Run the check; never raises — failures land in the report."""
        start = time.perf_counter()
        failure: CheckFailure | None = None
        verified = False
        window_stats: list[dict] = []
        resolutions = 0
        clauses_built = 0
        peak = 0
        try:
            if self._deadline is not None:
                self._deadline.check()
            if self._precheck:
                from repro.checker.precheck import run_precheck

                self.precheck_report = run_precheck(self._source)
            graph, level_zero, final_conflicts, status = self._pre_pass()
            if status != "UNSAT":
                raise CheckFailure(
                    FailureKind.BAD_STATUS,
                    "trace does not claim UNSAT; nothing to check",
                    status=status,
                )
            if not final_conflicts:
                raise CheckFailure(
                    FailureKind.BAD_FINAL_CONFLICT,
                    "trace has no final conflicting clause",
                )
            manifests = self._build_manifests(graph, level_zero, final_conflicts)
            outcomes = self._run_windows(manifests)
            interface = self._merge_interfaces(outcomes)
            for outcome in outcomes:
                window_stats.append(
                    {
                        "window": outcome["window"],
                        "clauses_built": outcome["clauses_built"],
                        "import_builds": outcome["import_builds"],
                        "resolutions": outcome["resolutions"],
                        "import_resolutions": outcome["import_resolutions"],
                        "peak_units": outcome["peak_units"],
                        "num_imports": len(outcome["imports"]),
                        "num_exports": len(outcome["exports"]),
                    }
                )
                resolutions += outcome["resolutions"] + outcome["import_resolutions"]
                clauses_built += outcome["clauses_built"]
                peak = max(peak, outcome["peak_units"])
            resolutions += self._final_stage(interface, level_zero, final_conflicts[0])
            verified = True
        except CheckFailure as exc:
            failure = exc
        except TraceError as exc:
            failure = CheckFailure(FailureKind.MALFORMED_TRACE, str(exc))
        return CheckReport(
            method=self.method,
            verified=verified,
            failure=failure,
            clauses_built=clauses_built,
            total_learned=self._total_learned,
            peak_memory_units=peak + self.meter.peak,
            check_time=time.perf_counter() - start,
            resolutions=resolutions,
            window_stats=window_stats or None,
            recovery=self.recovery_events or None,
            prune=self._plan.to_dict() if self._plan is not None else None,
            # Workers ran in their own processes; their stores are gone by
            # now, so the cross-worker unit peak is the best we can report.
            memory={"peak_units": peak + self.meter.peak},
        )

    # -- pre-pass ------------------------------------------------------------

    def _records(self) -> Iterator[TraceRecord]:
        if isinstance(self._source, Trace):
            return self._source.records()
        return iter_trace_records(self._source)

    def _pre_pass(self):
        """One stream over the trace: ID graph + trail + conflicts + claim."""
        graph: dict[int, tuple[int, ...]] = {}
        level_zero: list[LevelZeroAssignment] = []
        final_conflicts: list[int] = []
        status = "UNKNOWN"
        num_original: int | None = None
        last_cid: int | None = None
        total_learned = 0
        skip = self._plan.skip if self._plan is not None else None
        deadline = self._deadline
        ticks = 0
        for record in self._records():
            if deadline is not None:
                ticks += 1
                if not ticks & 0xFF:
                    deadline.check()
            if isinstance(record, TraceHeader):
                if num_original is None:
                    num_original = record.num_original_clauses
                    last_cid = num_original
                if self.formula.num_clauses != record.num_original_clauses:
                    raise CheckFailure(
                        FailureKind.UNKNOWN_CLAUSE,
                        "formula / trace disagree on the number of original clauses",
                        formula_clauses=self.formula.num_clauses,
                        trace_clauses=record.num_original_clauses,
                    )
            elif isinstance(record, LearnedClause):
                if num_original is None:
                    raise CheckFailure(
                        FailureKind.BAD_HEADER, "trace has no header before its records"
                    )
                if last_cid is not None and record.cid <= last_cid:
                    raise CheckFailure(
                        FailureKind.CYCLIC_TRACE,
                        "learned clause IDs must be strictly increasing",
                        cid=record.cid,
                        previous=last_cid,
                    )
                last_cid = record.cid
                total_learned += 1
                if skip is not None and record.cid in skip:
                    continue  # statically dead: never windowed, never shipped
                graph[record.cid] = record.sources
            elif isinstance(record, LevelZeroAssignment):
                level_zero.append(record)
            elif isinstance(record, FinalConflict):
                final_conflicts.append(record.cid)
            elif isinstance(record, TraceResult):
                status = record.status
        if num_original is None:
            raise CheckFailure(FailureKind.BAD_HEADER, "trace has no header")
        self._num_original = num_original
        self._total_learned = total_learned
        return graph, level_zero, final_conflicts, status

    # -- planning ------------------------------------------------------------

    def _build_manifests(
        self,
        graph: dict[int, tuple[int, ...]],
        level_zero: list[LevelZeroAssignment],
        final_conflicts: list[int],
    ) -> list[WindowManifest]:
        num_original = self._num_original
        if self._window_size is not None:
            plan = plan_windows(graph, num_original, window_size=self._window_size)
        else:
            plan = plan_windows(graph, num_original, num_windows=self._num_workers)
        self.plan = plan

        imports: list[set[int]] = [set() for _ in plan.windows]
        exports: list[set[int]] = [set() for _ in plan.windows]
        counts: list[dict[int, int]] = [{} for _ in plan.windows]
        records: list[list[tuple[int, tuple[int, ...]]]] = [[] for _ in plan.windows]

        for cid, sources in graph.items():
            window = plan.window_of(cid)
            records[window.index].append((cid, sources))
            for source in sources:
                if source <= num_original or source >= cid:
                    continue  # originals need no interface; cycles fail in-window
                if source >= window.lo:
                    counts[window.index][source] = counts[window.index].get(source, 0) + 1
                else:
                    imports[window.index].add(source)

        # The final derivation (run by the coordinator) imports the first
        # final conflict and every learned level-0 antecedent.
        final_roots = {cid for cid in final_conflicts[:1] if cid > num_original}
        final_roots.update(
            entry.antecedent for entry in level_zero if entry.antecedent > num_original
        )
        for root in final_roots:
            if root not in graph:
                raise CheckFailure(
                    FailureKind.UNKNOWN_CLAUSE,
                    "trace references a clause ID that was never defined",
                    cid=root,
                )
            exports[plan.window_of(root).index].add(root)
        for index, imported in enumerate(imports):
            for cid in imported:
                if cid not in graph:
                    raise CheckFailure(
                        FailureKind.UNKNOWN_CLAUSE,
                        "trace references a clause ID that was never defined",
                        cid=cid,
                    )
                exports[plan.window_of(cid).index].add(cid)

        manifests = []
        for window in plan.windows:
            closure = self._import_closure(graph, imports[window.index])
            manifests.append(
                WindowManifest(
                    index=window.index,
                    lo=window.lo,
                    hi=window.hi,
                    num_original=num_original,
                    records=records[window.index],
                    closure=closure,
                    imports=tuple(sorted(imports[window.index])),
                    exports=tuple(sorted(exports[window.index])),
                    counts=counts[window.index],
                    memory_limit=self._memory_limit,
                    use_kernel=self._use_kernel,
                )
            )
        return manifests

    def _import_closure(
        self, graph: dict[int, tuple[int, ...]], imports: set[int]
    ) -> list[tuple[int, tuple[int, ...]]]:
        """Transitive derivation closure of a window's imported clauses."""
        num_original = self._num_original
        closure: set[int] = set()
        stack = list(imports)
        while stack:
            cid = stack.pop()
            if cid in closure:
                continue
            closure.add(cid)
            sources = graph.get(cid)
            if sources is None:
                raise CheckFailure(
                    FailureKind.UNKNOWN_CLAUSE,
                    "trace references a clause ID that was never defined",
                    cid=cid,
                )
            for source in sources:
                if source >= cid:
                    raise CheckFailure(
                        FailureKind.CYCLIC_TRACE,
                        "learned clause resolves from a clause with an ID not "
                        "smaller than its own",
                        cid=cid,
                        source=source,
                    )
                if source > num_original and source not in closure:
                    stack.append(source)
        return sorted((cid, graph[cid]) for cid in closure)

    # -- execution -----------------------------------------------------------

    def _worker_budget(self) -> float | None:
        """Wall-clock seconds granted to one window (worker-side polling)."""
        budget = self._window_timeout
        if self._deadline is not None:
            remaining = self._deadline.remaining()
            if remaining is not None:
                budget = remaining if budget is None else min(budget, remaining)
        return budget

    def _round_budget(self, num_pending: int, workers: int) -> float | None:
        """Parent-side watchdog budget for one pool round.

        ``window_timeout`` is a per-window grant, but queued windows only
        start once a worker frees up — so one round of N windows over W
        workers gets ceil(N / W) grants, capped by the global deadline.
        A hung worker therefore never stalls the coordinator for longer
        than the windows it displaced were entitled to run.
        """
        budget: float | None = None
        if self._window_timeout is not None:
            budget = self._window_timeout * math.ceil(num_pending / workers)
        if self._deadline is not None:
            remaining = self._deadline.remaining()
            if remaining is not None:
                budget = remaining if budget is None else min(budget, remaining)
        return budget

    def _run_windows(self, manifests: list[WindowManifest]) -> list[dict]:
        if not manifests:
            return []
        budget = self._worker_budget()
        for manifest in manifests:
            manifest.timeout_s = budget
        workers = min(self._num_workers, len(manifests))
        if workers <= 1:
            outcomes = [run_window(self.formula, manifest) for manifest in manifests]
        else:
            outcomes = self._run_windows_pooled(manifests, workers)
        outcomes.sort(key=lambda outcome: outcome["window"])
        for outcome in outcomes:
            if outcome["failure"] is not None:
                raise _revive_failure(outcome["failure"])
        return outcomes

    def _run_windows_pooled(
        self, manifests: list[WindowManifest], workers: int
    ) -> list[dict]:
        """Fan windows out to worker processes, surviving crashes and hangs.

        Each round submits the still-unverified windows to a fresh pool. A
        dead worker (SIGKILL, OOM) breaks the pool — every window without a
        result is retried next round; a round that exceeds its watchdog
        budget has its workers killed and its unfinished windows retried
        likewise. After ``max_retries`` retry rounds, surviving windows are
        re-assigned to in-process sequential checking, so a transient fault
        can never fail the run on its own; ``FailureKind.WORKER_CRASH``
        surfaces only when in-process fallback is disabled.
        """
        tmp_root = tempfile.mkdtemp(prefix="parcheck-", dir=self._tmp_dir)
        try:
            paths: dict[int, str] = {}
            for manifest in manifests:
                path = os.path.join(tmp_root, f"window-{manifest.index:05d}.manifest")
                with open(path, "wb") as handle:
                    pickle.dump(manifest, handle, protocol=pickle.HIGHEST_PROTOCOL)
                paths[manifest.index] = path
            outcomes: dict[int, dict] = {}
            pending = dict(paths)
            for round_index in range(self._max_retries + 1):
                if not pending:
                    break
                if round_index and self._deadline is not None:
                    self._deadline.check()
                failed = self._run_pool_round(round_index, pending, outcomes, workers)
                retrying = round_index < self._max_retries
                for index in sorted(failed):
                    self.recovery_events.append(
                        {
                            "event": "retry" if retrying else "retries-exhausted",
                            "window": index,
                            "round": round_index,
                            "reason": failed[index],
                        }
                    )
                pending = {index: paths[index] for index in sorted(failed)}
            if pending:
                if self._deadline is not None:
                    self._deadline.check()
                if not self._inprocess_fallback:
                    raise CheckFailure(
                        FailureKind.WORKER_CRASH,
                        "worker process died or hung and the retry budget is "
                        "exhausted",
                        windows=sorted(pending),
                        retries=self._max_retries,
                    )
                # Last line of defence: verify the survivors in-process, the
                # paper's plain sequential checking (no pool to crash).
                for index in sorted(pending):
                    self.recovery_events.append({"event": "inline", "window": index})
                    with open(paths[index], "rb") as handle:
                        manifest = pickle.load(handle)
                    outcomes[index] = run_window(self.formula, manifest)
            return [outcomes[index] for index in sorted(outcomes)]
        finally:
            shutil.rmtree(tmp_root, ignore_errors=True)

    def _run_pool_round(
        self,
        round_index: int,
        pending: dict[int, str],
        outcomes: dict[int, dict],
        workers: int,
    ) -> dict[int, str]:
        """One fresh-pool attempt over ``pending``; returns {window: reason}."""
        failed: dict[int, str] = {}
        pool_size = min(workers, len(pending))
        budget = self._round_budget(len(pending), pool_size)
        executor = ProcessPoolExecutor(
            max_workers=pool_size,
            mp_context=multiprocessing.get_context(),
            initializer=_worker_init,
            initargs=(self.formula,),
        )
        futures = {
            executor.submit(_check_window_task, path): index
            for index, path in sorted(pending.items())
        }
        hung = False
        try:
            for future in as_completed(futures, timeout=budget):
                index = futures[future]
                try:
                    outcomes[index] = future.result()
                except BrokenProcessPool:
                    failed[index] = "worker-crash"
                except Exception as exc:  # unexpected worker-side error
                    failed[index] = f"worker-error: {exc}"
        except FuturesTimeoutError:
            hung = True
        except BrokenProcessPool:
            pass  # the pool died while waiting; unfinished futures below
        for future, index in futures.items():
            if index in outcomes or index in failed:
                continue
            if future.done() and not future.cancelled():
                try:
                    outcomes[index] = future.result()
                except BrokenProcessPool:
                    failed[index] = "worker-crash"
                except Exception as exc:
                    failed[index] = f"worker-error: {exc}"
            else:
                failed[index] = "window-hang" if hung else "worker-crash"
        if hung:
            # A worker blew its watchdog budget: kill the whole pool (the
            # executor has no public per-process handle, so reach in) and
            # let the retry round re-run whatever didn't finish.
            for process in list(getattr(executor, "_processes", {}).values()):
                try:
                    process.kill()
                except OSError:
                    pass
        executor.shutdown(wait=False, cancel_futures=True)
        return failed

    # -- merging -------------------------------------------------------------

    def _merge_interfaces(self, outcomes: list[dict]) -> dict[int, FrozenSet[int]]:
        """Cross-check every import against its exporting window, byte for byte."""
        interface: dict[int, FrozenSet[int]] = {}
        canonical: dict[int, bytes] = {}
        for outcome in outcomes:
            for cid, literals in outcome["exports"].items():
                interface[cid] = frozenset(literals)
                canonical[cid] = _interface_bytes(literals)
        for outcome in outcomes:
            for cid, literals in outcome["imports"].items():
                expected = canonical.get(cid)
                if expected is None:
                    raise CheckFailure(
                        FailureKind.INTERFACE_MISMATCH,
                        "window imported a clause its owning window never exported",
                        cid=cid,
                        importing_window=outcome["window"],
                    )
                if _interface_bytes(literals) != expected:
                    raise CheckFailure(
                        FailureKind.INTERFACE_MISMATCH,
                        "windows disagree on an interface clause's literals",
                        cid=cid,
                        importing_window=outcome["window"],
                    )
        # The interface lives in the coordinator for the final derivation:
        # account for it (the parallel checker's memory overhead vs. BF).
        for clause in interface.values():
            self.meter.allocate(self.meter.clause_units(len(clause)))
        return interface

    # -- the final derivation --------------------------------------------------

    def _final_stage(
        self,
        interface: dict[int, FrozenSet[int]],
        level_zero: list[LevelZeroAssignment],
        final_cid: int,
    ) -> int:
        self.meter.allocate(self.meter.record_units(3) * len(level_zero))
        engine = make_engine(self._use_kernel, self.formula)

        def get_clause(cid: int) -> ClauseLits:
            if cid <= self._num_original:
                return engine.original(cid)
            clause = interface.get(cid)
            if clause is None:
                raise CheckFailure(
                    FailureKind.UNKNOWN_CLAUSE,
                    "final derivation references a clause outside the exported "
                    "interface",
                    cid=cid,
                )
            return clause

        state = LevelZeroState(level_zero)
        return derive_empty_clause(
            final_cid, get_clause(final_cid), state, get_clause, resolve_fn=engine.resolve
        )
