"""On-disk per-clause use counts, shared by the BF and streaming checkers.

The paper's counting pre-pass (§3.3) records, for every learned clause,
how many times it is used as a resolve source — written to a temporary
file because "even one in-memory counter per learned clause may not
fit". Both :class:`~repro.checker.breadth_first.BreadthFirstChecker` and
:class:`~repro.checker.streaming.StreamingWindowChecker` consume that
file through the block-cached :class:`CountsReader` here; the writers
share :func:`new_counts_file` / :func:`write_count_range`.

Layout: one little-endian ``uint64`` per learned clause ID, densely
packed from ``first_learned`` (= num_original + 1) upward.
"""

from __future__ import annotations

import os
import struct
import tempfile
from array import array
from contextlib import contextmanager
from typing import BinaryIO, Callable, Iterator, Sequence

from repro.checker.errors import CheckFailure, FailureKind

COUNT_FORMAT = "<Q"
COUNT_SIZE = struct.calcsize(COUNT_FORMAT)
COUNT_BLOCK = 1024  # count entries per cached read block


@contextmanager
def new_counts_file(
    tmp_dir: str | None = None, prefix: str = "bfcheck-counts-"
) -> Iterator[tuple[str, BinaryIO]]:
    """Yield ``(path, writable handle)`` for a fresh counts temp file.

    The file is unlinked if the body raises — the caller owns (and must
    eventually unlink) the path only on success.
    """
    fd, path = tempfile.mkstemp(prefix=prefix, dir=tmp_dir)
    try:
        with os.fdopen(fd, "wb") as handle:
            yield path, handle
    except BaseException:
        os.unlink(path)
        raise


def write_count_range(
    handle: BinaryIO,
    low: int,
    high: int,
    get_count: Callable[[int, int], int],
) -> None:
    """Append the dense counts for clause IDs ``[low, high)`` to ``handle``.

    ``get_count`` is typically ``dict.get``; missing IDs are written as 0.
    """
    array(COUNT_FORMAT[1], (get_count(cid, 0) for cid in range(low, high))).tofile(
        handle
    )


class CountsReader:
    """Block-cached random access into a counts file.

    Checking passes look counts up in ascending clause-ID order, so
    buffering one ``COUNT_BLOCK``-entry block turns the per-clause
    seek+read+unpack into one file read per block.
    """

    __slots__ = ("_file", "_first_learned", "_block", "_block_index")

    def __init__(self, counts_file: BinaryIO, first_learned: int):
        self._file = counts_file
        self._first_learned = first_learned
        self._block: Sequence[int] = ()
        self._block_index = -1

    def read(self, cid: int) -> int:
        """Fetch one use count; fails the check for IDs past the counted range."""
        entry = cid - self._first_learned
        block, index = divmod(entry, COUNT_BLOCK)
        if block != self._block_index:
            self._file.seek(block * COUNT_BLOCK * COUNT_SIZE)
            blob = self._file.read(COUNT_BLOCK * COUNT_SIZE)
            blob = blob[: len(blob) - len(blob) % COUNT_SIZE]
            self._block = array(COUNT_FORMAT[1], blob)
            self._block_index = block
        cached = self._block
        if index >= len(cached):
            raise CheckFailure(
                FailureKind.UNKNOWN_CLAUSE,
                "clause ID outside the counted range",
                cid=cid,
            )
        return cached[index]
