"""Level-0 assignment state and the final empty-clause derivation.

Shared by the depth-first, breadth-first and hybrid checkers: after the
learned clauses are available (however each strategy materializes them),
the empty clause is derived exactly as in the proof of Proposition 3 —
start from the final conflicting clause and resolve with the antecedent of
the literal assigned *last*, until nothing remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable

from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.resolution import resolve
from repro.trace.records import LevelZeroAssignment


@dataclass(frozen=True)
class _VarInfo:
    value: bool
    antecedent: int
    order: int  # chronological position on the level-0 trail


class LevelZeroState:
    """Validated view of the trace's decision-level-0 trail."""

    def __init__(self, entries: Iterable[LevelZeroAssignment]):
        self._info: dict[int, _VarInfo] = {}
        for order, entry in enumerate(entries):
            if entry.var in self._info:
                raise CheckFailure(
                    FailureKind.BAD_LEVEL_ZERO,
                    "variable assigned twice on the level-0 trail",
                    var=entry.var,
                )
            if entry.antecedent <= 0:
                raise CheckFailure(
                    FailureKind.BAD_LEVEL_ZERO,
                    "level-0 variable lacks a valid antecedent clause ID",
                    var=entry.var,
                    antecedent=entry.antecedent,
                )
            self._info[entry.var] = _VarInfo(entry.value, entry.antecedent, order)

    def __len__(self) -> int:
        return len(self._info)

    def __contains__(self, var: int) -> bool:
        return var in self._info

    def info(self, var: int) -> _VarInfo:
        try:
            return self._info[var]
        except KeyError:
            raise CheckFailure(
                FailureKind.BAD_LEVEL_ZERO,
                "proof references a variable missing from the level-0 trail",
                var=var,
            ) from None

    def is_false(self, lit: int) -> bool:
        """Whether the literal evaluates to false under the level-0 trail."""
        info = self._info.get(abs(lit))
        if info is None:
            return False
        return info.value != (lit > 0)

    def check_all_false(self, cid: int, literals: FrozenSet[int]) -> None:
        """A conflicting clause must have every literal false at level 0."""
        for lit in literals:
            if not self.is_false(lit):
                raise CheckFailure(
                    FailureKind.BAD_FINAL_CONFLICT,
                    "final conflicting clause has a literal not falsified "
                    "by the level-0 assignment",
                    cid=cid,
                    literal=lit,
                )

    def check_antecedent(self, cid: int, literals: FrozenSet[int], var: int) -> None:
        """Verify ``cid`` is really the antecedent of ``var`` (§3.2).

        The clause must contain the literal that assigns ``var`` its value,
        and every *other* literal must be false under assignments made
        strictly earlier — i.e. the clause was unit at assignment time.
        """
        info = self.info(var)
        implied_lit = var if info.value else -var
        if implied_lit not in literals:
            raise CheckFailure(
                FailureKind.BAD_ANTECEDENT,
                "claimed antecedent does not contain the implied literal",
                cid=cid,
                var=var,
                implied_literal=implied_lit,
            )
        for lit in literals:
            if lit == implied_lit:
                continue
            other = abs(lit)
            other_info = self._info.get(other)
            if other_info is None or other_info.value == (lit > 0):
                raise CheckFailure(
                    FailureKind.BAD_ANTECEDENT,
                    "antecedent clause was not unit: another literal is "
                    "not falsified at level 0",
                    cid=cid,
                    var=var,
                    literal=lit,
                )
            if other_info.order >= info.order:
                raise CheckFailure(
                    FailureKind.BAD_ANTECEDENT,
                    "antecedent clause was not unit at assignment time: a "
                    "literal was falsified only later",
                    cid=cid,
                    var=var,
                    literal=lit,
                )


def derive_empty_clause(
    start_cid: int,
    start_literals: FrozenSet[int],
    level_zero: LevelZeroState,
    get_clause: Callable[[int], FrozenSet[int]],
    on_use: Callable[[int], None] | None = None,
    resolve_fn: Callable[..., FrozenSet[int]] | None = None,
    deadline=None,
) -> int:
    """Derive the empty clause from the final conflicting clause.

    ``get_clause`` materializes a clause by ID (each strategy supplies its
    own); ``on_use`` is notified for every clause ID consumed (the BF
    checker uses it for reference-count decrements, DF/hybrid for core
    collection). ``resolve_fn`` performs one resolution step — checkers
    running on the marking kernel pass their engine's
    :meth:`~repro.checker.kernel.KernelEngine.resolve` so clauses stay
    interned arrays; the default is the frozenset reference
    :func:`~repro.checker.resolution.resolve`. Returns the number of
    resolution steps performed. ``deadline`` (a
    :class:`~repro.checker.memory.Deadline`) is polled once per step so a
    long final derivation honours the caller's wall-clock budget.
    """
    if resolve_fn is None:
        resolve_fn = resolve
    level_zero.check_all_false(start_cid, start_literals)
    if on_use is not None:
        on_use(start_cid)

    clause = start_literals
    resolutions = 0
    budget = len(level_zero) + 1
    while clause:
        if deadline is not None:
            deadline.check()
        if resolutions > budget:
            raise CheckFailure(
                FailureKind.NOT_EMPTY,
                "empty-clause derivation did not terminate within the "
                "level-0 trail length — chronological order violated",
                steps=resolutions,
            )
        # choose_literal: reverse chronological order over the trail.
        pivot_lit = max(clause, key=lambda lit: level_zero.info(abs(lit)).order)
        pivot_var = abs(pivot_lit)
        antecedent_cid = level_zero.info(pivot_var).antecedent
        antecedent = get_clause(antecedent_cid)
        level_zero.check_antecedent(antecedent_cid, antecedent, pivot_var)
        clause = resolve_fn(clause, antecedent, cid_a=start_cid, cid_b=antecedent_cid)
        resolutions += 1
        if on_use is not None:
            on_use(antecedent_cid)
    return resolutions
