"""The marking-based resolution kernel — every checker's hot path.

The reference implementation (:mod:`repro.checker.resolution`) computes a
resolution chain by folding ``frozenset`` unions: each step rebuilds an
intermediate resolvent, so validating one learned clause costs O(n²) in the
total number of literals. The kernel does the whole chain in O(total
literals), marking the accumulator instead of materializing intermediates:

* The accumulator is one mutable mark set of the literals derived so far.
  Every interned clause carries frozen ``litset``/``negset`` mark sets
  (:class:`~repro.checker.store.InternedClause`), so each source clause is
  validated with exact one-clash semantics in three C-speed set
  operations: intersecting the accumulator with the source's negation set
  yields the accumulator-side clash literals (exactly the oracle's clash
  set), then the accumulator absorbs the source's literal set — reusing
  the hashes frozen at intern time — and drops the pivot pair. No
  per-literal Python bytecode runs on the chain hot path.
* Zero or multiple clashes raise
  :class:`~repro.checker.resolution.ResolutionError` with the same
  ``BAD_RESOLUTION`` semantics as the oracle, plus the chain position and
  the learned clause being derived.
* The final resolvent is emitted once, as a sorted ``array('i')`` interned
  in a :class:`~repro.checker.store.ClauseStore`.
* Single-step :meth:`ResolutionKernel.resolve` (the final level-zero
  derivation's workhorse) keeps a reusable generation-stamped flat mark
  buffer: one slot per literal, cleared in O(1) by bumping the generation.

The frozenset ``resolve()``/``resolve_chain()`` remain the reference oracle
the kernel is property-tested against (``tests/checker/test_kernel.py``);
every checker accepts ``use_kernel=False`` to run on the oracle instead.
"""

from __future__ import annotations

from array import array
from operator import neg as _neg
from typing import Callable, Iterable, Sequence

from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.resolution import ResolutionError, resolve
from repro.checker.store import ClauseStore, InternedClause

ClauseLits = Iterable[int]


class SignedCounters:
    """A reusable ±generation assignment buffer, indexed by variable.

    ``marks[var] == +gen`` means *true*, ``-gen`` means *false*, anything
    else means unassigned this generation. Bumping the generation resets
    every variable in O(1); the buffer itself is allocated once. Used by
    :class:`~repro.checker.unitprop.UnitPropagator` for its per-call
    assignment state (the kernel's own marks need one slot per *literal*
    so tautological clauses stay representable).
    """

    __slots__ = ("marks", "gen")

    def __init__(self, num_vars: int = 0):
        self.marks: list[int] = [0] * (num_vars + 1)
        self.gen = 0

    def new_generation(self) -> int:
        self.gen += 1
        return self.gen

    def ensure(self, var: int) -> None:
        marks = self.marks
        if var >= len(marks):
            marks.extend([0] * (var + 1 - len(marks)))


class ResolutionKernel:
    """Marking-based resolution over interned clauses.

    One instance per checker: the clause store (and single-step
    :meth:`resolve`'s flat mark buffer) are reused across every chain the
    checker validates.
    """

    __slots__ = ("store", "_marks", "_cap", "_gen")

    def __init__(self, num_vars: int = 0, store: ClauseStore | None = None):
        self.store = store if store is not None else ClauseStore()
        # literal -> generation stamp, indexed *directly* by the literal:
        # positive literals live at marks[lit], negative ones wrap around
        # to the tail via Python's negative indexing (marks[-v] is slot
        # len-v). With len == 2*cap + 2 the two ranges never overlap, both
        # phases of a variable get their own slot (tautological inputs
        # keep the exact frozenset-oracle semantics), and the hot loops
        # need no index arithmetic at all.
        self._cap = num_vars
        self._marks: list[int] = [0] * (2 * num_vars + 2)
        self._gen = 0

    def _grow(self, num_vars: int) -> None:
        """Re-seat the mark buffer for a larger variable range.

        Mid-chain stamps must survive, and negative literals are indexed
        from the tail, so both halves are copied into place.
        """
        old = self._marks
        old_cap = self._cap
        new = [0] * (2 * num_vars + 2)
        new[1 : old_cap + 1] = old[1 : old_cap + 1]
        if old_cap:
            new[-old_cap:] = old[-old_cap:]
        self._cap = num_vars
        self._marks = new

    def _max_var(self, clause: ClauseLits) -> int:
        """Largest variable in a clause; O(1) for the store's sorted arrays."""
        if isinstance(clause, array):
            if not clause:
                return 0
            lo, hi = clause[0], clause[-1]
            return hi if hi > -lo else -lo
        return max(map(abs, clause), default=0)

    def intern(self, literals: ClauseLits) -> array:
        """Intern a clause (used for original clauses from the formula)."""
        return self.store.intern(literals)

    # -- the chain kernel -----------------------------------------------------

    def resolve_chain(
        self,
        learned_cid: int | None,
        sources: Sequence[int],
        get_clause: Callable[[int], ClauseLits],
    ) -> array:
        """Validate one learned clause's whole derivation in O(total literals).

        ``sources`` are clause IDs in resolution order; ``get_clause``
        materializes each one (and may raise :class:`CheckFailure` for
        unknown IDs — it is called lazily, step by step, exactly like the
        reference fold). Returns the interned resolvent. Raises
        :class:`ResolutionError` carrying ``learned_cid``, the 1-based
        ``chain_position`` of the offending source, its ``cid_b`` and the
        ``clashing_vars`` — the same diagnostics as the fixed
        :func:`~repro.checker.resolution.resolve_chain`.
        """
        if not sources:
            raise ResolutionError("empty resolution chain", learned_cid=learned_cid)
        first = get_clause(sources[0])
        try:
            acc = set(first.litset)
        except AttributeError:
            acc = set(first)
        clash_scan = acc.intersection
        absorb = acc.update
        drop = acc.discard
        for position in range(1, len(sources)):
            source = sources[position]
            clause = get_clause(source)
            # The cached mark sets keep every step in C: intersecting the
            # accumulator with the source's negation set yields exactly the
            # accumulator-side clash literals (same set the oracle
            # computes), and absorbing the literal set reuses the hashes
            # frozen at intern time. Clauses of unknown provenance (plain
            # iterables, or interned clauses that crossed a process
            # boundary) get their sets rebuilt here — same semantics,
            # including duplicate literals and tautological inputs, since
            # set membership gives every literal its own mark.
            try:
                neg_b = clause.negset
                lit_b = clause.litset
            except AttributeError:
                lit_b = frozenset(clause)
                neg_b = frozenset(map(_neg, lit_b))
            clashing = clash_scan(neg_b)
            if len(clashing) != 1:
                raise ResolutionError(
                    "resolution requires exactly one clashing variable, "
                    f"found {len(clashing)}",
                    learned_cid=learned_cid,
                    chain_position=position,
                    cid_b=source,
                    clashing_vars=sorted(abs(lit) for lit in clashing),
                )
            (pivot_neg,) = clashing
            absorb(lit_b)
            # Drop both phases of the pivot variable: ``pivot_neg`` is the
            # accumulator side, its negation the side the source brought in.
            drop(pivot_neg)
            drop(-pivot_neg)
        return self.store.intern_sorted(
            InternedClause("i", sorted(acc)), litset=frozenset(acc)
        )

    # -- the single-step kernel ------------------------------------------------

    def resolve(
        self,
        clause_a: ClauseLits,
        clause_b: ClauseLits,
        cid_a: int | None = None,
        cid_b: int | None = None,
    ) -> array:
        """One marking-based resolution step (the paper's ``resolve()``).

        Same contract and error context as the frozenset oracle
        :func:`~repro.checker.resolution.resolve`; returns a plain sorted
        ``array('i')`` (final-derivation intermediates are transient, so
        they are not interned).
        """
        self._gen = gen = self._gen + 1
        high = self._max_var(clause_a)
        high_b = self._max_var(clause_b)
        if high_b > high:
            high = high_b
        if high > self._cap:
            self._grow(high)
        marks = self._marks
        trail: list[int] = []
        for lit in clause_a:
            if marks[lit] != gen:
                marks[lit] = gen
                trail.append(lit)
        # Distinct literals only — the oracle resolves frozensets, so a
        # duplicated literal in the input must not double-count a clash.
        clashing = {lit for lit in clause_b if marks[-lit] == gen}
        if len(clashing) != 1:
            raise ResolutionError(
                "resolution requires exactly one clashing variable, "
                f"found {len(clashing)}",
                cid_a=cid_a,
                cid_b=cid_b,
                clashing_vars=sorted(abs(lit) for lit in clashing),
            )
        (pivot,) = clashing
        neg_pivot = -pivot
        marks[pivot] = 0
        marks[neg_pivot] = 0
        for lit in clause_b:
            if lit != pivot and lit != neg_pivot and marks[lit] != gen:
                marks[lit] = gen
                trail.append(lit)
        out = []
        for lit in trail:
            if marks[lit] == gen:
                marks[lit] = 0
                out.append(lit)
        out.sort()
        return array("i", out)


# -- checker-facing engines ------------------------------------------------------
#
# The checkers talk to resolution through this small strategy interface so
# the kernel and the frozenset oracle stay swappable (``use_kernel=...``).


class _EngineBase:
    """Shared original-clause materialization (cached, with diagnostics)."""

    def __init__(self, formula):
        self.formula = formula
        self._originals: dict[int, ClauseLits] = {}

    def original(self, cid: int) -> ClauseLits:
        clause = self._originals.get(cid)
        if clause is None:
            try:
                literals = self.formula[cid].literals
            except KeyError:
                raise CheckFailure(
                    FailureKind.UNKNOWN_CLAUSE,
                    "trace references an original clause absent from the formula",
                    cid=cid,
                ) from None
            clause = self.materialize(literals)
            self._originals[cid] = clause
        return clause


class KernelEngine(_EngineBase):
    """Marking-array resolution over the interned clause store (the default)."""

    name = "kernel"

    def __init__(self, formula, store: ClauseStore | None = None):
        super().__init__(formula)
        num_vars = formula.num_vars if formula is not None else 0
        self.kernel = ResolutionKernel(num_vars=num_vars, store=store)
        self.store = self.kernel.store

    def materialize(self, literals: ClauseLits) -> array:
        return self.kernel.intern(literals)

    def chain(self, learned_cid, sources, get_clause) -> array:
        return self.kernel.resolve_chain(learned_cid, sources, get_clause)

    def resolve(self, clause_a, clause_b, cid_a=None, cid_b=None) -> array:
        return self.kernel.resolve(clause_a, clause_b, cid_a=cid_a, cid_b=cid_b)

    def release(self, clause) -> None:
        self.store.release(clause)


class ReferenceEngine(_EngineBase):
    """The paper's frozenset fold — kept as the property-tested oracle."""

    name = "reference"

    def materialize(self, literals: ClauseLits) -> frozenset:
        return frozenset(literals)

    def chain(self, learned_cid, sources, get_clause) -> frozenset:
        if not sources:
            raise ResolutionError("empty resolution chain", learned_cid=learned_cid)
        acc = get_clause(sources[0])
        if not isinstance(acc, frozenset):
            acc = frozenset(acc)
        for position in range(1, len(sources)):
            source = sources[position]
            clause = get_clause(source)
            try:
                acc = resolve(acc, frozenset(clause))
            except ResolutionError as exc:
                raise ResolutionError(
                    exc.message,
                    learned_cid=learned_cid,
                    chain_position=position,
                    cid_b=source,
                    clashing_vars=exc.context.get("clashing_vars"),
                ) from None
        return acc

    def resolve(self, clause_a, clause_b, cid_a=None, cid_b=None) -> frozenset:
        if not isinstance(clause_a, frozenset):
            clause_a = frozenset(clause_a)
        return resolve(clause_a, frozenset(clause_b), cid_a=cid_a, cid_b=cid_b)

    def release(self, clause) -> None:
        return None


def engine_memory_stats(engine, meter=None) -> dict:
    """Resident-memory high-water marks for a checker's final report.

    Always carries the logical-unit peak (when a meter is given); engines
    backed by a :class:`~repro.checker.store.ClauseStore` add the store's
    O(1)-maintained peaks — peak unique interned clauses and peak measured
    bytes — which is what makes a constant-memory claim observable from
    the outside. The reference engine (plain frozensets, nothing interned)
    reports units only.
    """
    stats: dict = {}
    if meter is not None:
        stats["peak_units"] = meter.peak
    store = getattr(engine, "store", None)
    if store is not None:
        stats["peak_unique_clauses"] = store.peak_unique_clauses
        stats["peak_store_bytes"] = store.peak_bytes
        stats["resident_store_bytes"] = store.resident_bytes
    return stats


# Optional warm-store provider: a callable mapping a formula to a ClauseStore
# to seed the kernel with, or None. Long-lived checking workers install one so
# repeat checks of the same formula reuse already-interned clause buffers
# (interning is content-addressed, so sharing a store across checks of the
# same formula is verdict-neutral — it only skips re-interning work).
_WARM_STORE_PROVIDER = None


def set_warm_store_provider(provider) -> None:
    """Install (or clear, with ``None``) the process-wide warm-store hook."""
    global _WARM_STORE_PROVIDER
    _WARM_STORE_PROVIDER = provider


def make_engine(use_kernel: bool, formula) -> KernelEngine | ReferenceEngine:
    """The engine every checker constructs from its ``use_kernel`` flag."""
    if not use_kernel:
        return ReferenceEngine(formula)
    store = _WARM_STORE_PROVIDER(formula) if _WARM_STORE_PROVIDER is not None else None
    return KernelEngine(formula, store=store)
