"""Deterministic, logical memory accounting for the checkers.

The paper evaluates checkers by peak memory (Table 2) under an 800 MB cap,
with the depth-first checker memory-outing on the two hardest instances.
OS-level peak RSS is noisy and Python-object overhead would swamp the
algorithmic signal, so we count *logical units*: one unit per resident
integer (a literal, or a resolve-source ID), plus a fixed per-object
overhead. This makes DF-vs-BF comparisons exact, platform-independent, and
lets a configurable limit reproduce the memory-out behaviour.
"""

from __future__ import annotations

import sys

from repro.checker.errors import CheckFailure, FailureKind

CLAUSE_OVERHEAD = 2  # per resident clause: id + length field
RECORD_OVERHEAD = 2  # per resident trace record


def real_bytes(obj: object) -> int:
    """Measured size of a resident object in bytes (``sys.getsizeof``).

    Complements the logical units above: the clause-interning store
    (:mod:`repro.checker.store`) sums this over its shared ``array('i')``
    buffers to report what the deduplicated clause database *actually*
    occupies, while the meters keep the platform-independent accounting.
    """
    return sys.getsizeof(obj)


class MemoryLimitExceeded(CheckFailure):
    """The checker's logical memory budget was exceeded."""

    def __init__(self, used: int, limit: int):
        super().__init__(
            FailureKind.MEMORY_OUT,
            "checker exceeded its memory budget",
            used_units=used,
            limit_units=limit,
        )


class MemoryMeter:
    """Tracks current and peak logical memory, enforcing an optional limit."""

    def __init__(self, limit: int | None = None):
        self.current = 0
        self.peak = 0
        self.limit = limit

    def allocate(self, units: int) -> None:
        self.current += units
        if self.current > self.peak:
            self.peak = self.current
        if self.limit is not None and self.current > self.limit:
            raise MemoryLimitExceeded(self.current, self.limit)

    def release(self, units: int) -> None:
        self.current -= units
        if self.current < 0:
            raise AssertionError("memory meter went negative — accounting bug")

    def clause_units(self, num_literals: int) -> int:
        return num_literals + CLAUSE_OVERHEAD

    def record_units(self, num_ints: int) -> int:
        return num_ints + RECORD_OVERHEAD
