"""Deterministic resource budgets for the checkers: memory and wall clock.

The paper evaluates checkers by peak memory (Table 2) under an 800 MB cap,
with the depth-first checker memory-outing on the two hardest instances.
OS-level peak RSS is noisy and Python-object overhead would swamp the
algorithmic signal, so we count *logical units*: one unit per resident
integer (a literal, or a resolve-source ID), plus a fixed per-object
overhead. This makes DF-vs-BF comparisons exact, platform-independent, and
lets a configurable limit reproduce the memory-out behaviour.

:class:`Deadline` is the wall-clock analogue: the streaming loops of every
checker poll it every few hundred records, so a hung or oversized check
surfaces as a structured :class:`CheckTimeout` (``FailureKind.TIMEOUT``)
instead of an unbounded run — the supervisor's degradation ladder
(:mod:`repro.checker.supervisor`) is built on both failure kinds.
"""

from __future__ import annotations

import sys
import time

from repro.checker.errors import CheckFailure, FailureKind

CLAUSE_OVERHEAD = 2  # per resident clause: id + length field
RECORD_OVERHEAD = 2  # per resident trace record


def real_bytes(obj: object) -> int:
    """Measured size of a resident object in bytes (``sys.getsizeof``).

    Complements the logical units above: the clause-interning store
    (:mod:`repro.checker.store`) sums this over its shared ``array('i')``
    buffers to report what the deduplicated clause database *actually*
    occupies, while the meters keep the platform-independent accounting.
    """
    return sys.getsizeof(obj)


class MemoryLimitExceeded(CheckFailure):
    """The checker's logical memory budget was exceeded."""

    def __init__(self, used: int, limit: int):
        super().__init__(
            FailureKind.MEMORY_OUT,
            "checker exceeded its memory budget",
            used_units=used,
            limit_units=limit,
        )


class CheckTimeout(CheckFailure):
    """The checker's wall-clock deadline expired."""

    def __init__(self, elapsed: float, timeout: float):
        super().__init__(
            FailureKind.TIMEOUT,
            "checker exceeded its wall-clock deadline",
            elapsed_s=round(elapsed, 3),
            timeout_s=timeout,
        )


class Deadline:
    """A wall-clock budget the checkers poll from their streaming loops.

    Constructed once per checking attempt; ``check()`` raises
    :class:`CheckTimeout` once the budget is spent. Polling granularity is
    the caller's business — the checkers tick every few hundred records, so
    enforcement is accurate to well under a millisecond of work on the
    fault-free path while costing one integer test per record.

    A ``timeout`` of ``None`` never expires (every method stays cheap), so
    checkers can hold an optional deadline without branching twice.
    """

    __slots__ = ("timeout", "_started", "_expires")

    def __init__(self, timeout: float | None):
        if timeout is not None and timeout < 0:
            raise ValueError(f"timeout must be non-negative, got {timeout}")
        self.timeout = timeout
        self._started = time.monotonic()
        self._expires = None if timeout is None else self._started + timeout

    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def remaining(self) -> float | None:
        """Seconds left, floored at 0.0; ``None`` for a boundless deadline."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - time.monotonic())

    def expired(self) -> bool:
        return self._expires is not None and time.monotonic() >= self._expires

    def check(self) -> None:
        """Raise :class:`CheckTimeout` if the budget is spent."""
        if self._expires is not None and time.monotonic() >= self._expires:
            raise CheckTimeout(self.elapsed(), self.timeout)


class MemoryMeter:
    """Tracks current and peak logical memory, enforcing an optional limit."""

    def __init__(self, limit: int | None = None):
        self.current = 0
        self.peak = 0
        self.limit = limit

    def allocate(self, units: int) -> None:
        self.current += units
        if self.current > self.peak:
            self.peak = self.current
        if self.limit is not None and self.current > self.limit:
            raise MemoryLimitExceeded(self.current, self.limit)

    def release(self, units: int) -> None:
        self.current -= units
        if self.current < 0:
            raise AssertionError("memory meter went negative — accounting bug")

    def clause_units(self, num_literals: int) -> int:
        return num_literals + CLAUSE_OVERHEAD

    def record_units(self, num_ints: int) -> int:
        return num_ints + RECORD_OVERHEAD
