"""The depth-first checker (Fig. 3 of the paper).

Builds learned clauses lazily, on demand, starting from one final
conflicting clause. Only clauses that the empty-clause derivation actually
touches are ever constructed — 19-90 % of the learned clauses in the
paper's Table 2 — but the whole trace (and every built clause) stays
resident, which is where the memory blowup comes from.

Byproduct (§4): the set of original clauses touched is an unsatisfiable
core of the input formula.
"""

from __future__ import annotations

import time

from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.kernel import ClauseLits, engine_memory_stats, make_engine
from repro.checker.level_zero import LevelZeroState, derive_empty_clause
from repro.checker.memory import Deadline, MemoryMeter
from repro.checker.report import CheckReport
from repro.checker.resolution import ResolutionError
from repro.cnf import CnfFormula
from repro.trace.records import Trace, TraceError


class DepthFirstChecker:
    """Validates an UNSAT claim by lazy, recursive clause construction."""

    method = "depth-first"

    def __init__(
        self,
        formula: CnfFormula,
        trace: Trace,
        memory_limit: int | None = None,
        precheck: bool = False,
        use_kernel: bool = True,
        deadline: Deadline | None = None,
        prune_plan=None,
    ):
        self.formula = formula
        self.trace = trace
        # DF already builds lazily (only the cone), so a prune plan cannot
        # change what is built — but it does shrink the charged trace
        # memory: statically dead records need not be held for the replay.
        self._plan = prune_plan
        self._precheck = precheck
        self.precheck_report = None
        self.meter = MemoryMeter(limit=memory_limit)
        self._deadline = deadline
        self._engine = make_engine(use_kernel, formula)
        self._built: dict[int, ClauseLits] = {}
        self._num_original = trace.header.num_original_clauses
        self._original_core: set[int] = set()
        self._learned_used: set[int] = set()
        self._resolutions = 0

    # -- public API ----------------------------------------------------------

    def check(self) -> CheckReport:
        """Run the check; never raises — failures land in the report."""
        start = time.perf_counter()
        failure: CheckFailure | None = None
        verified = False
        try:
            if self._precheck:
                from repro.checker.precheck import run_precheck

                self.precheck_report = run_precheck(self.trace)
            if self._deadline is not None:
                self._deadline.check()
            self._check_preamble()
            self._charge_trace_memory()
            final_cid = self.trace.final_conflicts[0]
            level_zero = LevelZeroState(self.trace.level_zero)
            final_clause = self._build(final_cid)
            steps = derive_empty_clause(
                final_cid,
                final_clause,
                level_zero,
                get_clause=self._build,
                on_use=self._note_use,
                resolve_fn=self._engine.resolve,
                deadline=self._deadline,
            )
            self._resolutions += steps
            verified = True
        except CheckFailure as exc:
            failure = exc
        except TraceError as exc:
            # A hand-built Trace can hold records normal parsing rejects;
            # the contract is "never raises", so convert instead.
            failure = CheckFailure(FailureKind.MALFORMED_TRACE, str(exc))
        return CheckReport(
            method=self.method,
            verified=verified,
            failure=failure,
            clauses_built=sum(1 for cid in self._built if cid > self._num_original),
            total_learned=self.trace.num_learned,
            peak_memory_units=self.meter.peak,
            check_time=time.perf_counter() - start,
            resolutions=self._resolutions,
            original_core=self._original_core if verified else None,
            learned_used=self._learned_used if verified else None,
            prune=self._plan.to_dict() if self._plan is not None else None,
            memory=engine_memory_stats(self._engine, self.meter),
        )

    # -- internals -------------------------------------------------------------

    def _check_preamble(self) -> None:
        if self.trace.status != "UNSAT":
            raise CheckFailure(
                FailureKind.BAD_STATUS,
                "trace does not claim UNSAT; nothing to check",
                status=self.trace.status,
            )
        if not self.trace.final_conflicts:
            raise CheckFailure(
                FailureKind.BAD_FINAL_CONFLICT,
                "trace has no final conflicting clause",
            )
        if self.formula.num_clauses != self._num_original:
            raise CheckFailure(
                FailureKind.UNKNOWN_CLAUSE,
                "formula / trace disagree on the number of original clauses",
                formula_clauses=self.formula.num_clauses,
                trace_clauses=self._num_original,
            )

    def _charge_trace_memory(self) -> None:
        """The DF checker reads the entire trace into main memory (§3.2).

        Under a prune plan, statically dead records are not needed for the
        replay and are not charged (a disk-backed DF would not load them).
        """
        skip = self._plan.skip if self._plan is not None else frozenset()
        units = 0
        for cid, record in self.trace.learned.items():
            if cid in skip:
                continue
            units += self.meter.record_units(1 + len(record.sources))
        units += self.meter.record_units(3) * len(self.trace.level_zero)
        self.meter.allocate(units)

    def _note_use(self, cid: int) -> None:
        if cid <= self._num_original:
            self._original_core.add(cid)
        else:
            self._learned_used.add(cid)

    def _build(self, cid: int) -> ClauseLits:
        """recursive_build of Fig. 3, iteratively (traces run deep)."""
        cached = self._built.get(cid)
        if cached is not None:
            return cached
        if cid <= self._num_original:
            return self._materialize_original(cid)

        stack = [cid]
        deadline = self._deadline
        ticks = 0
        while stack:
            # The recursion-turned-loop is the DF checker's streaming loop:
            # poll the wall-clock budget every few hundred build steps.
            if deadline is not None:
                ticks += 1
                if not ticks & 0xFF:
                    deadline.check()
            top = stack[-1]
            if top in self._built:
                stack.pop()
                continue
            record = self.trace.learned.get(top)
            if record is None:
                raise CheckFailure(
                    FailureKind.UNKNOWN_CLAUSE,
                    "trace references a clause ID that was never defined",
                    cid=top,
                )
            pending = []
            for source in record.sources:
                if source >= top:
                    raise CheckFailure(
                        FailureKind.CYCLIC_TRACE,
                        "learned clause resolves from a clause with an ID "
                        "not smaller than its own",
                        cid=top,
                        source=source,
                    )
                if source not in self._built:
                    if source <= self._num_original:
                        self._materialize_original(source)
                    else:
                        pending.append(source)
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            self._resolve_record(top, record.sources)
        return self._built[cid]

    def _materialize_original(self, cid: int) -> ClauseLits:
        clause = self._engine.original(cid)
        self._built[cid] = clause
        return clause

    def _resolve_record(self, cid: int, sources: tuple[int, ...]) -> None:
        if not sources:
            raise CheckFailure(
                FailureKind.MALFORMED_TRACE,
                "learned clause record has no resolve sources",
                cid=cid,
            )
        try:
            clause = self._engine.chain(cid, sources, self._built.__getitem__)
        except ResolutionError as exc:
            # Count the steps that succeeded before the chain broke, so
            # failure reports match the old fold's bookkeeping.
            self._resolutions += max(0, (exc.context.get("chain_position") or 1) - 1)
            raise
        for source in sources:
            self._note_use(source)
        self._resolutions += len(sources) - 1
        self._built[cid] = clause
        self.meter.allocate(self.meter.clause_units(len(clause)))
