"""The resolution primitive, with the validity check built in.

"When resolve(cl, cl1) is called, the function should check whether there
is one and only one variable appearing in both clauses with different
phases" (§3.2). Clauses are represented as frozensets of DIMACS literals.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.checker.errors import CheckFailure, FailureKind


class ResolutionError(CheckFailure):
    """Resolution attempted on clauses without exactly one clashing variable."""

    def __init__(self, message: str, **context):
        super().__init__(FailureKind.BAD_RESOLUTION, message, **context)


def resolve(
    clause_a: FrozenSet[int],
    clause_b: FrozenSet[int],
    cid_a: int | None = None,
    cid_b: int | None = None,
) -> FrozenSet[int]:
    """Resolve two clauses, verifying exactly one clashing variable.

    Returns the resolvent. Raises :class:`ResolutionError` when zero or
    more than one variable appears in both clauses with opposite phases.
    """
    clashing = [lit for lit in clause_a if -lit in clause_b]
    if len(clashing) != 1:
        raise ResolutionError(
            "resolution requires exactly one clashing variable, "
            f"found {len(clashing)}",
            cid_a=cid_a,
            cid_b=cid_b,
            clashing_vars=sorted(abs(lit) for lit in clashing),
        )
    pivot = clashing[0]
    return (clause_a | clause_b) - {pivot, -pivot}


def resolve_chain(
    clauses: list[tuple[int, FrozenSet[int]]],
) -> FrozenSet[int]:
    """Left-fold resolution over (cid, literals) pairs — a learned clause's
    derivation from its resolve sources."""
    if not clauses:
        raise ResolutionError("empty resolution chain")
    cid_acc, acc = clauses[0]
    for cid, lits in clauses[1:]:
        acc = resolve(acc, lits, cid_a=cid_acc, cid_b=cid)
        cid_acc = cid
    return acc
