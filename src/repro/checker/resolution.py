"""The resolution primitive, with the validity check built in.

"When resolve(cl, cl1) is called, the function should check whether there
is one and only one variable appearing in both clauses with different
phases" (§3.2). Clauses are represented as frozensets of DIMACS literals.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.checker.errors import CheckFailure, FailureKind


class ResolutionError(CheckFailure):
    """Resolution attempted on clauses without exactly one clashing variable."""

    def __init__(self, message: str, **context):
        super().__init__(FailureKind.BAD_RESOLUTION, message, **context)


def resolve(
    clause_a: FrozenSet[int],
    clause_b: FrozenSet[int],
    cid_a: int | None = None,
    cid_b: int | None = None,
) -> FrozenSet[int]:
    """Resolve two clauses, verifying exactly one clashing variable.

    Returns the resolvent. Raises :class:`ResolutionError` when zero or
    more than one variable appears in both clauses with opposite phases.
    """
    clashing = [lit for lit in clause_a if -lit in clause_b]
    if len(clashing) != 1:
        raise ResolutionError(
            "resolution requires exactly one clashing variable, "
            f"found {len(clashing)}",
            cid_a=cid_a,
            cid_b=cid_b,
            clashing_vars=sorted(abs(lit) for lit in clashing),
        )
    pivot = clashing[0]
    return (clause_a | clause_b) - {pivot, -pivot}


def resolve_chain(
    clauses: list[tuple[int, FrozenSet[int]]],
    learned_cid: int | None = None,
) -> FrozenSet[int]:
    """Left-fold resolution over (cid, literals) pairs — a learned clause's
    derivation from its resolve sources.

    On failure the error names the derivation, not a trace clause that
    isn't involved: after the first fold step the accumulator is an
    *intermediate resolvent*, so attributing it to the previous source's
    cid (as ``cid_a``) would misattribute the failure. The context instead
    carries the originating learned clause (``learned_cid``), the 1-based
    ``chain_position`` of the offending source, and that source's ``cid_b``.
    """
    if not clauses:
        raise ResolutionError("empty resolution chain", learned_cid=learned_cid)
    _, acc = clauses[0]
    for position, (cid, lits) in enumerate(clauses[1:], start=1):
        try:
            acc = resolve(acc, lits)
        except ResolutionError as exc:
            raise ResolutionError(
                exc.message,
                learned_cid=learned_cid,
                chain_position=position,
                cid_b=cid,
                clashing_vars=exc.context.get("clashing_vars"),
            ) from None
    return acc
