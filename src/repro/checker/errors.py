"""Structured check failures.

The paper: "If such checks fail, the solver (or its trace generation) is
buggy. The checker can also provide as much information as possible about
the failure to help debug the solver." Every failure therefore carries a
machine-readable kind plus the clause IDs / literals involved.
"""

from __future__ import annotations

import enum
from typing import Any


class FailureKind(enum.Enum):
    """What went wrong during checking."""

    UNKNOWN_CLAUSE = "unknown-clause"  # trace references an undefined clause ID
    BAD_RESOLUTION = "bad-resolution"  # not exactly one clashing variable
    BAD_ANTECEDENT = "bad-antecedent"  # clause is not unit for the variable
    BAD_FINAL_CONFLICT = "bad-final-conflict"  # clause not falsified at level 0
    BAD_LEVEL_ZERO = "bad-level-zero"  # inconsistent level-0 trail
    NOT_EMPTY = "not-empty"  # derivation finished without an empty clause
    MEMORY_OUT = "memory-out"  # checker exceeded its memory budget
    BAD_STATUS = "bad-status"  # trace does not claim UNSAT
    CYCLIC_TRACE = "cyclic-trace"  # clause (transitively) resolves from itself
    STATIC_PRECHECK = "static-precheck"  # the lint pre-pass rejected the trace
    BAD_HEADER = "bad-header"  # trace has no (usable) header record
    MALFORMED_TRACE = "malformed-trace"  # record stream unparseable mid-check
    INTERFACE_MISMATCH = "interface-mismatch"  # windows disagree on a shared clause
    TIMEOUT = "timeout"  # checker exceeded its wall-clock deadline
    WORKER_CRASH = "worker-crash"  # a worker process died and retries ran out
    MALFORMED_PROOF = "malformed-proof"  # DRUP/DRAT proof stream unparseable
    NOT_RAT = "not-rat"  # clause is neither RUP nor RAT on its pivot


def _rebuild_failure(cls: type, kind: FailureKind, message: str, context: dict) -> "CheckFailure":
    """Reconstruct a (subclass of) CheckFailure from its pickled state.

    Subclasses such as ``MemoryLimitExceeded(used, limit)`` have
    constructor signatures that differ from the state actually stored, so
    unpickling must bypass ``cls.__init__`` and restore the shared
    ``CheckFailure`` state directly — this keeps every failure type safe to
    ship across a ``multiprocessing`` boundary.
    """
    exc = CheckFailure.__new__(cls)
    CheckFailure.__init__(exc, kind, message, **context)
    return exc


class CheckFailure(Exception):
    """A failed validity check, with debugging context.

    ``context`` holds whatever helps debug the solver: clause IDs, literal
    lists, variable numbers. Rendered into the message for humans and kept
    structured for tooling.
    """

    def __init__(self, kind: FailureKind, message: str, **context: Any):
        self.kind = kind
        self.message = message
        self.context = context
        detail = ", ".join(f"{key}={value!r}" for key, value in context.items())
        super().__init__(f"[{kind.value}] {message}" + (f" ({detail})" if detail else ""))

    def __reduce__(self):
        return (_rebuild_failure, (type(self), self.kind, self.message, self.context))
