"""The constant-memory shifting-window checker.

"Fast Verifying Proofs of Propositional Unsatisfiability via Window
Shifting" observes that a resolution proof ordered by clause ID can be
verified inside a bounded window that slides over the proof: at any
moment only the clauses the remaining proof still references need to be
resident. This checker is that idea on top of the repo's BF machinery:

* **Zero-copy decoding.** A binary trace is ``mmap``'d
  (:class:`~repro.trace.binary_format.MappedBinaryTrace`) and decoded in
  ``window_records``-sized batches straight off the mapping
  (:func:`~repro.trace.binary_format.decode_mapped_batch`) — the full
  :class:`~repro.trace.records.Trace` is never materialized, so decoding
  memory is one batch, regardless of trace size. ASCII traces and
  in-memory ``Trace`` objects stream through the generic record path in
  the same batches.
* **Counting pre-pass.** Like BF, a first streaming pass writes each
  learned clause's total use count to a temp file
  (:mod:`repro.checker.counts`). The mmap pass
  (:func:`~repro.trace.binary_format.scan_mapped_learned`) additionally
  records each clause's *last use* — the stream position of its final
  reference — which orders the window's retirement decisions.
* **Bounded residency, never memory-out.** Resident clauses are bounded
  by ``memory_budget`` (logical units, the ``--memory-window`` budget).
  When the window overflows, cached original clauses are dropped first
  (re-materializable from the formula); then learned clauses are
  *spilled* to a temp file — farthest last use first, so the clauses the
  proof needs soonest stay hot — and transparently reloaded on demand.
  Unlike every other checker, exceeding the budget is therefore never a
  failure: this is the supervisor's last-resort tier that trades disk
  traffic for a hard memory ceiling.

Verdicts are byte-identical to BF/DF: the same build, consume and
level-zero derivation code paths run, only residency management differs.
"""

from __future__ import annotations

import os
import time
from array import array
from heapq import heappop, heappush
from itertools import islice
from pathlib import Path
from typing import IO, Iterator, Sequence

from repro.checker.counts import CountsReader, new_counts_file, write_count_range
from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.kernel import ClauseLits, engine_memory_stats, make_engine
from repro.checker.level_zero import LevelZeroState, derive_empty_clause
from repro.checker.memory import Deadline, MemoryMeter
from repro.checker.report import CheckReport
from repro.checker.resolution import ResolutionError
from repro.cnf import CnfFormula
from repro.trace.binary_format import (
    MAGIC,
    MappedBinaryTrace,
    decode_mapped_batch,
    scan_mapped_learned,
)
from repro.trace.io import iter_trace_records
from repro.trace.records import (
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    Trace,
    TraceError,
    TraceHeader,
    TraceRecord,
    TraceResult,
)
from repro.trace.windows import ShiftingWindow


class StreamingWindowChecker:
    """Validates an UNSAT claim in bounded memory over an mmap'd trace."""

    method = "streaming"

    def __init__(
        self,
        formula: CnfFormula,
        trace_source: str | Path | Trace,
        memory_budget: int | None = None,
        window_records: int | None = None,
        count_chunk_size: int | None = None,
        tmp_dir: str | Path | None = None,
        precheck: bool = False,
        use_kernel: bool = True,
        deadline: Deadline | None = None,
        prune_plan=None,
    ):
        self.formula = formula
        self._source = trace_source
        self._plan = prune_plan
        self._precheck = precheck
        self.precheck_report = None
        # No limit= here, by design: the streaming checker converts memory
        # pressure into spills, so the meter only observes, never raises.
        self.meter = MemoryMeter()
        self._engine = make_engine(use_kernel, formula)
        self._budget = memory_budget
        self._window = ShiftingWindow(window_records)
        self._chunk_size = count_chunk_size
        self._tmp_dir = str(tmp_dir) if tmp_dir is not None else None
        self._deadline = deadline
        self._num_original: int | None = None
        self._total_learned = 0
        self._clauses_built = 0
        self._resolutions = 0
        # Residency state. ``_resident`` holds learned clauses, keyed by
        # cid; ``_orig_cache`` caches materialized originals separately so
        # the budget can reclaim them without spilling (they rebuild from
        # the formula). ``_resident_units`` is what ``memory_budget``
        # bounds — learned + cached-original clause units, excluding the
        # O(num_vars) level-zero trail.
        self._resident: dict[int, ClauseLits] = {}
        self._remaining: dict[int, int] = {}
        self._orig_cache: dict[int, ClauseLits] = {}
        self._resident_units = 0
        self._peak_resident_units = 0
        # Retirement order: a lazy-deletion heap of (-key, cid). With last
        # uses known (unchunked mmap pass), key is the clause's last-use
        # stream position, so the clause needed *farthest* in the future
        # is spilled first (Belady on exact future knowledge — last uses
        # are read from the trace, not predicted). Without them (prune
        # plan or chunked counting), key is -cid: oldest clause first.
        self._last_use: dict[int, int] = {}
        self._evict_heap: list[tuple[int, int]] = []
        # Spill file: append-only raw literal arrays, cid -> (offset, nbytes).
        self._spill_handle: IO[bytes] | None = None
        self._spill_path: str | None = None
        self._spill_index: dict[int, tuple[int, int]] = {}
        self.spills = 0
        self.reloads = 0
        self._orig_evictions = 0
        self._mapped: MappedBinaryTrace | None = None

    # -- public API ----------------------------------------------------------

    def check(self) -> CheckReport:
        """Run the check; never raises — failures land in the report."""
        start = time.perf_counter()
        failure: CheckFailure | None = None
        verified = False
        counts_path: str | None = None
        try:
            if self._deadline is not None:
                self._deadline.check()
            if self._precheck:
                from repro.checker.precheck import run_precheck

                self.precheck_report = run_precheck(self._source)
            self._open_mapping()
            max_cid, counts_path = self._counting_pass()
            with open(counts_path, "rb") as counts_file:
                assert self._num_original is not None
                counts = CountsReader(counts_file, self._num_original + 1)
                verified = self._checking_pass(counts)
        except CheckFailure as exc:
            failure = exc
        except TraceError as exc:
            failure = CheckFailure(FailureKind.MALFORMED_TRACE, str(exc))
        finally:
            if counts_path is not None:
                os.unlink(counts_path)
            self._close_spill()
            if self._mapped is not None:
                self._mapped.close()
                self._mapped = None
        return CheckReport(
            method=self.method,
            verified=verified,
            failure=failure,
            clauses_built=self._clauses_built,
            total_learned=self._total_learned,
            peak_memory_units=self.meter.peak,
            check_time=time.perf_counter() - start,
            resolutions=self._resolutions,
            window_stats=self._window.entries or None,
            prune=self._plan.to_dict() if self._plan is not None else None,
            memory=self._memory_stats(),
        )

    # -- source plumbing ------------------------------------------------------

    def _open_mapping(self) -> None:
        """Map the source when it is a binary trace file; else stay generic."""
        if not isinstance(self._source, (str, Path)):
            return
        try:
            with open(self._source, "rb") as handle:
                is_binary = handle.read(len(MAGIC)) == MAGIC
        except OSError as exc:
            raise TraceError(f"{self._source}: {exc}") from None
        if is_binary:
            self._mapped = MappedBinaryTrace(self._source)

    def _records(self) -> Iterator[TraceRecord]:
        if isinstance(self._source, Trace):
            return self._source.records()
        return iter_trace_records(self._source)

    def _batches(self) -> Iterator[list]:
        """The trace as ``window_records``-sized batches — one decode pass.

        Mapped sources decode straight off the mmap view (learned records
        as bare ``(cid, sources)`` tuples); everything else batches the
        generic record stream. Either way only one batch is ever held.
        """
        size = self._window.window_records
        if self._mapped is not None:
            view = self._mapped.view
            pos = self._mapped.payload_start
            while True:
                items, pos = decode_mapped_batch(view, pos, size)
                if not items:
                    return
                yield items
        else:
            records = self._records()
            while True:
                batch = list(islice(records, size))
                if not batch:
                    return
                yield batch

    # -- pass 1: extent + counts (+ last uses) --------------------------------

    def _counting_pass(self) -> tuple[int, str]:
        """Write the use-count file; returns ``(max_cid, counts_path)``.

        Sets ``_num_original``/``_total_learned`` and, on the unchunked
        mmap path, fills ``_last_use`` with each clause's final-reference
        stream position.
        """
        if self._plan is not None:
            return self._plan_counts()
        if self._mapped is not None:
            return self._mapped_counts()
        return self._generic_counts()

    def _plan_counts(self) -> tuple[int, str]:
        plan = self._plan
        assert plan is not None
        if self.formula.num_clauses != plan.num_original:
            raise CheckFailure(
                FailureKind.UNKNOWN_CLAUSE,
                "formula / trace disagree on the number of original clauses",
                formula_clauses=self.formula.num_clauses,
                trace_clauses=plan.num_original,
            )
        self._num_original = plan.num_original
        self._total_learned = plan.total_learned
        with new_counts_file(self._tmp_dir, prefix="stream-counts-") as (path, handle):
            write_count_range(
                handle, plan.num_original + 1, plan.max_cid + 1, plan.needed_counts.get
            )
        return plan.max_cid, path

    def _validate_headers(self, headers: Sequence[tuple[int, int]], max_cid: int) -> int:
        if not headers:
            raise CheckFailure(FailureKind.BAD_HEADER, "trace has no header")
        for _num_vars, num_original in headers:
            self._num_original = num_original
            if num_original > max_cid:
                max_cid = num_original
            if self.formula.num_clauses != num_original:
                raise CheckFailure(
                    FailureKind.UNKNOWN_CLAUSE,
                    "formula / trace disagree on the number of original clauses",
                    formula_clauses=self.formula.num_clauses,
                    trace_clauses=num_original,
                )
        return max_cid

    def _mapped_counts(self) -> tuple[int, str]:
        assert self._mapped is not None
        view = self._mapped.view
        if self._chunk_size is None:
            headers, max_cid, num_learned, counts, last_use = scan_mapped_learned(
                view, track_last_use=True
            )
            max_cid = self._validate_headers(headers, max_cid)
            self._total_learned = num_learned
            self._last_use = last_use
            with new_counts_file(self._tmp_dir, prefix="stream-counts-") as (
                path,
                handle,
            ):
                write_count_range(
                    handle, self._num_original + 1, max_cid + 1, counts.get
                )
            return max_cid, path
        # Chunked counting (the paper's multi-pass mode): an extent pass
        # with an empty count range, then one pass per clause-ID chunk.
        # Last uses are not collected — they would need the full range in
        # one pass — so eviction falls back to oldest-first.
        headers, max_cid, num_learned, _counts, _ = scan_mapped_learned(
            view, count_range=(0, 0)
        )
        max_cid = self._validate_headers(headers, max_cid)
        self._total_learned = num_learned
        first_learned = self._num_original + 1
        with new_counts_file(self._tmp_dir, prefix="stream-counts-") as (path, handle):
            for low in range(first_learned, max_cid + 1, self._chunk_size):
                high = min(low + self._chunk_size, max_cid + 1)
                _, _, _, counts, _ = scan_mapped_learned(view, count_range=(low, high))
                write_count_range(handle, low, high, counts.get)
        return max_cid, path

    def _generic_counts(self) -> tuple[int, str]:
        """One record-stream pass for ASCII files and in-memory traces."""
        counts: dict[int, int] = {}
        counts_get = counts.get
        last_use: dict[int, int] = {}
        max_cid = 0
        saw_header = False
        position = 0
        deadline = self._deadline
        for record in self._records():
            position += 1
            if deadline is not None and not position & 0x3FF:
                deadline.check()
            if isinstance(record, LearnedClause):
                self._total_learned += 1
                if record.cid > max_cid:
                    max_cid = record.cid
                for src in record.sources:
                    counts[src] = counts_get(src, 0) + 1
                    last_use[src] = position
            elif isinstance(record, TraceHeader):
                saw_header = True
                self._num_original = record.num_original_clauses
                if record.num_original_clauses > max_cid:
                    max_cid = record.num_original_clauses
                if self.formula.num_clauses != record.num_original_clauses:
                    raise CheckFailure(
                        FailureKind.UNKNOWN_CLAUSE,
                        "formula / trace disagree on the number of original clauses",
                        formula_clauses=self.formula.num_clauses,
                        trace_clauses=record.num_original_clauses,
                    )
            elif isinstance(record, LevelZeroAssignment):
                counts[record.antecedent] = counts_get(record.antecedent, 0) + 1
                last_use[record.antecedent] = position
            elif isinstance(record, FinalConflict):
                counts[record.cid] = counts_get(record.cid, 0) + 1
                last_use[record.cid] = position
        if not saw_header:
            raise CheckFailure(FailureKind.BAD_HEADER, "trace has no header")
        self._last_use = last_use
        with new_counts_file(self._tmp_dir, prefix="stream-counts-") as (path, handle):
            write_count_range(handle, self._num_original + 1, max_cid + 1, counts.get)
        return max_cid, path

    # -- residency management -------------------------------------------------

    def _clause_units(self, clause: ClauseLits) -> int:
        return self.meter.clause_units(len(clause))  # type: ignore[arg-type]

    def _spill_file(self) -> IO[bytes]:
        if self._spill_handle is None:
            import tempfile

            fd, self._spill_path = tempfile.mkstemp(
                prefix="stream-spill-", dir=self._tmp_dir
            )
            self._spill_handle = os.fdopen(fd, "wb+")
        return self._spill_handle

    def _close_spill(self) -> None:
        if self._spill_handle is not None:
            self._spill_handle.close()
            self._spill_handle = None
        if self._spill_path is not None:
            os.unlink(self._spill_path)
            self._spill_path = None

    def _spill(self, cid: int, clause: ClauseLits) -> None:
        """Move a still-needed learned clause from the window to disk."""
        data = clause if isinstance(clause, array) else array("i", sorted(clause))
        blob = data.tobytes()
        handle = self._spill_file()
        handle.seek(0, os.SEEK_END)
        offset = handle.tell()
        handle.write(blob)
        self._spill_index[cid] = (offset, len(blob))
        del self._resident[cid]
        units = self._clause_units(clause)
        self._resident_units -= units
        self.meter.release(units)
        self._engine.release(clause)
        self.spills += 1

    def _reload(self, cid: int) -> ClauseLits:
        """Bring a spilled clause back into the window."""
        offset, nbytes = self._spill_index.pop(cid)
        handle = self._spill_handle
        assert handle is not None
        handle.seek(offset)
        blob = handle.read(nbytes)
        literals = array("i")
        literals.frombytes(blob)
        clause = self._engine.materialize(literals)
        self._resident[cid] = clause
        units = self._clause_units(clause)
        self._resident_units += units
        if self._resident_units > self._peak_resident_units:
            self._peak_resident_units = self._resident_units
        self.meter.allocate(units)
        heappush(self._evict_heap, (-self._last_use.get(cid, -cid), cid))
        self.reloads += 1
        return clause

    def _enforce_budget(self) -> None:
        """Shrink the window back under ``memory_budget``.

        Cached originals go first (free to rebuild); then learned clauses
        spill in retirement order. Runs only between builds, so everything
        a resolution chain currently references stays alive through plain
        Python references even if its store entry is evicted.
        """
        budget = self._budget
        if budget is None:
            return
        while self._resident_units > budget and self._orig_cache:
            cid, clause = self._orig_cache.popitem()
            self._resident_units -= self._clause_units(clause)
            self._engine.release(clause)
            self._orig_evictions += 1
        heap = self._evict_heap
        while self._resident_units > budget and heap:
            _, cid = heappop(heap)
            clause = self._resident.get(cid)
            if clause is None:
                continue  # stale heap entry (consumed or already spilled)
            self._spill(cid, clause)
        # If the heap drains with the budget still exceeded (budget smaller
        # than one window batch's live clauses), residency is best-effort —
        # by contract this checker degrades, it never fails.

    def _trim_originals(self, keep: int) -> None:
        """Evict oldest cached originals until back under budget.

        Called from the hot lookup path (including the final trail walk,
        which touches O(num_vars) antecedents), so unlike
        :meth:`_enforce_budget` it never touches the spill heap — it only
        sheds re-materializable originals, oldest first, keeping the entry
        just handed out.
        """
        budget = self._budget
        if budget is None:
            return
        cache = self._orig_cache
        while self._resident_units > budget and len(cache) > 1:
            old_cid = next(iter(cache))
            if old_cid == keep:
                break
            old = cache.pop(old_cid)
            self._resident_units -= self._clause_units(old)
            self._engine.release(old)
            self._orig_evictions += 1

    def _get_clause(self, cid: int) -> ClauseLits:
        assert self._num_original is not None
        clause = self._resident.get(cid)
        if clause is not None:
            return clause
        if cid <= self._num_original:
            clause = self._orig_cache.get(cid)
            if clause is not None:
                return clause
            # Materialized on demand and *cached with eviction*, unlike the
            # other checkers' engine.original() path, whose cache pins
            # every original for the run's lifetime.
            try:
                literals = self.formula[cid].literals
            except KeyError:
                raise CheckFailure(
                    FailureKind.UNKNOWN_CLAUSE,
                    "trace references an original clause absent from the formula",
                    cid=cid,
                ) from None
            clause = self._engine.materialize(literals)
            self._orig_cache[cid] = clause
            self._resident_units += self._clause_units(clause)
            if self._resident_units > self._peak_resident_units:
                self._peak_resident_units = self._resident_units
            self._trim_originals(keep=cid)
            return clause
        if cid in self._spill_index:
            return self._reload(cid)
        raise CheckFailure(
            FailureKind.UNKNOWN_CLAUSE,
            "clause is not resident: never defined, defined later, or "
            "already fully consumed",
            cid=cid,
        )

    def _consume_use(self, cid: int) -> None:
        """Decrement a clause's remaining-use counter; free/forget at zero."""
        assert self._num_original is not None
        if cid <= self._num_original:
            return
        remaining = self._remaining.get(cid)
        if remaining is None:
            return
        if remaining > 1:
            self._remaining[cid] = remaining - 1
            return
        del self._remaining[cid]
        clause = self._resident.pop(cid, None)
        if clause is not None:
            units = self._clause_units(clause)
            self._resident_units -= units
            self.meter.release(units)
            self._engine.release(clause)
        else:
            # Fully consumed while spilled: its bytes just become dead
            # space in the spill file (reclaimed when the file is deleted).
            self._spill_index.pop(cid, None)

    # -- pass 2: windowed checking --------------------------------------------

    def _build_learned(self, cid: int, sources: Sequence[int], counts: CountsReader) -> None:
        if not sources:
            raise CheckFailure(
                FailureKind.MALFORMED_TRACE,
                "learned clause record has no resolve sources",
                cid=cid,
            )
        if max(sources) >= cid:
            for source in sources:
                if source >= cid:
                    raise CheckFailure(
                        FailureKind.CYCLIC_TRACE,
                        "learned clause resolves from a clause with an ID not "
                        "smaller than its own",
                        cid=cid,
                        source=source,
                    )
        try:
            clause = self._engine.chain(cid, sources, self._get_clause)
        except ResolutionError as exc:
            self._resolutions += max(0, (exc.context.get("chain_position") or 1) - 1)
            raise
        self._resolutions += len(sources) - 1
        self._clauses_built += 1
        for source in sources:
            self._consume_use(source)
        total_uses = counts.read(cid)
        if total_uses == 0:
            self._engine.release(clause)
            return
        self._resident[cid] = clause
        self._remaining[cid] = total_uses
        units = self._clause_units(clause)
        self._resident_units += units
        if self._resident_units > self._peak_resident_units:
            self._peak_resident_units = self._resident_units
        self.meter.allocate(units)
        heappush(self._evict_heap, (-self._last_use.get(cid, -cid), cid))
        self._enforce_budget()

    def _checking_pass(self, counts: CountsReader) -> bool:
        assert self._num_original is not None
        level_zero_entries: list[LevelZeroAssignment] = []
        final_conflicts: list[int] = []
        status = "UNKNOWN"
        last_cid = self._num_original
        deadline = self._deadline
        skip = self._plan.skip if self._plan is not None else None
        window = self._window
        for batch in self._batches():
            if deadline is not None:
                deadline.check()
            built_before = self._clauses_built
            for record in batch:
                if type(record) is tuple:
                    cid, sources = record
                elif isinstance(record, LearnedClause):
                    cid = record.cid
                    sources = record.sources
                elif isinstance(record, LevelZeroAssignment):
                    level_zero_entries.append(record)
                    self.meter.allocate(self.meter.record_units(3))
                    continue
                elif isinstance(record, FinalConflict):
                    final_conflicts.append(record.cid)
                    continue
                elif isinstance(record, TraceResult):
                    status = record.status
                    continue
                else:
                    continue  # headers, deletions, anything future
                if cid <= last_cid:
                    raise CheckFailure(
                        FailureKind.CYCLIC_TRACE,
                        "learned clause IDs must be strictly increasing",
                        cid=cid,
                        previous=last_cid,
                    )
                last_cid = cid
                if skip is not None and cid in skip:
                    continue
                self._build_learned(cid, sources, counts)
            window.advance(
                len(batch),
                built=self._clauses_built - built_before,
                resident_units=self._resident_units,
                resident_clauses=len(self._resident),
                spilled=len(self._spill_index),
            )

        if status != "UNSAT":
            raise CheckFailure(
                FailureKind.BAD_STATUS,
                "trace does not claim UNSAT; nothing to check",
                status=status,
            )
        if not final_conflicts:
            raise CheckFailure(
                FailureKind.BAD_FINAL_CONFLICT,
                "trace has no final conflicting clause",
            )
        final_cid = final_conflicts[0]
        for unused_cid in final_conflicts[1:]:
            self._consume_use(unused_cid)
        level_zero = LevelZeroState(level_zero_entries)
        steps = derive_empty_clause(
            final_cid,
            self._get_clause(final_cid),
            level_zero,
            get_clause=self._get_clause,
            on_use=self._consume_use,
            resolve_fn=self._engine.resolve,
            deadline=self._deadline,
        )
        self._resolutions += steps
        return True

    # -- reporting ------------------------------------------------------------

    def _memory_stats(self) -> dict:
        stats = engine_memory_stats(self._engine, self.meter)
        stats.update(
            {
                "budget_units": self._budget,
                "peak_resident_units": self._peak_resident_units,
                "spilled_clauses": self.spills,
                "reloaded_clauses": self.reloads,
                "evicted_originals": self._orig_evictions,
                "windows": self._window.index,
            }
        )
        return stats
