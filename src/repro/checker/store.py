"""Interned clause storage for the resolution kernel.

Every clause a checker holds resident — original clauses materialized from
the formula and learned resolvents emitted by the kernel — is interned
here as a sorted, deduplicated ``array('i')`` of DIMACS literals. Identical
clauses share one buffer regardless of how many clause IDs point at them
(SAT traces are full of re-derived duplicates), and the store reports the
*real* memory those buffers occupy (:func:`repro.checker.memory.real_bytes`)
alongside the checkers' platform-independent logical units.

Entries are reference counted so the breadth-first checker's
delete-on-last-use discipline keeps real memory bounded: interning bumps
the count, :meth:`ClauseStore.release` drops it, and the buffer is evicted
when the last holder lets go.
"""

from __future__ import annotations

from array import array
from operator import neg as _neg
from typing import Iterable

from repro.checker.memory import real_bytes


class InternedClause(array):
    """A store-owned clause buffer: a sorted ``array('i')`` plus mark sets.

    ``litset``/``negset`` are frozensets of the clause's literals and their
    negations, computed once at intern time. The kernel's chain loop runs
    entirely on them: set-to-set operations reuse the cached element hashes
    (and skip re-boxing the array's raw ints), which is what makes the
    chain O(total literals) with no per-literal Python bytecode. Both are
    derived data — a clause that lost them (e.g. crossing a process
    boundary, since ``array`` pickling drops slot attributes) is rebuilt
    on first use by the kernel.
    """

    __slots__ = ("litset", "negset")


def _attach_marksets(clause: InternedClause, litset: frozenset | None = None) -> None:
    # Freezing an existing set (the kernel hands its accumulator over)
    # copies cached hashes instead of re-boxing the array's raw ints.
    clause.litset = frozenset(clause) if litset is None else litset
    clause.negset = frozenset(map(_neg, clause.litset))


def _entry_bytes(key: bytes, clause: InternedClause) -> int:
    """Measured bytes one interned entry pins: buffer, mark sets, index key."""
    return (
        real_bytes(clause)
        + real_bytes(clause.litset)
        + real_bytes(clause.negset)
        + len(key)
    )


class ClauseStore:
    """Deduplicating, reference-counted store of sorted ``array('i')`` clauses."""

    __slots__ = (
        "_entries",
        "_refs",
        "hits",
        "misses",
        "resident_bytes",
        "peak_bytes",
        "peak_unique_clauses",
    )

    def __init__(self) -> None:
        self._entries: dict[bytes, InternedClause] = {}
        self._refs: dict[bytes, int] = {}
        self.hits = 0
        self.misses = 0
        # High-water marks, maintained O(1) at intern/evict time so any
        # checker can report its peak residency without a store sweep.
        self.resident_bytes = 0
        self.peak_bytes = 0
        self.peak_unique_clauses = 0

    def intern(self, literals: Iterable[int]) -> array:
        """Intern an arbitrary iterable of literals (deduplicated, sorted)."""
        return self.intern_sorted(array("i", sorted(set(literals))))

    def intern_sorted(self, clause: array, litset: frozenset | None = None) -> array:
        """Intern an already-sorted, duplicate-free ``array('i')``.

        Returns the shared buffer (an :class:`InternedClause` copy on
        first sight) and takes one reference on it. ``litset``, when the
        caller already holds the clause's literals as a set, seeds the
        cached mark sets without another pass over the buffer.
        """
        key = clause.tobytes()
        found = self._entries.get(key)
        if found is not None:
            self.hits += 1
            self._refs[key] += 1
            return found
        self.misses += 1
        if type(clause) is not InternedClause:
            clause = InternedClause("i", clause)
        _attach_marksets(clause, litset)
        self._entries[key] = clause
        self._refs[key] = 1
        self.resident_bytes += _entry_bytes(key, clause)
        if self.resident_bytes > self.peak_bytes:
            self.peak_bytes = self.resident_bytes
        if len(self._entries) > self.peak_unique_clauses:
            self.peak_unique_clauses = len(self._entries)
        return clause

    def release(self, clause: array | Iterable[int]) -> None:
        """Drop one reference; the buffer is evicted when none remain.

        Releasing a clause the store does not hold is a no-op, so checkers
        running with the frozenset reference engine can share the same
        call sites.
        """
        if not isinstance(clause, array):
            return
        key = clause.tobytes()
        refs = self._refs.get(key)
        if refs is None:
            return
        if refs <= 1:
            del self._refs[key]
            evicted = self._entries.pop(key)
            self.resident_bytes -= _entry_bytes(key, evicted)
        else:
            self._refs[key] = refs - 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, clause: array) -> bool:
        return isinstance(clause, array) and clause.tobytes() in self._entries

    @property
    def resident_references(self) -> int:
        """Total outstanding references across all interned clauses."""
        return sum(self._refs.values())

    def memory_bytes(self) -> int:
        """Measured bytes held by the interned buffers, their cached mark
        sets, and the index keys."""
        return sum(
            _entry_bytes(key, clause) for key, clause in self._entries.items()
        )

    def stats(self) -> dict:
        """Machine-readable interning statistics for reports and benchmarks."""
        return {
            "unique_clauses": len(self._entries),
            "resident_references": self.resident_references,
            "hits": self.hits,
            "misses": self.misses,
            "memory_bytes": self.memory_bytes(),
            "peak_unique_clauses": self.peak_unique_clauses,
            "peak_memory_bytes": self.peak_bytes,
        }
