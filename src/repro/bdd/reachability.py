"""Exact symbolic reachability over transition systems.

Classic BDD-based forward image computation — the pre-BMC technology the
paper's citation [2] positioned SAT against. Exact reachability gives
ground truth to cross-validate the SAT-based engines: a bad state is
reachable iff Reach AND Bad is non-empty, and the iteration count bounds
where BMC must find its counterexample.

Variable convention: state bit i lives at level 2i (current) and 2i+1
(next); primary inputs live above all state levels. The interleaving
makes the next->current renaming order-preserving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bdd.circuit_bridge import circuit_outputs_to_bdds
from repro.bdd.manager import BddManager
from repro.bmc.transition import TransitionSystem


@dataclass
class ReachabilityResult:
    """Exact reachability facts."""

    bad_reachable: bool
    iterations: int  # image steps to the fixed point (or to hitting bad)
    num_reachable_states: int | None  # None when stopped early at a bad state
    shortest_counterexample: int | None  # steps to the first bad state


def symbolic_reachability(
    system: TransitionSystem,
    max_iterations: int = 10_000,
    stop_at_bad: bool = True,
) -> ReachabilityResult:
    """Forward reachability to a fixed point (or the first bad state)."""
    manager = BddManager()
    n = system.num_state_bits

    def current_level(i: int) -> int:
        return 2 * i

    def next_level(i: int) -> int:
        return 2 * i + 1

    input_base = 2 * n
    current_levels = [current_level(i) for i in range(n)]
    input_levels = [input_base + j for j in range(system.num_input_bits)]

    # Transition relation T(s, x, s') = AND_i (s'_i <-> f_i(s, x)).
    next_functions = circuit_outputs_to_bdds(
        system.transition, manager, input_levels=current_levels + input_levels
    )
    relation = manager.true()
    for i, function in enumerate(next_functions):
        relation = manager.and_(
            relation, manager.xnor(manager.var(next_level(i)), function)
        )

    bad = circuit_outputs_to_bdds(system.bad, manager, input_levels=current_levels)[0]

    init = manager.true()
    for clause in system.init:
        clause_bdd = manager.false()
        for lit in clause:
            var_bdd = manager.var(current_level(abs(lit) - 1))
            clause_bdd = manager.or_(
                clause_bdd, var_bdd if lit > 0 else manager.not_(var_bdd)
            )
        init = manager.and_(init, clause_bdd)

    quantified = set(current_levels) | set(input_levels)
    rename_map = {next_level(i): current_level(i) for i in range(n)}

    reach = init
    frontier = init
    steps = 0
    shortest: int | None = 0 if manager.and_(init, bad) != manager.false() else None
    if shortest is not None and stop_at_bad:
        return ReachabilityResult(True, 0, None, 0)

    while frontier != manager.false() and steps < max_iterations:
        image_next = manager.exists(
            quantified, manager.and_(frontier, relation)
        )
        image = manager.rename(image_next, rename_map)
        frontier = manager.and_(image, manager.not_(reach))
        reach = manager.or_(reach, image)
        steps += 1
        if shortest is None and manager.and_(frontier, bad) != manager.false():
            shortest = steps
            if stop_at_bad:
                return ReachabilityResult(True, steps, None, steps)

    # reach ranges over the even (current-state) levels only; counting over
    # all 2n levels treats the odd levels as don't-cares, so divide out.
    num_states = manager.count_sat(reach, 2 * n) >> n
    return ReachabilityResult(
        bad_reachable=shortest is not None,
        iterations=steps,
        num_reachable_states=num_states,
        shortest_counterexample=shortest,
    )
