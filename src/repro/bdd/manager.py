"""Reduced ordered binary decision diagrams.

Nodes are integers: 0 and 1 are the terminals; internal nodes are handles
into the manager's tables. Variables are identified by their position in
a fixed global order (small index = nearer the root).
"""

from __future__ import annotations

FALSE = 0
TRUE = 1


class BddManager:
    """Unique-table ROBDD manager with memoized ite."""

    def __init__(self):
        # node id -> (level, low, high); ids 0/1 are terminals.
        self._nodes: dict[int, tuple[int, int, int]] = {}
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._next_id = 2

    # -- structure ---------------------------------------------------------

    def level_of(self, node: int) -> int:
        """Variable level of a node (terminals sit at +infinity)."""
        if node in (FALSE, TRUE):
            return 1 << 60
        return self._nodes[node][0]

    def low_high(self, node: int) -> tuple[int, int]:
        _, low, high = self._nodes[node]
        return low, high

    def make_node(self, level: int, low: int, high: int) -> int:
        """Reduced, hash-consed node constructor."""
        if low == high:
            return low
        key = (level, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        node = self._next_id
        self._next_id += 1
        self._nodes[node] = key
        self._unique[key] = node
        return node

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    # -- constants and variables ----------------------------------------------

    def true(self) -> int:
        return TRUE

    def false(self) -> int:
        return FALSE

    def var(self, level: int) -> int:
        """The function "variable at ``level`` is true"."""
        if level < 0:
            raise ValueError("variable level must be >= 0")
        return self.make_node(level, FALSE, TRUE)

    # -- the universal combinator -----------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """if f then g else h."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self.level_of(f), self.level_of(g), self.level_of(h))

        def cofactor(node: int, branch: int) -> int:
            if self.level_of(node) != level:
                return node
            return self.low_high(node)[branch]

        low = self.ite(cofactor(f, 0), cofactor(g, 0), cofactor(h, 0))
        high = self.ite(cofactor(f, 1), cofactor(g, 1), cofactor(h, 1))
        result = self.make_node(level, low, high)
        self._ite_cache[key] = result
        return result

    # -- boolean operations -------------------------------------------------------

    def not_(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def xnor(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def and_many(self, operands) -> int:
        result = TRUE
        for operand in operands:
            result = self.and_(result, operand)
        return result

    def or_many(self, operands) -> int:
        result = FALSE
        for operand in operands:
            result = self.or_(result, operand)
        return result

    # -- cofactors, quantification, substitution -------------------------------------

    def restrict(self, f: int, level: int, value: bool) -> int:
        """Cofactor: fix the variable at ``level`` to ``value``."""
        memo: dict[int, int] = {}

        def walk(node: int) -> int:
            if node in (FALSE, TRUE):
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            node_level, low, high = self._nodes[node]
            if node_level > level:
                result = node
            elif node_level == level:
                result = walk(high if value else low)
            else:
                result = self.make_node(node_level, walk(low), walk(high))
            memo[node] = result
            return result

        return walk(f)

    def exists(self, levels, f: int) -> int:
        """Existential quantification over an iterable of levels."""
        result = f
        for level in sorted(set(levels), reverse=True):
            result = self.or_(
                self.restrict(result, level, False),
                self.restrict(result, level, True),
            )
        return result

    def rename(self, f: int, mapping: dict[int, int]) -> int:
        """Relabel variable levels via an order-preserving mapping.

        ``mapping`` must be strictly monotone on the levels it moves and
        must not collide with levels in ``f``'s support outside the
        mapping — sufficient for the interleaved current/next encoding
        reachability uses, and checked.
        """
        items = sorted(mapping.items())
        for (a, fa), (b, fb) in zip(items, items[1:]):
            if not (a < b and fa < fb):
                raise ValueError("rename mapping must be order-preserving")
        support = self.support(f)
        moved_targets = set(mapping.values())
        if moved_targets & (support - set(mapping)):
            raise ValueError("rename target collides with the function's support")
        memo: dict[int, int] = {}

        def walk(node: int) -> int:
            if node in (FALSE, TRUE):
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            level, low, high = self._nodes[node]
            result = self.make_node(mapping.get(level, level), walk(low), walk(high))
            memo[node] = result
            return result

        return walk(f)

    # -- queries ---------------------------------------------------------------------

    def evaluate(self, f: int, assignment: dict[int, bool]) -> bool:
        """Evaluate under a level -> bool assignment (must cover support)."""
        node = f
        while node not in (FALSE, TRUE):
            level, low, high = self._nodes[node]
            node = high if assignment[level] else low
        return node == TRUE

    def support(self, f: int) -> set[int]:
        """The set of variable levels the function depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in (FALSE, TRUE) or node in seen:
                continue
            seen.add(node)
            level, low, high = self._nodes[node]
            levels.add(level)
            stack.extend((low, high))
        return levels

    def count_sat(self, f: int, num_vars: int) -> int:
        """Number of satisfying assignments over levels 0..num_vars-1."""
        memo: dict[int, int] = {}

        def effective_level(node: int) -> int:
            level = self.level_of(node)
            return num_vars if level >= num_vars else level

        def walk(node: int) -> int:
            """Count over the variables from the node's own level down."""
            if node == TRUE:
                return 1
            if node == FALSE:
                return 0
            cached = memo.get(node)
            if cached is not None:
                return cached
            level, low, high = self._nodes[node]
            result = 0
            for child in (low, high):
                result += walk(child) << (effective_level(child) - level - 1)
            memo[node] = result
            return result

        return walk(f) << effective_level(f)
