"""Circuit -> BDD compilation and BDD-based equivalence checking."""

from __future__ import annotations

from repro.bdd.manager import BddManager
from repro.circuits.netlist import Circuit, GateType


def circuit_outputs_to_bdds(
    circuit: Circuit,
    manager: BddManager,
    input_levels: list[int] | None = None,
) -> list[int]:
    """Compile each circuit output to a BDD.

    ``input_levels`` assigns BDD variable levels to the circuit's primary
    inputs (default: 0..k-1 in input order).
    """
    if input_levels is None:
        input_levels = list(range(len(circuit.inputs)))
    if len(input_levels) != len(circuit.inputs):
        raise ValueError("one level per primary input, please")
    value: dict[int, int] = {
        net: manager.var(level) for net, level in zip(circuit.inputs, input_levels)
    }
    for gate in circuit.gates:
        operands = [value[n] for n in gate.inputs]
        value[gate.output] = _apply_gate(manager, gate.gtype, operands)
    return [value[net] for net in circuit.outputs]


def _apply_gate(manager: BddManager, gtype: GateType, operands: list[int]) -> int:
    if gtype == GateType.AND:
        return manager.and_many(operands)
    if gtype == GateType.OR:
        return manager.or_many(operands)
    if gtype == GateType.NAND:
        return manager.not_(manager.and_many(operands))
    if gtype == GateType.NOR:
        return manager.not_(manager.or_many(operands))
    if gtype == GateType.NOT:
        return manager.not_(operands[0])
    if gtype == GateType.BUF:
        return operands[0]
    if gtype == GateType.XOR:
        return manager.xor(operands[0], operands[1])
    if gtype == GateType.XNOR:
        return manager.xnor(operands[0], operands[1])
    if gtype == GateType.CONST0:
        return manager.false()
    if gtype == GateType.CONST1:
        return manager.true()
    if gtype == GateType.MUX:
        select, a, b = operands
        return manager.ite(select, b, a)
    raise AssertionError(f"unhandled gate type {gtype}")


def bdd_equivalent(left: Circuit, right: Circuit) -> bool:
    """Canonical-form equivalence: identical BDDs iff identical functions.

    An implementation wholly independent of the SAT/miter path — used by
    the test suite to referee the SAT-based CEC flow.
    """
    if len(left.inputs) != len(right.inputs) or len(left.outputs) != len(right.outputs):
        raise ValueError("interface mismatch")
    manager = BddManager()
    left_bdds = circuit_outputs_to_bdds(left, manager)
    right_bdds = circuit_outputs_to_bdds(right, manager)
    return left_bdds == right_bdds  # canonicity makes equality structural
