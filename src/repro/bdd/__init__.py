"""A small ROBDD engine — the other symbolic engine of the paper's era.

BMC (the paper's [2]) was introduced as "symbolic model checking *without*
BDDs"; this package supplies the BDD side so the test suite can
cross-validate the SAT-based flows against an entirely independent
technology: BDD equivalence checking against SAT-based CEC, and exact
symbolic reachability against BMC / interpolation verdicts.

Classic reduced ordered BDDs with a unique table and memoized ``ite``;
no complement edges (simplicity over speed — this is a referee, not a
race car).
"""

from repro.bdd.manager import BddManager
from repro.bdd.circuit_bridge import circuit_outputs_to_bdds, bdd_equivalent
from repro.bdd.reachability import symbolic_reachability, ReachabilityResult

__all__ = [
    "BddManager",
    "circuit_outputs_to_bdds",
    "bdd_equivalent",
    "symbolic_reachability",
    "ReachabilityResult",
]
