"""Symbolic transition systems."""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import Circuit


@dataclass
class TransitionSystem:
    """A finite-state system given as circuits.

    * ``num_state_bits`` / ``num_input_bits`` — widths of the state and the
      free (nondeterministic) input.
    * ``init`` — CNF over the *initial* state bits; literal ±i refers to
      state bit i (1-based).
    * ``transition`` — a circuit whose inputs are
      (state bits, then input bits) and whose outputs are the next-state
      bits, in order.
    * ``bad`` — a circuit over the state bits with one output that is 1 in
      exactly the bad states.
    """

    num_state_bits: int
    num_input_bits: int
    init: list[list[int]]
    transition: Circuit
    bad: Circuit
    name: str = "ts"

    def __post_init__(self) -> None:
        expected_inputs = self.num_state_bits + self.num_input_bits
        if len(self.transition.inputs) != expected_inputs:
            raise ValueError(
                f"transition circuit has {len(self.transition.inputs)} inputs, "
                f"expected {expected_inputs}"
            )
        if len(self.transition.outputs) != self.num_state_bits:
            raise ValueError(
                f"transition circuit has {len(self.transition.outputs)} outputs, "
                f"expected {self.num_state_bits}"
            )
        if len(self.bad.inputs) != self.num_state_bits:
            raise ValueError(
                f"bad-state circuit has {len(self.bad.inputs)} inputs, "
                f"expected {self.num_state_bits}"
            )
        if len(self.bad.outputs) != 1:
            raise ValueError("bad-state circuit must have exactly one output")
        for clause in self.init:
            for lit in clause:
                if lit == 0 or abs(lit) > self.num_state_bits:
                    raise ValueError(f"init literal {lit} out of state range")
