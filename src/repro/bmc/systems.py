"""Concrete transition systems for the benchmark suite."""

from __future__ import annotations

from repro.bmc.transition import TransitionSystem
from repro.circuits.netlist import Circuit


def _equals_const_circuit(width: int, value: int) -> Circuit:
    """Bad-state circuit: state == value."""
    circuit = Circuit(name=f"eq{value}")
    state = circuit.add_inputs(width)
    bits = [
        state[i] if (value >> i) & 1 else circuit.not_(state[i]) for i in range(width)
    ]
    out = bits[0] if width == 1 else circuit.and_(*bits)
    circuit.mark_output(out)
    return circuit


def counter_system(
    width: int, bad_value: int | None = None, with_enable: bool = False
) -> TransitionSystem:
    """A ``width``-bit incrementing counter starting at 0.

    Bad state: counter == ``bad_value`` (default: all ones). BMC with
    bound < bad_value is UNSAT — the counter cannot get there that fast —
    which makes the bound a precise hardness dial (the ``barrel``/BMC
    analog).

    With ``with_enable`` the counter increments only when a free input bit
    is 1; the environment's choices make the refutation a genuine search
    over input sequences rather than a single BCP chain.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if bad_value is None:
        bad_value = (1 << width) - 1
    if not 0 < bad_value < (1 << width):
        raise ValueError("bad_value out of range")
    transition = Circuit(name=f"inc{width}")
    state = transition.add_inputs(width)
    carry = transition.add_input() if with_enable else transition.const(True)
    for i in range(width):
        transition.mark_output(transition.xor(state[i], carry))
        carry = transition.and_(state[i], carry)
    init = [[-(i + 1)] for i in range(width)]  # counter starts at 0
    return TransitionSystem(
        num_state_bits=width,
        num_input_bits=1 if with_enable else 0,
        init=init,
        transition=transition,
        bad=_equals_const_circuit(width, bad_value),
        name=f"counter{width}_to_{bad_value}",
    )


def token_ring_system(size: int) -> TransitionSystem:
    """A one-hot token rotating around a ring; bad = token lost or doubled.

    The mutual-exclusion-style invariant holds for every bound, so every
    BMC query is UNSAT — a family whose proofs grow linearly with the
    bound.
    """
    if size < 2:
        raise ValueError("size must be >= 2")
    transition = Circuit(name=f"rot{size}")
    state = transition.add_inputs(size)
    for i in range(size):
        transition.mark_output(transition.buf(state[(i - 1) % size]))
    # Bad: not exactly one token.
    bad = Circuit(name="not_onehot")
    bits = bad.add_inputs(size)
    any_pair = [
        bad.and_(bits[i], bits[j]) for i in range(size) for j in range(i + 1, size)
    ]
    none = bad.nor(*bits)
    bad.mark_output(bad.or_(none, *any_pair))
    init = [[1]] + [[-(i + 1)] for i in range(1, size)]  # token at position 0
    return TransitionSystem(
        num_state_bits=size,
        num_input_bits=0,
        init=init,
        transition=transition,
        bad=bad,
        name=f"token_ring{size}",
    )


def lfsr_system(
    width: int, taps: tuple[int, ...] = (0,), any_nonzero_seed: bool = True
) -> TransitionSystem:
    """A Fibonacci LFSR seeded non-zero; bad = all-zero state.

    The feedback always XORs in the bit being shifted out (index
    ``width-1``), which makes the update bijective; zero is then a fixed
    point no non-zero orbit can enter, so every BMC bound is UNSAT. The
    XOR feedback gives resolution proofs the flavour of the paper's
    ``longmult``.

    With ``any_nonzero_seed`` (default) the initial state is only
    constrained to be non-zero, so the refutation must cover every seed —
    a genuine search. Otherwise the seed is the concrete 000..01 and BCP
    refutes the query on its own.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    if any(t < 0 or t >= width - 1 for t in taps) or not taps:
        raise ValueError("taps must be distinct indices in [0, width-1)")
    transition = Circuit(name=f"lfsr{width}")
    state = transition.add_inputs(width)
    feedback = state[width - 1]
    for tap in dict.fromkeys(taps):
        feedback = transition.xor(feedback, state[tap])
    transition.mark_output(feedback)
    for i in range(width - 1):
        transition.mark_output(transition.buf(state[i]))
    bad = Circuit(name="all_zero")
    bits = bad.add_inputs(width)
    bad.mark_output(bad.nor(*bits))
    if any_nonzero_seed:
        init = [[i + 1 for i in range(width)]]  # at least one bit set
    else:
        init = [[1]] + [[-(i + 1)] for i in range(1, width)]  # seed = 000..01
    return TransitionSystem(
        num_state_bits=width,
        num_input_bits=0,
        init=init,
        transition=transition,
        bad=bad,
        name=f"lfsr{width}",
    )
