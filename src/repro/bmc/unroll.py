"""k-step unrolling of a transition system into CNF."""

from __future__ import annotations

from repro.bmc.transition import TransitionSystem
from repro.circuits.tseitin import tseitin_encode
from repro.cnf import CnfFormula


def unroll(system: TransitionSystem, steps: int) -> tuple[CnfFormula, list[list[int]]]:
    """Unroll ``steps`` transitions; returns (formula, state vars per step).

    The returned formula contains the initial-state constraint and the
    chained transition relations but no property — callers add their own
    goal/bad constraint over the per-step state variables.
    """
    if steps < 0:
        raise ValueError("steps must be >= 0")
    formula = CnfFormula(0)
    # Fresh variables for the step-0 state.
    state_vars = [[formula.num_vars + i + 1 for i in range(system.num_state_bits)]]
    formula.num_vars += system.num_state_bits
    for clause in system.init:
        formula.add_clause(
            [state_vars[0][abs(lit) - 1] * (1 if lit > 0 else -1) for lit in clause]
        )
    for _ in range(steps):
        current = state_vars[-1]
        bindings = dict(zip(system.transition.inputs[: system.num_state_bits], current))
        encoded = tseitin_encode(system.transition, formula, bindings=bindings)
        state_vars.append([encoded.var(net) for net in system.transition.outputs])
    return formula, state_vars


def bmc_cnf(system: TransitionSystem, bound: int) -> CnfFormula:
    """CNF asking "is a bad state reachable within ``bound`` steps?"

    UNSAT means the safety property holds for all executions of length
    <= bound — the claim the checkers validate.
    """
    formula, state_vars = unroll(system, bound)
    bad_literals = []
    for step_vars in state_vars:
        bindings = dict(zip(system.bad.inputs, step_vars))
        encoded = tseitin_encode(system.bad, formula, bindings=bindings)
        bad_literals.append(encoded.var(system.bad.outputs[0]))
    formula.add_clause(bad_literals)
    return formula
