"""Bounded model checking substrate (the ``barrel``/``longmult`` family).

BMC (Biere et al., the paper's [2]) unrolls a transition system k steps
and asks whether a bad state is reachable within the bound. An UNSAT
answer — the safety property holds through k steps — is exactly the kind
of claim the paper's checker validates.
"""

from repro.bmc.transition import TransitionSystem
from repro.bmc.unroll import unroll, bmc_cnf
from repro.bmc.systems import counter_system, token_ring_system, lfsr_system

__all__ = [
    "TransitionSystem",
    "unroll",
    "bmc_cnf",
    "counter_system",
    "token_ring_system",
    "lfsr_system",
]
