"""repro — resolution-based validation of SAT solvers.

Reproduction of Zhang & Malik, "Validating SAT Solvers Using an
Independent Resolution-Based Checker" (DATE 2003). See README.md for the
tour; the headline API is re-exported here:

* :func:`solve_formula` / :class:`Solver` — the CDCL engine with trace
  generation.
* :class:`DepthFirstChecker` / :class:`BreadthFirstChecker` /
  :class:`HybridChecker` — the independent proof checkers.
* :func:`check_model` — linear-time SAT-side validation.
* :func:`extract_core` / :func:`iterate_core` — unsatisfiable cores.
"""

from repro.cnf import CnfFormula, parse_dimacs, parse_dimacs_file, write_dimacs
from repro.solver import (
    Solver,
    SolverConfig,
    solve_formula,
    solve_with_assumptions,
)
from repro.checker import (
    BreadthFirstChecker,
    DepthFirstChecker,
    HybridChecker,
    RupChecker,
    check_model,
)
from repro.core_extract import extract_core, iterate_core
from repro.trace import InMemoryTraceWriter, load_trace, open_trace_writer

__version__ = "1.0.0"

__all__ = [
    "CnfFormula",
    "parse_dimacs",
    "parse_dimacs_file",
    "write_dimacs",
    "Solver",
    "SolverConfig",
    "solve_formula",
    "solve_with_assumptions",
    "DepthFirstChecker",
    "BreadthFirstChecker",
    "HybridChecker",
    "RupChecker",
    "check_model",
    "extract_core",
    "iterate_core",
    "InMemoryTraceWriter",
    "load_trace",
    "open_trace_writer",
    "__version__",
]
