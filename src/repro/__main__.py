"""``python -m repro`` — the umbrella CLI without an installed entry point."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
