"""Command-line entry points: repro-solve, repro-check, repro-core, …

A minimal DIMACS-in, verdict-out interface so the solver/checker pipeline
can be driven from shell scripts the way zchaff and its checker were. The
``repro`` umbrella command exposes every tool as a subcommand
(``repro lint-trace``, ``repro check``, …); the ``repro-*`` entry points
remain for script compatibility.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.checker import (
    BreadthFirstChecker,
    DepthFirstChecker,
    HybridChecker,
    ParallelWindowedChecker,
    RupChecker,
    check_model,
)
from repro.cnf import parse_dimacs_file
from repro.core_extract import iterate_core
from repro.solver import Solver, SolverConfig
from repro.trace import load_trace, open_trace_writer


def solve_main(argv: list[str] | None = None) -> int:
    """repro-solve: solve a DIMACS file, optionally logging proofs."""
    parser = argparse.ArgumentParser(prog="repro-solve")
    parser.add_argument("cnf", help="DIMACS CNF file")
    parser.add_argument("--trace", help="write a resolution trace here")
    parser.add_argument("--trace-format", default="ascii", choices=["ascii", "binary"])
    parser.add_argument("--drup", help="write a DRUP/DRAT proof here")
    parser.add_argument(
        "--drup-format",
        default="text",
        choices=["text", "binary"],
        help="proof encoding for --drup: classic line-oriented DRUP text "
        "or the compact binary DRAT tag/varint encoding",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-conflicts", type=int, default=None)
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check the answer before reporting it (model check on SAT, "
        "depth-first proof check on UNSAT)",
    )
    args = parser.parse_args(argv)

    formula = parse_dimacs_file(args.cnf)
    validate_writer = None
    if args.validate and not args.trace:
        from repro.trace import InMemoryTraceWriter

        validate_writer = InMemoryTraceWriter()
    trace_writer = (
        open_trace_writer(args.trace, args.trace_format) if args.trace else validate_writer
    )
    if args.drup:
        from repro.proofs import open_proof_writer

        drup_writer = open_proof_writer(args.drup, args.drup_format)
    else:
        drup_writer = None
    config = SolverConfig(seed=args.seed, max_conflicts=args.max_conflicts)
    result = Solver(
        formula, config=config, trace_writer=trace_writer, drup_writer=drup_writer
    ).solve()

    if args.validate and result.is_unsat:
        if validate_writer is not None:
            trace = validate_writer.to_trace()
        else:
            trace = load_trace(args.trace)
        report = DepthFirstChecker(formula, trace).check()
        if not report.verified:
            print(f"c VALIDATION FAILED: {report.failure}", file=sys.stderr)
            return 2
        print("c proof validated (depth-first checker)")

    print(f"s {result.status}")
    if result.is_sat:
        assert result.model is not None
        literals = [v if value else -v for v, value in sorted(result.model.items())]
        print("v " + " ".join(map(str, literals)) + " 0")
        if not check_model(formula, result.model):
            print("c INTERNAL ERROR: model does not satisfy the formula", file=sys.stderr)
            return 2
    stats = result.stats
    print(
        f"c decisions={stats.decisions} conflicts={stats.conflicts} "
        f"propagations={stats.propagations} learned={stats.learned_clauses} "
        f"time={stats.solve_time:.3f}s"
    )
    return 0 if result.status != "UNKNOWN" else 1


_CHECKERS = {
    "df": "depth-first",
    "bf": "breadth-first",
    "hybrid": "hybrid",
    "rup": "rup",
    "drat": "drat",
    "streaming": "streaming",
}

#: Trace-replaying methods --proof-format trace is compatible with.
_TRACE_METHODS = ("df", "bf", "hybrid", "streaming")


def _resolve_proof_source(parser, method: str, proof_format: str, proof_path: str):
    """Resolve (--method, --proof-format) into the method actually run.

    ``--proof-format drup/drat`` selects the clausal checkers outright
    (overriding the default ``df``); ``trace`` pins the resolution-trace
    pipeline. ``auto`` sniffs the file: RTB1 magic or trace keywords mean
    a resolution trace, anything else a clausal proof — but an explicit
    trace method other than the default is never second-guessed.
    Returns ``(method, resolved_format)``.
    """
    if proof_format == "trace":
        if method in ("rup", "drat"):
            parser.error(f"--proof-format trace conflicts with --method {method}")
        return method, "trace"
    if proof_format in ("drup", "drat"):
        clausal = "rup" if proof_format == "drup" else "drat"
        if method not in ("df", clausal):  # df is the argparse default
            parser.error(
                f"--proof-format {proof_format} conflicts with --method {method}"
            )
        return clausal, proof_format
    # auto
    if method == "rup":
        return "rup", "drup"
    if method == "drat":
        return "drat", "drat"
    if method != "df":
        return method, "trace"  # an explicit trace method wins
    from repro.proofs import detect_source_format

    try:
        detected = detect_source_format(proof_path)
    except OSError as exc:
        parser.error(f"cannot read proof file: {exc}")
    if detected == "trace":
        return method, "trace"
    return "drat", "drat"


def check_main(argv: list[str] | None = None) -> int:
    """repro-check: validate an UNSAT claim from its trace/proof."""
    parser = argparse.ArgumentParser(prog="repro-check")
    parser.add_argument("cnf", help="DIMACS CNF file")
    parser.add_argument(
        "proof",
        help="trace file (df/bf/hybrid/streaming) or DRUP/DRAT proof "
        "(rup/drat; text or binary encoding, auto-detected)",
    )
    parser.add_argument("--method", default="df", choices=sorted(_CHECKERS))
    parser.add_argument(
        "--proof-format",
        default="auto",
        choices=["auto", "trace", "drup", "drat"],
        help="what the proof file is: a resolution trace, a DRUP proof "
        "(RUP checks only), or a DRAT proof (RUP with RAT fallback). "
        "auto sniffs the file and picks drat for clausal proofs",
    )
    parser.add_argument(
        "--backward",
        action="store_true",
        help="DRAT: two-pass backward (core-first) checking — verify only "
        "the lemmas the empty clause depends on, skipping dead ones "
        "(reported in the prune section of the report)",
    )
    parser.add_argument(
        "--mem-limit",
        "--memory-limit",
        dest="mem_limit",
        type=int,
        default=None,
        help="logical memory budget in units; exceeding it is a structured "
        "memory-out, not a crash",
    )
    parser.add_argument("--show-core", action="store_true", help="print the unsat core (df/hybrid)")
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="verify clause-ID windows across N worker processes "
        "(overrides --method; 1 runs the windowed checker in-process)",
    )
    parser.add_argument(
        "--window-size",
        type=int,
        default=None,
        metavar="W",
        help="learned records per window for --parallel "
        "(default: one window per worker)",
    )
    parser.add_argument(
        "--precheck",
        action="store_true",
        help="run the static trace linter first and fail fast on structural "
        "errors (df/bf/hybrid; a DRUP proof has no trace to lint)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="shorthand for --method streaming: the constant-memory "
        "shifting-window checker over an mmap'd trace; resident clauses "
        "bounded by --memory-window, overflow spills to disk",
    )
    parser.add_argument(
        "--memory-window",
        type=int,
        default=None,
        metavar="UNITS",
        help="streaming: resident-clause budget in logical units "
        "(default: --mem-limit if given, else unbounded); unlike "
        "--mem-limit, exceeding it spills instead of failing",
    )
    parser.add_argument(
        "--window-records",
        type=int,
        default=None,
        metavar="N",
        help="streaming: trace records decoded per window batch "
        "(default 4096)",
    )
    parser.add_argument(
        "--prune",
        action="store_true",
        help="core-first pruning: compute the static backward-reachable "
        "cone and skip statically dead lemmas during the check "
        "(df/bf/hybrid/parallel; the verdict is guaranteed unchanged)",
    )
    parser.add_argument(
        "--engine",
        default="kernel",
        choices=["kernel", "reference"],
        help="resolution engine: the marking-array kernel (default) or the "
        "frozenset reference oracle (df/bf/hybrid/parallel)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the check under cProfile and print the top 20 entries "
        "by cumulative time",
    )
    parser.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="output format; json emits the stable CheckReport schema "
        "(schema_version included) documented in docs/service.md",
    )
    service = parser.add_argument_group(
        "verdict cache (repro.service)",
        "content-addressed caching of verdicts keyed on SHA-256 of "
        "(formula, trace, options); see docs/service.md",
    )
    service.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="consult/populate the verdict cache at DIR; a warm hit "
        "answers without replaying resolution",
    )
    service.add_argument(
        "--refresh",
        action="store_true",
        help="with --cache: skip the lookup but overwrite the entry "
        "(force one honest recomputation)",
    )
    resilience = parser.add_argument_group(
        "resilience (repro.checker.supervisor)",
        "budgets, the degradation ladder and checkpoint/resume; any of "
        "these flags routes the check through the supervisor",
    )
    resilience.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget per checking attempt, in seconds "
        "(exceeding it is a structured timeout, not a hang)",
    )
    resilience.add_argument(
        "--policy",
        default=None,
        choices=["strict", "fallback"],
        help="strict: run the requested checker once; fallback: degrade "
        "df -> hybrid -> bf (parallel -> bf) on memory-out / timeout / "
        "worker-crash, recording the ladder in the report",
    )
    resilience.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="K",
        help="fresh-pool retry rounds for crashed or hung parallel "
        "windows before in-process re-assignment (default 1)",
    )
    resilience.add_argument(
        "--window-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-window watchdog for --parallel: a window past its "
        "budget has its pool killed and is retried",
    )
    resilience.add_argument(
        "--streaming-threshold",
        type=int,
        default=None,
        metavar="BYTES",
        help="fallback policy: trace files at least this large swap the "
        "constant-memory streaming checker in for bf as the ladder's "
        "last rung (default 64MiB; 0 forces it regardless of size)",
    )
    resilience.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="breadth-first: write resumable snapshots here",
    )
    resilience.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="breadth-first: snapshot every N learned clauses "
        "(requires --checkpoint)",
    )
    resilience.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="breadth-first: restart from the snapshot at PATH "
        "(implies --method bf; falls back to a full run if the "
        "snapshot does not match)",
    )
    args = parser.parse_args(argv)

    args.method, resolved_format = _resolve_proof_source(
        parser, args.method, args.proof_format, args.proof
    )
    if args.backward and args.method != "drat":
        parser.error(
            "--backward is the DRAT checker's core-first mode; it needs "
            "--proof-format drat (or --method drat)"
        )
    if args.precheck and args.method in ("rup", "drat"):
        parser.error(
            f"--precheck lints resolution traces; not applicable to "
            f"--method {args.method}"
        )
    if args.prune and args.method in ("rup", "drat") and args.parallel is None:
        hint = " (for DRAT, --backward is the clausal analogue)" if args.method == "drat" else ""
        parser.error(
            f"--prune needs a resolution trace to analyze; "
            f"not --method {args.method}{hint}"
        )
    if args.parallel is not None and args.parallel < 1:
        parser.error("--parallel needs at least one worker")
    if args.window_size is not None and args.parallel is None:
        parser.error("--window-size only applies with --parallel")
    if args.checkpoint_every is not None and not args.checkpoint:
        parser.error("--checkpoint-every needs --checkpoint PATH")
    if args.window_timeout is not None and args.parallel is None:
        parser.error("--window-timeout only applies with --parallel")
    if args.parallel is not None and args.method in ("rup", "drat"):
        parser.error(
            f"--parallel verifies resolution traces; not --method {args.method}"
        )
    if args.stream:
        if args.parallel is not None:
            parser.error("--stream and --parallel are different checkers; pick one")
        if args.method not in ("df", "streaming"):
            parser.error(f"--stream conflicts with --method {args.method}")
        args.method = "streaming"
    if (
        args.memory_window is not None or args.window_records is not None
    ) and args.method != "streaming":
        # The supervisor's fallback ladder can still land on the streaming
        # tier for big traces, so these stay meaningful with --policy.
        if args.policy != "fallback":
            parser.error(
                "--memory-window/--window-records apply to the streaming "
                "checker (--stream, or --policy fallback whose ladder can "
                "reach it)"
            )
    if args.method == "streaming" and (args.checkpoint or args.resume):
        parser.error("--checkpoint/--resume snapshot breadth-first checks only")
    if args.streaming_threshold is not None and args.policy != "fallback":
        parser.error(
            "--streaming-threshold shapes the fallback ladder; "
            "it needs --policy fallback"
        )
    supervised = any(
        value is not None
        for value in (
            args.timeout,
            args.policy,
            args.max_retries,
            args.window_timeout,
            args.checkpoint,
            args.resume,
        )
    )
    if supervised and args.resume and (args.method != "bf" or args.parallel is not None):
        if args.parallel is not None:
            parser.error("--resume restarts a breadth-first check; not --parallel")
        args.method = "bf"
    if args.refresh and not args.cache:
        parser.error("--refresh only applies with --cache DIR")
    if args.cache and (args.checkpoint or args.resume):
        parser.error("--cache does not combine with --checkpoint/--resume")
    if args.cache and args.streaming_threshold is not None:
        # Which rung produced a verdict is not part of the cache key, so a
        # nonstandard threshold must not populate shared cache lines.
        parser.error("--cache does not combine with --streaming-threshold")

    formula = parse_dimacs_file(args.cnf)
    use_kernel = args.engine == "kernel"
    if args.cache:
        from repro.service import ServiceClient, VerdictCache

        client = ServiceClient(cache=VerdictCache(args.cache), refresh=args.refresh)
        method = "parallel" if args.parallel is not None else args.method
        options = dict(
            method=method,
            policy=args.policy or "strict",
            timeout=args.timeout,
            memory_limit=args.mem_limit,
            use_kernel=use_kernel,
            precheck=args.precheck,
        )
        if args.prune:
            options["prune"] = True
        if args.method == "drat":
            # Both are cache-key material: a backward verdict must live on
            # a different cache line from a forward one.
            options["proof_format"] = resolved_format
            if args.backward:
                options["backward"] = True
        if args.parallel is not None:
            options.update(num_workers=args.parallel, window_size=args.window_size)
        if args.max_retries is not None:
            options["max_retries"] = args.max_retries
        if args.window_timeout is not None:
            options["window_timeout"] = args.window_timeout
        if args.memory_window is not None:
            options["memory_window"] = args.memory_window
        if args.window_records is not None:
            options["window_records"] = args.window_records

        class _ClientChecker:
            @staticmethod
            def check():
                return client.check(formula, args.proof, **options)

        checker = _ClientChecker()
    elif supervised:
        from repro.checker import CheckSupervisor

        method = "parallel" if args.parallel is not None else args.method
        checker = CheckSupervisor(
            formula,
            args.proof,
            method=method,
            policy=args.policy or "strict",
            timeout=args.timeout,
            memory_limit=args.mem_limit,
            max_retries=args.max_retries if args.max_retries is not None else 1,
            window_timeout=args.window_timeout,
            num_workers=args.parallel or 2,
            window_size=args.window_size,
            use_kernel=use_kernel,
            precheck=args.precheck,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every or 0,
            resume_from=args.resume,
            prune=args.prune,
            backward=args.backward,
            proof_format=resolved_format,
            memory_window=args.memory_window,
            window_records=args.window_records,
            **(
                {"streaming_threshold_bytes": args.streaming_threshold}
                if args.streaming_threshold is not None
                else {}
            ),
        )
    else:
        prune_plan = None
        if args.prune:
            from repro.analysis import compute_prune_plan

            prune_plan = compute_prune_plan(args.proof)
            if prune_plan is None:
                print(
                    "c prune: static analysis found no usable plan; "
                    "checking unpruned",
                    file=sys.stderr,
                )
        if args.parallel is not None:
            checker = ParallelWindowedChecker(
                formula,
                args.proof,
                num_workers=args.parallel,
                window_size=args.window_size,
                memory_limit=args.mem_limit,
                precheck=args.precheck,
                use_kernel=use_kernel,
                prune_plan=prune_plan,
            )
        elif args.method == "df":
            checker = DepthFirstChecker(
                formula,
                load_trace(args.proof),
                memory_limit=args.mem_limit,
                precheck=args.precheck,
                use_kernel=use_kernel,
                prune_plan=prune_plan,
            )
        elif args.method == "bf":
            checker = BreadthFirstChecker(
                formula,
                args.proof,
                memory_limit=args.mem_limit,
                precheck=args.precheck,
                use_kernel=use_kernel,
                prune_plan=prune_plan,
            )
        elif args.method == "hybrid":
            checker = HybridChecker(
                formula,
                args.proof,
                memory_limit=args.mem_limit,
                precheck=args.precheck,
                use_kernel=use_kernel,
                prune_plan=prune_plan,
            )
        elif args.method == "streaming":
            from repro.checker import StreamingWindowChecker

            checker = StreamingWindowChecker(
                formula,
                args.proof,
                memory_budget=(
                    args.memory_window
                    if args.memory_window is not None
                    else args.mem_limit
                ),
                window_records=args.window_records,
                precheck=args.precheck,
                use_kernel=use_kernel,
                prune_plan=prune_plan,
            )
        elif args.method == "drat":
            from repro.proofs import DratChecker

            checker = DratChecker(formula, args.proof, backward=args.backward)
        else:
            checker = RupChecker(formula, args.proof)

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        report = checker.check()
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(20)
    else:
        report = checker.check()
    if args.format == "json":
        payload = report.to_json()
        payload["from_cache"] = report.from_cache
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if report.verified else 1
    print(report.summary())
    if report.degradation and len(report.degradation) > 1:
        for number, attempt in enumerate(report.degradation, start=1):
            line = (
                f"c attempt {number}: {attempt['method']} -> "
                f"{attempt['outcome']} ({attempt['elapsed_s']}s)"
            )
            if attempt.get("detail"):
                line += f" [{attempt['detail']}]"
            print(line)
    if report.recovery:
        for event in report.recovery:
            parts = [f"c recovery: {event['event']} window {event['window']}"]
            if "round" in event:
                parts.append(f"round {event['round']}")
            if "reason" in event:
                parts.append(event["reason"])
            print(" | ".join(parts))
    if report.window_stats:
        for stat in report.window_stats:
            if "resident_units" in stat:
                # Streaming checker: one shifting-window position per entry.
                print(
                    f"c window {stat['window']}: {stat['records']} records, "
                    f"built {stat['built']} | resident {stat['resident_units']} "
                    f"units / {stat['resident_clauses']} clauses | "
                    f"spilled {stat['spilled']}"
                )
            else:
                print(
                    f"c window {stat['window']}: built {stat['clauses_built']} "
                    f"(+{stat['import_builds']} interface) | "
                    f"imports {stat['num_imports']} exports {stat['num_exports']} | "
                    f"peak {stat['peak_units']} units"
                )
    if report.verified and args.show_core and report.original_core is not None:
        print("c core clause ids: " + " ".join(map(str, sorted(report.original_core))))
    return 0 if report.verified else 1


def trace_stats_main(argv: list[str] | None = None) -> int:
    """repro-trace-stats: analytics for a trace file."""
    parser = argparse.ArgumentParser(prog="repro-trace-stats")
    parser.add_argument("trace", help="ASCII or binary trace file")
    args = parser.parse_args(argv)

    from repro.trace import analyze_trace

    print(analyze_trace(args.trace).summary())
    return 0


def trim_main(argv: list[str] | None = None) -> int:
    """repro-trim: drop trace records the proof does not need."""
    parser = argparse.ArgumentParser(prog="repro-trim")
    parser.add_argument("cnf", help="DIMACS CNF file")
    parser.add_argument("trace", help="trace file to trim")
    parser.add_argument("output", help="where to write the trimmed trace")
    parser.add_argument("--format", default="ascii", choices=["ascii", "binary"])
    parser.add_argument(
        "--verify",
        action="store_true",
        help="replay the proof with the depth-first checker before trimming "
        "(default: trust the static cone analysis)",
    )
    args = parser.parse_args(argv)

    from repro.trace import load_trace, write_trimmed

    formula = parse_dimacs_file(args.cnf)
    result = write_trimmed(
        formula, load_trace(args.trace), args.output, fmt=args.format,
        verify=args.verify,
    )
    print(
        f"kept {result.kept_learned} learned clauses, dropped "
        f"{result.dropped_learned} ({result.kept_fraction:.0%} kept); "
        f"deletions kept {result.kept_deletions}, dropped "
        f"{result.dropped_deletions}; "
        f"original core: {len(result.original_core)} clauses"
    )
    return 0


def lint_trace_main(argv: list[str] | None = None) -> int:
    """repro lint-trace: static structural analysis of a resolution trace.

    Streams the trace (ASCII or binary) through the rule registry without
    performing any resolution and without materializing the trace in
    memory. ``--format json`` emits the stable machine-readable report
    (schema_version included). Exit status 0 means no error-severity
    finding (add ``--strict`` to also fail on warnings); 1 means the trace
    is structurally broken and no checker could replay it.
    """
    parser = argparse.ArgumentParser(prog="repro-lint-trace")
    parser.add_argument("trace", help="ASCII or binary trace file")
    parser.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="diagnostic output format; json is the stable machine-readable "
        "schema (exit code stays 1 on error-severity findings)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule IDs to run (default: all), e.g. T001,T005",
    )
    parser.add_argument(
        "--no-reachability",
        action="store_true",
        help="skip the reachability rule (T006); the pass then retains no "
        "ID graph at all",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="also run the derivation-graph rules (T013-T017: dead lemmas, "
        "cycles, use-after-deletion, redundant re-derivations, suspicious "
        "core shape) and report DAG statistics",
    )
    parser.add_argument(
        "--strict", action="store_true", help="treat warnings as errors"
    )
    parser.add_argument(
        "--max-diagnostics",
        type=int,
        default=50,
        metavar="N",
        help="print at most N diagnostics in text mode (default 50)",
    )
    args = parser.parse_args(argv)

    from repro.analysis import analyze_trace

    rules = args.rules.split(",") if args.rules else None
    try:
        report = analyze_trace(
            args.trace,
            rules=rules,
            compute_reachability=not args.no_reachability,
            graph=args.graph,
        )
    except OSError as exc:
        parser.error(f"cannot read trace: {exc}")
    except ValueError as exc:  # unknown rule ID
        parser.error(str(exc))

    failed = bool(report.errors) or (args.strict and bool(report.warnings))
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        shown = report.diagnostics[: args.max_diagnostics]
        for diagnostic in shown:
            print(str(diagnostic))
        hidden = len(report.diagnostics) - len(shown)
        if hidden > 0:
            print(f"... {hidden} more diagnostic(s) suppressed (--max-diagnostics)")
        print(report.summary())
    return 1 if failed else 0


def analyze_main(argv: list[str] | None = None) -> int:
    """repro analyze: static derivation-graph analysis of a trace.

    Builds the derivation DAG in one streaming pass, computes the
    backward-reachable proof cone, and runs every lint rule including the
    graph tier (T013-T017). Exit status 0 means the trace is structurally
    sound (no error-severity finding); 1 otherwise.
    """
    parser = argparse.ArgumentParser(prog="repro-analyze")
    parser.add_argument("trace", help="ASCII or binary trace file")
    parser.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="output format; json emits the full analysis report "
        "(schema_version included)",
    )
    parser.add_argument(
        "--max-diagnostics",
        type=int,
        default=25,
        metavar="N",
        help="print at most N diagnostics in text mode (default 25)",
    )
    args = parser.parse_args(argv)

    from repro.analysis import analyze_trace

    try:
        report = analyze_trace(args.trace, graph=True)
    except OSError as exc:
        parser.error(f"cannot read trace: {exc}")

    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0 if not report.errors else 1

    graph = report.graph or {}
    print(
        f"records {graph.get('num_records', 0)} | "
        f"learned {graph.get('num_learned', 0)} | "
        f"deletions {graph.get('num_deletions', 0)} | "
        f"status {graph.get('status', 'UNKNOWN')}"
    )
    print(
        f"core: {graph.get('core_learned', 0)}/{graph.get('num_learned', 0)} "
        f"learned needed | dead {graph.get('dead_learned', 0)} "
        f"({100.0 * graph.get('dead_fraction', 0.0):.1f}%) | "
        f"original core {graph.get('core_original', 0)} clauses"
    )
    print(
        f"dag: depth {graph.get('depth', 0)} | width {graph.get('width', 0)} | "
        f"prunable={'yes' if graph.get('prunable') else 'no'}"
    )
    by_rule: dict[str, int] = {}
    for diagnostic in report.diagnostics:
        by_rule[diagnostic.rule_id] = by_rule.get(diagnostic.rule_id, 0) + 1
    if by_rule:
        print(
            "findings: "
            + ", ".join(f"{rule} x{count}" for rule, count in sorted(by_rule.items()))
        )
        for diagnostic in report.diagnostics[: args.max_diagnostics]:
            print(str(diagnostic))
        hidden = len(report.diagnostics) - args.max_diagnostics
        if hidden > 0:
            print(f"... {hidden} more diagnostic(s) suppressed (--max-diagnostics)")
    print(report.summary())
    return 0 if not report.errors else 1


def serve_main(argv: list[str] | None = None) -> int:
    """repro serve: run the checking service over a spool directory.

    Jobs arrive as files under ``<spool>/incoming`` (see ``repro submit``);
    verdicts land under ``<spool>/results`` and the journal survives any
    crash — restarting resumes exactly where the dead daemon stopped.
    """
    parser = argparse.ArgumentParser(prog="repro-serve")
    parser.add_argument("spool", help="spool directory (created if missing)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="concurrent checking workers (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="ingest what is waiting, drain the queue, exit")
    parser.add_argument("--poll-interval", type=float, default=0.2, metavar="S",
                        help="spool poll period in seconds (default 0.2)")
    parser.add_argument("--max-idle", type=float, default=None, metavar="S",
                        help="exit after S seconds with no work (default: run forever)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the verdict cache entirely")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute every verdict, overwriting cache entries")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="verdict cache location (default: <spool>/cache)")
    parser.add_argument("--fsync", action="store_true",
                        help="fsync the journal on every append (power-loss safety)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="split the job journal into N content-routed shards (default 1)")
    parser.add_argument("--own", default=None, metavar="LIST",
                        help="comma-separated shard indices this instance serves "
                             "(default: all shards)")
    parser.add_argument("--metrics-interval", type=float, default=2.0, metavar="S",
                        help="minimum seconds between metrics snapshots (default 2)")
    parser.add_argument("--exec-mode", choices=("process", "thread"), default="process",
                        help="worker execution layer (default: pre-forked processes)")
    parser.add_argument("--max-job-attempts", type=int, default=None, metavar="N",
                        help="crashes/timeouts before a job is quarantined to "
                             "jobs/dead (default 3)")
    parser.add_argument("--task-timeout", type=float, default=None, metavar="S",
                        help="kill a worker stuck on one task longer than S seconds")
    parser.add_argument("--heartbeat-interval", type=float, default=None, metavar="S",
                        help="seconds between liveness heartbeat writes (default 1)")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers needs at least one worker")
    if args.max_job_attempts is not None and args.max_job_attempts < 1:
        parser.error("--max-job-attempts needs at least one attempt")
    if args.shards < 1:
        parser.error("--shards needs at least one shard")
    owned = None
    if args.own is not None:
        try:
            owned = [int(piece) for piece in args.own.split(",") if piece.strip()]
        except ValueError:
            parser.error("--own wants comma-separated shard indices, e.g. 0,2")
        if any(not 0 <= shard < args.shards for shard in owned):
            parser.error(f"--own indices must be in [0, {args.shards})")

    from repro.service import CheckDaemon

    extra: dict = {}
    if args.max_job_attempts is not None:
        extra["max_job_attempts"] = args.max_job_attempts
    if args.task_timeout is not None:
        extra["task_timeout"] = args.task_timeout
    if args.heartbeat_interval is not None:
        extra["heartbeat_interval"] = args.heartbeat_interval
    daemon = CheckDaemon(
        args.spool,
        num_workers=args.workers,
        use_cache=not args.no_cache,
        refresh=args.refresh,
        cache_dir=args.cache_dir,
        poll_interval=args.poll_interval,
        fsync=args.fsync,
        num_shards=args.shards,
        owned_shards=owned,
        metrics_interval=args.metrics_interval,
        exec_mode=args.exec_mode,
        **extra,
    )
    if daemon.store.requeued_on_replay:
        print(f"c recovered {daemon.store.requeued_on_replay} orphaned job(s) from the journal")
    if daemon.store.parked_on_replay:
        print(f"c quarantined {daemon.store.parked_on_replay} poison job(s) to jobs/dead "
              f"(see: repro status --dead)")
    if args.once:
        code = daemon.run_once()
    else:
        print(f"c serving {args.spool} with {args.workers} worker(s); Ctrl-C to stop")
        code = daemon.run_forever(max_idle_s=args.max_idle)
    counts = daemon.store.counts()
    print(
        f"c drained: {counts['DONE']} done, {counts['FAILED']} failed, "
        f"{counts['PENDING']} pending"
    )
    return code


def submit_main(argv: list[str] | None = None) -> int:
    """repro submit: queue one check into a spool directory."""
    parser = argparse.ArgumentParser(prog="repro-submit")
    parser.add_argument("spool", help="spool directory (created if missing)")
    parser.add_argument("cnf", help="DIMACS CNF file")
    parser.add_argument(
        "proof",
        help="trace file (df/bf/hybrid/streaming) or DRUP/DRAT proof (rup/drat)",
    )
    parser.add_argument("--method", default="df", choices=sorted(_CHECKERS))
    parser.add_argument(
        "--proof-format",
        default="auto",
        choices=["auto", "trace", "drup", "drat"],
        help="what the proof file is (see repro check --help); auto sniffs",
    )
    parser.add_argument(
        "--backward",
        action="store_true",
        help="DRAT: two-pass backward (core-first) checking; keyed into "
        "the verdict-cache fingerprint, so forward and backward verdicts "
        "occupy distinct cache lines",
    )
    parser.add_argument("--policy", default=None, choices=["strict", "fallback"])
    parser.add_argument("--timeout", type=float, default=None, metavar="S")
    parser.add_argument("--mem-limit", type=int, default=None, metavar="UNITS")
    parser.add_argument("--precheck", action="store_true")
    parser.add_argument(
        "--prune",
        action="store_true",
        help="core-first pruning: skip statically dead lemmas (the cached "
        "verdict records that it was computed under a prune plan)",
    )
    parser.add_argument("--engine", default="kernel", choices=["kernel", "reference"])
    parser.add_argument(
        "--memory-window",
        type=int,
        default=None,
        metavar="UNITS",
        help="streaming: resident-clause budget (spills, never fails)",
    )
    parser.add_argument(
        "--window-records",
        type=int,
        default=None,
        metavar="N",
        help="streaming: records decoded per window batch",
    )
    args = parser.parse_args(argv)

    from repro.service import submit_job

    args.method, resolved_format = _resolve_proof_source(
        parser, args.method, args.proof_format, args.proof
    )
    if args.backward and args.method != "drat":
        parser.error(
            "--backward is the DRAT checker's core-first mode; it needs "
            "--proof-format drat (or --method drat)"
        )
    options: dict = {"method": args.method}
    if args.method == "drat":
        options["proof_format"] = resolved_format
        if args.backward:
            options["backward"] = True
    if args.policy is not None:
        options["policy"] = args.policy
    if args.timeout is not None:
        options["timeout"] = args.timeout
    if args.mem_limit is not None:
        options["memory_limit"] = args.mem_limit
    if args.memory_window is not None:
        options["memory_window"] = args.memory_window
    if args.window_records is not None:
        options["window_records"] = args.window_records
    if args.precheck:
        options["precheck"] = True
    if args.prune:
        options["prune"] = True
    if args.engine != "kernel":
        options["use_kernel"] = False
    try:
        path = submit_job(args.spool, args.cnf, args.proof, options)
    except FileNotFoundError as exc:
        parser.error(str(exc))
    print(f"submitted {path.name}")
    return 0


def status_main(argv: list[str] | None = None) -> int:
    """repro status: queue depth and per-state counts for a spool."""
    parser = argparse.ArgumentParser(prog="repro-status")
    parser.add_argument("spool", help="spool directory")
    parser.add_argument("--metrics", action="store_true",
                        help="also render the service metrics snapshot")
    parser.add_argument("--dead", action="store_true",
                        help="list quarantined (dead-lettered) jobs with attempt history")
    parser.add_argument("--health", action="store_true",
                        help="daemon liveness from heartbeat files")
    args = parser.parse_args(argv)

    from repro.service import read_queue_status, render_snapshot, spool_layout
    from repro.service.metrics import load_snapshot

    if args.dead or args.health:
        from repro.service.daemon import read_dead_letters, read_health

        if args.health:
            health = read_health(args.spool)
            daemons = health["daemons"]
            print(
                f"daemons: {health['alive']} alive, {health['stale']} stale, "
                f"{health['dead']} dead"
            )
            for entry in daemons:
                line = (
                    f"  {entry['daemon_id']} [{entry['status']}] "
                    f"pid={entry.get('pid', '?')}"
                )
                if entry.get("heartbeat_age_s") is not None:
                    line += f" heartbeat {entry['heartbeat_age_s']:.1f}s ago"
                if entry.get("shards"):
                    line += f" shards={','.join(map(str, entry['shards']))}"
                print(line)
            if not daemons:
                print("  (no heartbeat files)")
        if args.dead:
            dead = read_dead_letters(args.spool)
            print(f"dead-lettered jobs: {len(dead)}")
            for entry in dead:
                print(
                    f"  {entry['job_id']} attempts={entry.get('attempts', '?')} "
                    f"error={entry.get('error') or 'unknown'}"
                )
                for record in entry.get("attempt_history", []):
                    worker = record.get("worker", "?")
                    print(f"    attempt {record.get('attempt', '?')}: worker={worker}")
                print(f"    requeue with: repro requeue {args.spool} {entry['job_id']}")
        return 0

    status = read_queue_status(args.spool)
    counts = status.get("counts", {})
    line = (
        f"jobs {status['jobs']} | queue depth {status['queue_depth']} | "
        f"incoming {status['incoming']}"
    )
    if status.get("shards", 1) > 1:
        line += f" | shards {status['shards']}"
    print(line)
    if counts:
        print(" ".join(f"{state}={count}" for state, count in counts.items()))
    if status.get("torn_lines"):
        print(f"c journal: {status['torn_lines']} torn line(s) skipped")
    if args.metrics:
        metrics_path = spool_layout(args.spool).metrics_path
        if metrics_path.is_file():
            print(render_snapshot(load_snapshot(str(metrics_path))))
        else:
            print("(no metrics snapshot yet)")
    return 0


def requeue_main(argv: list[str] | None = None) -> int:
    """repro requeue: return a quarantined or stuck job to the queue."""
    parser = argparse.ArgumentParser(prog="repro-requeue")
    parser.add_argument("spool", help="spool directory")
    parser.add_argument("job_id", help="job to requeue (see: repro status --dead)")
    args = parser.parse_args(argv)

    from repro.service.daemon import offline_requeue, read_health, request_requeue

    health = read_health(args.spool)
    if health["alive"] or health["stale"]:
        # A daemon owns the journal: hand the request over as a control
        # file rather than racing it for the single-writer journal.
        path = request_requeue(args.spool, args.job_id)
        print(f"requeue of {args.job_id} requested via {path.name}; "
              f"the owning daemon applies it on its next ingest pass")
        return 0
    job = offline_requeue(args.spool, args.job_id)
    if job is None:
        print(f"no requeueable job {args.job_id!r} in any shard journal "
              f"(PENDING and DONE jobs cannot be requeued)", file=sys.stderr)
        return 1
    print(f"requeued {job.job_id} (attempts reset, state {job.state.value})")
    return 0


def results_main(argv: list[str] | None = None) -> int:
    """repro results: verdicts for terminal jobs in a spool."""
    parser = argparse.ArgumentParser(prog="repro-results")
    parser.add_argument("spool", help="spool directory")
    parser.add_argument("job_id", nargs="?", default=None,
                        help="show one job only (default: all terminal jobs)")
    parser.add_argument("--json", action="store_true",
                        help="print the full stored report payloads as JSON")
    args = parser.parse_args(argv)

    from repro.service import iter_results

    shown = 0
    payloads = []
    for job, payload in iter_results(args.spool, job_id=args.job_id):
        shown += 1
        if args.json:
            payloads.append(payload if payload is not None else {"job_id": job.job_id,
                                                                 "result": job.result})
            continue
        result = job.result or {}
        if job.state.value == "FAILED":
            print(f"{job.job_id} FAILED: {result.get('error', 'unknown error')}")
            continue
        verdict = "verified" if result.get("verified") else (
            f"REFUTED ({result.get('failure_kind', 'unverified')})"
        )
        cached = " [cached]" if result.get("from_cache") else ""
        print(
            f"{job.job_id} {verdict} | {result.get('method', '?')} | "
            f"{result.get('check_time_s', 0.0)}s{cached}"
        )
    if args.json:
        print(json.dumps(payloads, indent=2, sort_keys=True))
    if shown == 0 and args.job_id is not None:
        print(f"no terminal job {args.job_id!r}", file=sys.stderr)
        return 1
    return 0


_SUBCOMMANDS: dict[str, tuple[str, str]] = {
    "solve": ("solve_main", "solve a DIMACS file, optionally logging proofs"),
    "check": ("check_main", "validate an UNSAT claim from its trace/proof"),
    "serve": ("serve_main", "run the checking service over a spool directory"),
    "submit": ("submit_main", "queue one check into a spool directory"),
    "status": ("status_main", "queue depth and state counts for a spool"),
    "requeue": ("requeue_main", "return a quarantined or stuck job to the queue"),
    "results": ("results_main", "verdicts for terminal jobs in a spool"),
    "lint-trace": ("lint_trace_main", "static structural analysis of a trace"),
    "analyze": ("analyze_main", "derivation-graph analysis: proof cone, DAG stats"),
    "trace-stats": ("trace_stats_main", "analytics for a trace file"),
    "trim": ("trim_main", "drop trace records the proof does not need"),
    "core": ("core_main", "iterated unsat-core extraction"),
}


def main(argv: list[str] | None = None) -> int:
    """repro: umbrella entry point dispatching to the tool subcommands."""
    argv = list(sys.argv[1:] if argv is None else argv)
    usage_lines = ["usage: repro <command> [options]", "", "commands:"] + [
        f"  {name:<12} {help_text}" for name, (_, help_text) in _SUBCOMMANDS.items()
    ]
    if not argv or argv[0] in ("-h", "--help"):
        print("\n".join(usage_lines))
        return 0 if argv else 2
    command = argv[0]
    entry = _SUBCOMMANDS.get(command)
    if entry is None:
        print("\n".join([f"repro: unknown command {command!r}", ""] + usage_lines), file=sys.stderr)
        return 2
    return globals()[entry[0]](argv[1:])


def core_main(argv: list[str] | None = None) -> int:
    """repro-core: iterated unsat-core extraction (Table 3 for one file)."""
    parser = argparse.ArgumentParser(prog="repro-core")
    parser.add_argument("cnf", help="DIMACS CNF file (must be UNSAT)")
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--minimal",
        action="store_true",
        help="continue with deletion-based minimization to a true MUS",
    )
    args = parser.parse_args(argv)

    formula = parse_dimacs_file(args.cnf)
    config = SolverConfig(seed=args.seed)
    outcome = iterate_core(formula, max_iterations=args.iterations, config=config)
    for index, (clauses, variables) in enumerate(outcome.iterations):
        label = "input" if index == 0 else f"iter {index}"
        print(f"{label}: {clauses} clauses, {variables} variables")
    if outcome.reached_fixed_point:
        print(f"fixed point after {outcome.num_iterations} iterations")
    core_ids = outcome.final_core_ids
    if args.minimal:
        from repro.core_extract import minimal_core

        core_ids = minimal_core(formula, config=config, start_from=core_ids)
        print(f"minimal core (MUS): {len(core_ids)} clauses")
    print("core clause ids: " + " ".join(map(str, sorted(core_ids))))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
