"""Clausal proof formats (DRUP/DRAT): parsing, writing, RAT checking.

The front end for industry proof formats, closing the ROADMAP's "ingest
DRUP/DRAT" gap: streaming parsers for the text and binary encodings
(:mod:`repro.proofs.parser`), proof writers the solver's DRUP path plugs
into, and :class:`DratChecker` — RUP with a full RAT fallback, forward or
backward/core-first (:mod:`repro.proofs.drat`).
"""

from repro.proofs.parser import (
    BinaryProofWriter,
    MappedProof,
    ProofDocument,
    TextProofWriter,
    decode_proof_batch,
    detect_proof_encoding,
    detect_source_format,
    iter_binary_proof,
    iter_proof_steps,
    iter_text_proof,
    open_proof_writer,
    read_proof,
)
from repro.proofs.drat import DratChecker

__all__ = [
    "BinaryProofWriter",
    "DratChecker",
    "MappedProof",
    "ProofDocument",
    "TextProofWriter",
    "decode_proof_batch",
    "detect_proof_encoding",
    "detect_source_format",
    "iter_binary_proof",
    "iter_proof_steps",
    "iter_text_proof",
    "open_proof_writer",
    "read_proof",
]
