"""The DRAT checker: RUP with a RAT fallback, forward or backward.

DRAT extends DRUP by accepting clauses that are *resolution asymmetric
tautologies* (Cruz-Filipe et al., "Efficient Certified RAT Verification"):
clause C is RAT on its first literal p iff for every clause D in the
current database containing -p, the resolvent (C \\ {p}) ∪ (D \\ {-p}) is
a tautology or RUP. Every RUP clause is trivially RAT, so the checker
tries the cheap RUP check first and only then enumerates resolution
partners through the propagator's literal-occurrence index — the same
strategy (and deletion semantics) as drat-trim.

Two modes:

* **Forward** streams the proof once, verifying every added clause
  against the database built so far. Constant memory over binary proofs
  (mapped batch decoding, nothing materialized).
* **Backward** (``--backward``) is core-first checking: a first pass
  builds the final database without verifying anything, the empty
  clause's conflict is then replayed with dependency tracking, and a
  second pass walks the proof in reverse — un-adding / re-deleting each
  step — verifying only lemmas marked as antecedents of something already
  verified. Dead lemmas (typically a large fraction of a real solver's
  output) are never checked at all; the skip statistics land in
  ``CheckReport.prune``.

Backward soundness: a verified lemma's RUP/RAT check at position i runs
against a database that is a *superset* of what the pruned proof (marked
lemmas only) would provide — extra clauses only add resolution partners,
each of which is itself checked — while every clause the conflict cones
actually use gets marked and therefore verified.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, Sequence

from repro import faults
from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.memory import Deadline
from repro.checker.report import CheckReport
from repro.checker.store import ClauseStore
from repro.checker.unitprop import UnitPropagator
from repro.cnf import CnfFormula
from repro.proofs.parser import iter_proof_steps, read_proof

FP_STEP = faults.register_fault_point(
    "proofs.check.step",
    doc="before checking one proof step (key = add|delete)",
)
FP_FINALIZE = faults.register_fault_point(
    "proofs.check.finalize",
    doc="before the DRAT verdict is finalized (key = forward|backward)",
)


def _clause_key(literals: Iterable[int]) -> tuple[int, ...]:
    return tuple(sorted(set(literals)))


class DratChecker:
    """Validates a DRAT (or DRUP) proof against the original formula."""

    method = "drat"

    def __init__(
        self,
        formula: CnfFormula,
        proof_path: str | Path,
        backward: bool = False,
        deadline: Deadline | None = None,
        encoding: str = "auto",
    ):
        self.formula = formula
        self.proof_path = proof_path
        self.backward = backward
        self._deadline = deadline
        self._encoding = encoding
        self._engine: UnitPropagator | None = None
        # Counters surfaced through CheckReport.proof
        self._adds_seen = 0
        self._deletions = 0
        self._checked = 0
        self._rup_steps = 0
        self._rat_steps = 0
        self._rat_resolvents = 0
        self._propagations = 0
        self._implicit_empty = False
        self._prune_info: dict | None = None

    # -- public API -----------------------------------------------------------

    def check(self) -> CheckReport:
        """Run the check; never raises — failures land in the report."""
        start = time.perf_counter()
        failure: CheckFailure | None = None
        verified = False
        try:
            if self._deadline is not None:
                self._deadline.check()
            verified = self._run_backward() if self.backward else self._run_forward()
        except CheckFailure as exc:
            failure = exc
        return CheckReport(
            method=self.method,
            verified=verified,
            failure=failure,
            clauses_built=self._checked,
            total_learned=self._adds_seen,
            check_time=time.perf_counter() - start,
            resolutions=self._propagations,
            prune=self._prune_info,
            proof={
                "format": "drat",
                "mode": "backward" if self.backward else "forward",
                "adds": self._adds_seen,
                "deletions": self._deletions,
                "checked": self._checked,
                "rup_lemmas": self._rup_steps,
                "rat_lemmas": self._rat_steps,
                "rat_resolvents": self._rat_resolvents,
                "implicit_empty": self._implicit_empty,
            },
        )

    # -- shared pieces --------------------------------------------------------

    def _setup(self) -> tuple[UnitPropagator, dict[tuple[int, ...], list[int]]]:
        engine = UnitPropagator(self.formula.num_vars, store=ClauseStore())
        index_of: dict[tuple[int, ...], list[int]] = {}
        for clause in self.formula:
            index = engine.add_clause(clause.literals)
            index_of.setdefault(_clause_key(clause.literals), []).append(index)
        self._engine = engine
        return engine, index_of

    def _tick(self, ticks: int) -> None:
        if self._deadline is not None and not ticks & 0x3F:
            self._deadline.check()

    def _verify_lemma(self, literals: Sequence[int], step: int) -> None:
        """RUP, then full RAT on the pivot (first literal). Raises on failure."""
        engine = self._engine
        assert engine is not None
        unique = list(dict.fromkeys(literals))
        self._propagations += 1
        if engine.propagate([-lit for lit in unique]):
            self._rup_steps += 1
            return
        if not literals:
            raise CheckFailure(
                FailureKind.NOT_RAT,
                "the empty clause is not RUP: the database does not "
                "propagate to a conflict",
                step=step,
            )
        pivot = literals[0]
        c_set = set(unique)
        negated_rest = [-lit for lit in unique if lit != pivot]
        resolvents = 0
        for index in list(engine.occurrences(-pivot)):
            clause = engine.clauses[index]
            if clause is None:
                continue
            # Tautological resolvent: some m in D \ {-p} clashes with C.
            if any(m != -pivot and -m in c_set for m in clause):
                continue
            resolvents += 1
            self._propagations += 1
            assumptions = negated_rest + [-m for m in clause if m != -pivot]
            if not engine.propagate(assumptions):
                raise CheckFailure(
                    FailureKind.NOT_RAT,
                    "clause is neither RUP nor RAT on its first literal: "
                    "a resolvent is not RUP",
                    step=step,
                    literals=list(literals),
                    pivot=pivot,
                    resolvent_partner=list(clause),
                )
        self._rat_steps += 1
        self._rat_resolvents += resolvents

    def _apply_delete(
        self,
        engine: UnitPropagator,
        index_of: dict[tuple[int, ...], list[int]],
        literals: Sequence[int],
    ) -> int | None:
        """Drat-trim deletion semantics: unknown deletions are tolerated."""
        self._deletions += 1
        indices = index_of.get(_clause_key(literals))
        if not indices:
            return None
        index = indices.pop()
        engine.remove_clause(index)
        return index

    # -- forward mode ---------------------------------------------------------

    def _run_forward(self) -> bool:
        engine, index_of = self._setup()
        ticks = 0
        for kind, literals in iter_proof_steps(self.proof_path, self._encoding):
            faults.fault_point(FP_STEP, key=kind)
            ticks += 1
            self._tick(ticks)
            if kind == "delete":
                self._apply_delete(engine, index_of, literals)
                continue
            if literals:
                self._adds_seen += 1
                self._checked += 1
            # The empty clause is verified too, but only lemma checks count
            # toward clauses_built (so built/total stays a percentage).
            self._verify_lemma(literals, step=self._checked)
            if not literals:
                faults.fault_point(FP_FINALIZE, key="forward")
                return True
            index = engine.add_clause(literals)
            index_of.setdefault(_clause_key(literals), []).append(index)
        # No explicit empty clause: accept iff the database already
        # propagates to a top-level conflict (drat-trim does the same).
        self._propagations += 1
        if engine.propagate([]):
            self._implicit_empty = True
            faults.fault_point(FP_FINALIZE, key="forward")
            return True
        raise CheckFailure(
            FailureKind.NOT_EMPTY,
            "DRAT proof ended without deriving the empty clause",
            steps=self._checked,
        )

    # -- backward mode --------------------------------------------------------

    def _run_backward(self) -> bool:
        doc = read_proof(self.proof_path, self._encoding)
        engine, index_of = self._setup()
        steps = doc.steps
        self._adds_seen = doc.num_adds

        # Pass 1: build the final database, verifying nothing. Track, per
        # engine index, which add step produced it (formula clauses have
        # no entry) and, per add step, its clause's current index.
        origin: dict[int, int] = {}
        current: dict[int, int | None] = {}
        removed_at: dict[int, int] = {}  # delete-step ordinal -> engine index
        stop = len(steps)
        ticks = 0
        for ordinal, (kind, literals) in enumerate(steps):
            ticks += 1
            self._tick(ticks)
            if kind == "delete":
                index = self._apply_delete(engine, index_of, literals)
                if index is not None:
                    removed_at[ordinal] = index
                    source = origin.get(index)
                    if source is not None:
                        current[source] = None
                continue
            if not literals:
                stop = ordinal
                break
            index = engine.add_clause(literals)
            origin[index] = ordinal
            current[ordinal] = index
            index_of.setdefault(_clause_key(literals), []).append(index)

        # The empty clause (explicit or implicit) must be RUP, with its
        # conflict cone recorded: those clauses seed the marking.
        self._implicit_empty = stop == len(steps)
        self._propagations += 1
        conflict, used = engine.propagate_tracked([])
        if not conflict:
            raise CheckFailure(
                FailureKind.NOT_EMPTY,
                "the empty clause is not RUP: the database does not "
                "propagate to a conflict"
                if not self._implicit_empty
                else "DRAT proof ended without deriving the empty clause",
                steps=stop,
            )
        marked: set[int] = set()
        self._mark(used, origin, marked)

        # Pass 2: walk the proof in reverse, undoing each step; verify
        # only marked lemmas, marking their conflict cones in turn.
        skipped = 0
        for ordinal in range(stop - 1, -1, -1):
            kind, literals = steps[ordinal]
            faults.fault_point(FP_STEP, key=kind)
            ticks += 1
            self._tick(ticks)
            if kind == "delete":
                index = removed_at.get(ordinal)
                if index is None:
                    continue
                # Undo the deletion; the clause instance keeps the
                # identity of the add step that created it.
                new_index = engine.add_clause(literals)
                source = origin.pop(index, None)
                if source is not None:
                    origin[new_index] = source
                    current[source] = new_index
                continue
            index = current.get(ordinal)
            if index is not None:
                engine.remove_clause(index)
                origin.pop(index, None)
            if ordinal not in marked:
                skipped += 1
                continue
            self._checked += 1
            self._verify_lemma_tracked(literals, origin, marked, step=ordinal)

        total = doc.num_adds
        self._prune_info = {
            "mode": "backward",
            "total_adds": total,
            "verified_adds": self._checked,
            "skipped": total - self._checked,
            "dead_fraction": (total - self._checked) / total if total else 0.0,
        }
        faults.fault_point(FP_FINALIZE, key="backward")
        return True

    def _mark(
        self, used: Iterable[int], origin: dict[int, int], marked: set[int]
    ) -> None:
        for index in used:
            source = origin.get(index)
            if source is not None:
                marked.add(source)

    def _verify_lemma_tracked(
        self,
        literals: Sequence[int],
        origin: dict[int, int],
        marked: set[int],
        step: int,
    ) -> None:
        """The backward-pass twin of :meth:`_verify_lemma`: every conflict
        is replayed with dependency tracking so antecedent lemmas join the
        marked core."""
        engine = self._engine
        assert engine is not None
        unique = list(dict.fromkeys(literals))
        self._propagations += 1
        conflict, used = engine.propagate_tracked([-lit for lit in unique])
        if conflict:
            self._rup_steps += 1
            self._mark(used, origin, marked)
            return
        pivot = literals[0]
        c_set = set(unique)
        negated_rest = [-lit for lit in unique if lit != pivot]
        resolvents = 0
        for index in list(engine.occurrences(-pivot)):
            clause = engine.clauses[index]
            if clause is None:
                continue
            if any(m != -pivot and -m in c_set for m in clause):
                continue
            resolvents += 1
            self._propagations += 1
            assumptions = negated_rest + [-m for m in clause if m != -pivot]
            conflict, used = engine.propagate_tracked(assumptions)
            if not conflict:
                raise CheckFailure(
                    FailureKind.NOT_RAT,
                    "clause is neither RUP nor RAT on its first literal: "
                    "a resolvent is not RUP",
                    step=step,
                    literals=list(literals),
                    pivot=pivot,
                    resolvent_partner=list(clause),
                )
            self._mark(used, origin, marked)
        self._rat_steps += 1
        self._rat_resolvents += resolvents
