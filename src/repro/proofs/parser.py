"""Streaming parsers and writers for clausal proofs (DRUP/DRAT).

The paper's resolution traces are the direct ancestor of today's clausal
proof formats; this module is the repo's front door for the industry side
of that lineage. It understands both encodings every modern solver emits:

Text (one step per line, drat-trim compatible)::

    l1 l2 ... 0        add a clause
    d l1 l2 ... 0      delete a clause
    0                  add the empty clause (end of proof)
    c ...              comment

Binary DRAT (the standard ``a``/``d``-tagged variable-byte encoding)::

    step    := tag literal* 0x00
    tag     := 0x61 ('a', add) | 0x64 ('d', delete)
    literal := LEB128 varint of (2*l if l > 0 else -2*l + 1)

Binary proofs are decoded zero-copy off an ``mmap`` of the file in
batches, the same machinery :mod:`repro.trace.binary_format` uses for
RTB1 traces, so arbitrarily large proofs never fully reside in memory.
Malformations (truncated varints, missing terminators, bogus tags,
non-integer tokens) raise :class:`~repro.checker.errors.CheckFailure`
with ``FailureKind.MALFORMED_PROOF`` — a verdict about the proof
artifact, distinct from a failed RUP/RAT check.
"""

from __future__ import annotations

import mmap
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, Sequence

from repro import faults
from repro.checker.errors import CheckFailure, FailureKind
from repro.trace.binary_format import (
    MAGIC as TRACE_MAGIC,
    _varint_at,
    encode_varint,
)
from repro.trace.records import TraceError

FP_PARSE = faults.register_fault_point(
    "proofs.parse",
    doc="at the start of one proof parse pass (key = text|binary)",
)

_TAG_ADD = 0x61  # ord("a")
_TAG_DELETE = 0x64  # ord("d")

#: Steps decoded per zero-copy batch off the mapped binary proof.
DEFAULT_BATCH_STEPS = 4096

#: Bytes sniffed from the head of a file for format/encoding detection.
_SNIFF_BYTES = 4096

#: One proof step: ("add" | "delete", literals).
ProofStep = tuple[str, list[int]]


# -- encoding detection --------------------------------------------------------


def _sniff(path: str | Path) -> bytes:
    with open(path, "rb") as handle:
        return handle.read(_SNIFF_BYTES)


def detect_proof_encoding(path: str | Path) -> str:
    """``"text"`` or ``"binary"``, from the file head (drat-trim style).

    A binary proof's first byte is an ``a``/``d`` tag; text proofs start
    with a digit, ``-``, a ``c`` comment, or ``d`` followed by a space.
    The 0x00 step terminator never occurs in text, so a NUL anywhere in
    the sniffed head also means binary. Empty proofs count as text.
    """
    head = _sniff(path)
    if not head:
        return "text"
    if head[0] == _TAG_ADD:
        return "binary"
    if head[0] == _TAG_DELETE and (len(head) == 1 or head[1] not in b" \t"):
        return "binary"
    if 0 in head:
        return "binary"
    return "text"


def detect_source_format(path: str | Path) -> str:
    """``"trace"`` or ``"proof"``: what kind of artifact is this file?

    Resolution traces are unmistakable: binary traces open with the RTB1
    magic, ASCII traces with a record keyword (``T``, ``CL``, ``D``,
    ``V``, ``CONF``, ``R``) or a ``#`` comment. Everything else — digits,
    ``c`` comments, ``d`` deletions, binary DRAT tags — is a clausal
    proof. This is what ``repro check --proof-format auto`` runs on.
    """
    head = _sniff(path)
    if head.startswith(TRACE_MAGIC):
        return "trace"
    if detect_proof_encoding(path) == "binary":
        return "proof"
    for raw in head.decode("ascii", errors="replace").splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            return "trace"
        token = line.split()[0]
        return "trace" if token in ("T", "CL", "D", "V", "CONF", "R") else "proof"
    return "proof"


# -- text decoding -------------------------------------------------------------


def iter_text_proof(path: str | Path) -> Iterator[ProofStep]:
    """Yield ("add" | "delete", literals) steps from a text DRUP/DRAT file."""
    with open(path, "r", encoding="ascii") as handle:
        try:
            for lineno, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line or line.startswith("c"):
                    continue
                kind = "add"
                if line.startswith("d ") or line == "d":
                    kind = "delete"
                    line = line[2:]
                tokens = line.split()
                if not tokens or tokens[-1] != "0":
                    raise CheckFailure(
                        FailureKind.MALFORMED_PROOF,
                        "proof line does not end with the terminating 0",
                        line_number=lineno,
                    )
                try:
                    literals = [int(tok) for tok in tokens[:-1]]
                except ValueError:
                    raise CheckFailure(
                        FailureKind.MALFORMED_PROOF,
                        "proof line contains a non-integer token",
                        line_number=lineno,
                    ) from None
                if 0 in literals:
                    raise CheckFailure(
                        FailureKind.MALFORMED_PROOF,
                        "literal 0 inside a clause (stray terminator)",
                        line_number=lineno,
                    )
                yield kind, literals
        except UnicodeDecodeError as exc:
            raise CheckFailure(
                FailureKind.MALFORMED_PROOF,
                f"proof is not ASCII text ({exc.reason}); "
                "binary proofs must be parsed with encoding='binary'",
                path=str(path),
            ) from None


# -- binary decoding (mmap zero-copy) ------------------------------------------


class MappedProof:
    """A zero-copy ``mmap`` view of a binary DRAT file.

    Same shape as :class:`~repro.trace.binary_format.MappedBinaryTrace`,
    minus the magic: binary DRAT has no header, steps start at offset 0.
    A zero-length file maps to an empty view (the empty proof).
    """

    __slots__ = ("path", "_file", "_map", "view", "size")

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file: IO[bytes] | None = open(self.path, "rb")
        self._map: mmap.mmap | None = None
        try:
            self._map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            # Zero-length files cannot be mapped; an empty proof is valid
            # input (it just fails NOT_EMPTY later).
            self.view: memoryview | None = memoryview(b"")
        except OSError as exc:
            self._file.close()
            self._file = None
            raise CheckFailure(
                FailureKind.MALFORMED_PROOF,
                f"cannot map binary proof ({exc})",
                path=str(path),
            ) from None
        else:
            self.view = memoryview(self._map)
        self.size = len(self.view)

    def close(self) -> None:
        if self.view is not None:
            self.view.release()
            self.view = None
        if self._map is not None:
            self._map.close()
            self._map = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "MappedProof":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def decode_proof_batch(
    view: memoryview, pos: int, max_steps: int
) -> tuple[list[ProofStep], int]:
    """Decode up to ``max_steps`` steps from a mapped binary proof at ``pos``.

    Returns ``(steps, new_pos)``; empty ``steps`` means end of proof. The
    buffer is the whole mapping, so running off the end of the view is a
    truncated proof, not a torn chunk to rewind.
    """
    steps: list[ProofStep] = []
    append = steps.append
    end = len(view)
    try:
        while len(steps) < max_steps and pos < end:
            step_start = pos
            tag = view[pos]
            pos += 1
            if tag == _TAG_ADD:
                kind = "add"
            elif tag == _TAG_DELETE:
                kind = "delete"
            else:
                raise CheckFailure(
                    FailureKind.MALFORMED_PROOF,
                    f"bad step tag 0x{tag:02x} (want 'a' or 'd')",
                    offset=step_start,
                )
            literals: list[int] = []
            while True:
                if pos >= end:
                    raise CheckFailure(
                        FailureKind.MALFORMED_PROOF,
                        "proof ends inside a step (missing terminating 0)",
                        offset=step_start,
                    )
                value, pos = _varint_at(view, pos)
                if value == 0:
                    break
                literals.append(-(value >> 1) if value & 1 else value >> 1)
            append((kind, literals))
    except IndexError:
        raise CheckFailure(
            FailureKind.MALFORMED_PROOF,
            "truncated varint at end of proof",
            offset=pos,
        ) from None
    except TraceError as exc:
        raise CheckFailure(
            FailureKind.MALFORMED_PROOF, str(exc), offset=pos
        ) from None
    return steps, pos


def iter_binary_proof(
    path: str | Path, batch_steps: int = DEFAULT_BATCH_STEPS
) -> Iterator[ProofStep]:
    """Stream steps from a binary DRAT file via mapped batch decoding."""
    with MappedProof(path) as mapped:
        view = mapped.view
        assert view is not None
        pos = 0
        while True:
            steps, pos = decode_proof_batch(view, pos, batch_steps)
            if not steps:
                return
            yield from steps


# -- the unified entry points --------------------------------------------------


def iter_proof_steps(
    path: str | Path, encoding: str = "auto"
) -> Iterator[ProofStep]:
    """Stream ("add" | "delete", literals) steps from either encoding."""
    if encoding == "auto":
        encoding = detect_proof_encoding(path)
    faults.fault_point(FP_PARSE, key=encoding)
    if encoding == "binary":
        yield from iter_binary_proof(path)
    elif encoding == "text":
        yield from iter_text_proof(path)
    else:
        raise ValueError(f"unknown proof encoding {encoding!r}")


@dataclass
class ProofDocument:
    """A fully parsed proof plus the counts one streaming pass yields.

    ``num_adds`` counts non-empty add steps — the figure core-first
    pruning aligns against — folded into the same pass that materializes
    the steps, so callers never re-read the file just to count.
    """

    steps: list[ProofStep]
    encoding: str
    num_adds: int
    num_deletes: int
    has_empty: bool

    def __iter__(self) -> Iterator[ProofStep]:
        return iter(self.steps)


def read_proof(path: str | Path, encoding: str = "auto") -> ProofDocument:
    """Materialize a proof in one pass, counting as it goes."""
    if encoding == "auto":
        encoding = detect_proof_encoding(path)
    steps: list[ProofStep] = []
    num_adds = 0
    num_deletes = 0
    has_empty = False
    for step in iter_proof_steps(path, encoding):
        steps.append(step)
        kind, literals = step
        if kind == "delete":
            num_deletes += 1
        elif literals:
            num_adds += 1
        else:
            has_empty = True
    return ProofDocument(
        steps=steps,
        encoding=encoding,
        num_adds=num_adds,
        num_deletes=num_deletes,
        has_empty=has_empty,
    )


# -- writers -------------------------------------------------------------------


class TextProofWriter:
    """Writes DRUP/DRAT steps in the one-clause-per-line text format."""

    encoding = "text"

    def __init__(self, path: str | Path):
        self._handle: IO[str] = open(path, "w", encoding="ascii")
        self._closed = False

    def _render(self, literals: Sequence[int]) -> str:
        if 0 in literals:
            raise ValueError("literal 0 cannot appear inside a clause")
        return " ".join(map(str, literals))

    def add_clause(self, literals: Sequence[int]) -> None:
        self._handle.write(self._render(literals) + " 0\n")

    def delete_clause(self, literals: Sequence[int]) -> None:
        self._handle.write("d " + self._render(literals) + " 0\n")

    def finish_unsat(self) -> None:
        self._handle.write("0\n")

    def close(self) -> None:
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "TextProofWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class BinaryProofWriter:
    """Writes the standard binary DRAT encoding (see module docstring)."""

    encoding = "binary"

    def __init__(self, path: str | Path):
        self._handle: IO[bytes] = open(path, "wb")
        self._closed = False

    def _step(self, tag: int, literals: Sequence[int]) -> None:
        out = bytearray((tag,))
        for lit in literals:
            if lit == 0:
                raise ValueError("literal 0 cannot appear inside a clause")
            out += encode_varint((lit << 1) if lit > 0 else ((-lit) << 1) | 1)
        out.append(0)
        self._handle.write(bytes(out))

    def add_clause(self, literals: Sequence[int]) -> None:
        self._step(_TAG_ADD, literals)

    def delete_clause(self, literals: Sequence[int]) -> None:
        self._step(_TAG_DELETE, literals)

    def finish_unsat(self) -> None:
        self._step(_TAG_ADD, ())

    def close(self) -> None:
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "BinaryProofWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_proof_writer(
    path: str | Path, fmt: str = "text"
) -> TextProofWriter | BinaryProofWriter:
    """A proof writer for ``fmt`` ("text" or "binary")."""
    if fmt == "text":
        return TextProofWriter(path)
    if fmt == "binary":
        return BinaryProofWriter(path)
    raise ValueError(f"unknown proof format {fmt!r} (want 'text' or 'binary')")
