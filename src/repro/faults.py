"""The unified fault-injection plane: deterministic chaos for drills.

The paper's thesis is that a checker must stay trustworthy when the
system around it misbehaves. This module is how we *prove* the service
layer does: every durability- and liveness-critical path declares a
named **fault point** (``jobs.journal.append``, ``cache.segment.rename``,
``pool.task.start``, …), and a **fault plan** — parsed once from the
``REPRO_FAULT_PLAN`` environment variable or installed programmatically —
decides which points misbehave, when, and how. With no plan installed a
fault point is two dict lookups and a ``None`` check, cheap enough to
leave compiled into production paths (``bench_chaos.py`` gates the
fault-free overhead at under 2%).

Plan syntax — entries separated by ``;``, ``key=value`` fields by ``,``::

    REPRO_FAULT_PLAN="point=jobs.journal.append,kind=torn,after=2"
    REPRO_FAULT_PLAN="point=pool.task.start,kind=kill;point=cache.segment.rename,kind=enospc"

Fields:

``point``   (required) the fault point name; ``*`` suffix matches a prefix.
``kind``    (required) what happens when the entry fires:

            * ``kill``   — SIGKILL the current process (a crash a
              ``finally`` cannot observe; what real OOM kills look like);
            * ``raise``  — raise :class:`FaultInjected` (an in-process
              crash that *does* unwind);
            * ``hang``   — sleep ``arg`` seconds (default 3600): a stuck
              syscall / livelocked worker;
            * ``torn``   — at a write point, emit only a prefix of the
              record then die (``then=kill`` default, ``then=raise`` for
              in-process tests): the classic torn-write crash;
            * ``enospc`` — raise ``OSError(ENOSPC)``: disk full;
            * ``slow``   — sleep ``arg`` seconds (default 0.05) and then
              proceed normally: degraded IO, not failure.

``after``   fire on the Nth matching hit of this point (default 1;
            counted per process).
``repeat``  ``1`` keeps firing on every hit from ``after`` on
            (default: one-shot).
``key``     only hits carrying this key count (e.g. a window index or a
            journal event name), so a plan can target "the append of the
            DONE record" rather than "some append".
``arg``     numeric argument: seconds for ``hang``/``slow``; for
            ``torn`` the fraction (0..1) or byte count of the record to
            let through (default: half).
``then``    for ``torn``: ``kill`` (default) or ``raise``.
``token``   path to a token file; the entry fires only if it wins
            ``os.unlink`` of that file — the cross-process one-shot the
            legacy hooks used (N forked workers, exactly one fault).
``mark``    path touched just before the fault executes, so a drill can
            assert the fault genuinely fired (and not that the scenario
            silently missed the instrumented path).

The two legacy env hooks — ``REPRO_CHECK_FAULT`` (parallel-checker
window kill/hang) and ``REPRO_POOL_FAULT_FILE`` (service pool worker
kill) — are translated into plan entries at parse time, so old drills
keep working while new call sites only ever talk to this module.
"""

from __future__ import annotations

import errno
import os
import signal
import threading
import time
from dataclasses import dataclass, field

#: The unified plan environment variable.
PLAN_ENV = "REPRO_FAULT_PLAN"

#: Legacy hooks, kept as deprecated aliases (translated into plan entries).
LEGACY_CHECK_FAULT_ENV = "REPRO_CHECK_FAULT"
LEGACY_POOL_FAULT_ENV = "REPRO_POOL_FAULT_FILE"

KINDS = frozenset({"kill", "raise", "hang", "torn", "enospc", "slow"})

#: Kinds meaningful at any fault point; ``torn`` needs a write payload
#: (at a non-write point it degrades to its ``then`` action).
DEFAULT_HANG_S = 3600.0
DEFAULT_SLOW_S = 0.05


class FaultInjected(RuntimeError):
    """An injected in-process fault (kind=raise, or torn with then=raise)."""


@dataclass
class FaultSpec:
    """One entry of a fault plan."""

    point: str
    kind: str
    after: int = 1
    repeat: bool = False
    key: str | None = None
    arg: float | None = None
    then: str = "kill"
    token: str | None = None
    mark: str | None = None
    hits: int = 0
    fired: bool = False

    def matches(self, point: str, key: str | None) -> bool:
        if self.point.endswith("*"):
            if not point.startswith(self.point[:-1]):
                return False
        elif point != self.point:
            return False
        return self.key is None or self.key == key

    def should_fire(self) -> bool:
        """Count this hit; decide whether the fault executes now."""
        self.hits += 1
        if self.hits < self.after:
            return False
        if self.fired and not self.repeat:
            return False
        if self.token is not None:
            # Cross-process one-shot: exactly one process wins the unlink.
            try:
                os.unlink(self.token)
            except OSError:
                return False
        self.fired = True
        return True


def parse_spec(text: str) -> FaultSpec:
    """Parse one ``k=v,k=v`` entry; raises ValueError on anything off."""
    fields: dict[str, str] = {}
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        if "=" not in piece:
            raise ValueError(f"fault spec field {piece!r} is not key=value")
        name, value = piece.split("=", 1)
        fields[name.strip()] = value.strip()
    try:
        point = fields.pop("point")
        kind = fields.pop("kind")
    except KeyError as exc:
        raise ValueError(f"fault spec {text!r} needs point= and kind=") from exc
    if kind not in KINDS:
        raise ValueError(f"unknown fault kind {kind!r} (want one of {sorted(KINDS)})")
    spec = FaultSpec(point=point, kind=kind)
    if "after" in fields:
        spec.after = max(1, int(fields.pop("after")))
    if "repeat" in fields:
        spec.repeat = fields.pop("repeat") not in ("0", "false", "no", "")
    if "key" in fields:
        spec.key = fields.pop("key")
    if "arg" in fields:
        spec.arg = float(fields.pop("arg"))
    if "then" in fields:
        spec.then = fields.pop("then")
        if spec.then not in ("kill", "raise"):
            raise ValueError(f"torn fault wants then=kill or then=raise, not {spec.then!r}")
    if "token" in fields:
        spec.token = fields.pop("token")
    if "mark" in fields:
        spec.mark = fields.pop("mark")
    if fields:
        raise ValueError(f"unknown fault spec field(s): {sorted(fields)}")
    return spec


@dataclass
class FaultPlan:
    """Every armed fault entry, plus the raw env strings it came from."""

    specs: list[FaultSpec] = field(default_factory=list)
    source: tuple[str | None, str | None, str | None] = (None, None, None)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = [parse_spec(entry) for entry in text.split(";") if entry.strip()]
        return cls(specs=specs)

    @classmethod
    def from_environ(cls) -> "FaultPlan":
        """The env-configured plan, legacy hooks translated in."""
        raw = os.environ.get(PLAN_ENV)
        legacy_check = os.environ.get(LEGACY_CHECK_FAULT_ENV)
        legacy_pool = os.environ.get(LEGACY_POOL_FAULT_ENV)
        plan = cls.parse(raw) if raw else cls()
        if legacy_check:
            plan.specs.append(_translate_legacy_check(legacy_check))
        if legacy_pool:
            # The token file *is* the switch: each task start tries the
            # unlink, exactly one worker process wins it and dies.
            plan.specs.append(
                FaultSpec(
                    point="pool.task.start", kind="kill",
                    token=legacy_pool, repeat=True,
                )
            )
        plan.source = (raw, legacy_check, legacy_pool)
        return plan

    @property
    def empty(self) -> bool:
        return not self.specs


def _translate_legacy_check(spec: str) -> FaultSpec:
    """``REPRO_CHECK_FAULT="<kill|hang>:<window>:<token>[:secs]"`` →
    a key-gated entry on the parallel checker's window fault point."""
    parts = spec.split(":")
    mode, window, token = parts[0], parts[1], parts[2]
    if mode not in ("kill", "hang"):
        raise ValueError(f"unknown {LEGACY_CHECK_FAULT_ENV} mode {mode!r}")
    arg = float(parts[3]) if mode == "hang" and len(parts) > 3 else None
    return FaultSpec(
        point="parallel.window", kind=mode, key=window,
        token=token, arg=arg, repeat=True,
    )


# -- the active plan -----------------------------------------------------------

_lock = threading.Lock()
_plan: FaultPlan | None = None  # parsed lazily; invalidated when env changes
_installed: FaultPlan | None = None  # programmatic override (tests)

# The plane is permanent instrumentation on every journal append and cache
# write, so the unarmed probe must be nanoseconds, not microseconds.
# ``os.environ.get`` costs a raised-and-caught KeyError per absent var
# (Mapping.get over _Environ.__getitem__); three of those per fault point
# added ~4us per hit. Probe the backing dict with pre-encoded keys
# instead — same source of truth (monkeypatch and putenv both mutate it),
# no exceptions. Falls back to plain gets off CPython.
try:
    _ENV_DATA: dict | None = os.environ._data  # type: ignore[attr-defined]
    _ENV_KEYS = tuple(
        os.environ.encodekey(name)  # type: ignore[attr-defined]
        for name in (PLAN_ENV, LEGACY_CHECK_FAULT_ENV, LEGACY_POOL_FAULT_ENV)
    )
except AttributeError:  # pragma: no cover - non-CPython environ internals
    _ENV_DATA = None
    _ENV_KEYS = ()


def _unarmed() -> bool:
    """True when no override is installed and no fault env var is set."""
    if _installed is not None:
        return False
    data = _ENV_DATA
    if data is not None:
        return (
            _ENV_KEYS[0] not in data
            and _ENV_KEYS[1] not in data
            and _ENV_KEYS[2] not in data
        )
    return (
        os.environ.get(PLAN_ENV) is None
        and os.environ.get(LEGACY_CHECK_FAULT_ENV) is None
        and os.environ.get(LEGACY_POOL_FAULT_ENV) is None
    )


def install_plan(plan: FaultPlan | str | None) -> FaultPlan | None:
    """Install a plan programmatically (tests); ``None`` reverts to env."""
    global _installed, _plan
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    with _lock:
        _installed = plan
        _plan = None
    return plan


def active_plan() -> FaultPlan | None:
    """The plan in force, or ``None`` when no fault is armed.

    Env-derived plans are re-parsed whenever any of the three source env
    vars changes — hit counters live in the parsed specs, so a stable env
    keeps its counters across calls within one process.
    """
    global _plan
    if _unarmed():
        if _plan is not None:
            with _lock:
                _plan = None
        return None
    with _lock:
        if _installed is not None:
            return _installed
        source = (
            os.environ.get(PLAN_ENV),
            os.environ.get(LEGACY_CHECK_FAULT_ENV),
            os.environ.get(LEGACY_POOL_FAULT_ENV),
        )
        if source == (None, None, None):  # disarmed while we acquired
            _plan = None
            return None
        if _plan is None or _plan.source != source:
            _plan = FaultPlan.from_environ()
        return _plan


# -- the fault point registry --------------------------------------------------

#: name -> {"writes": bool, "doc": str}. Populated at import time by every
#: module that instruments a path; the chaos drill walks this.
_REGISTRY: dict[str, dict] = {}


def register_fault_point(name: str, writes: bool = False, doc: str = "") -> str:
    """Declare a fault point. Idempotent; returns the name for assignment."""
    _REGISTRY[name] = {"writes": writes, "doc": doc}
    return name


def registered_points() -> dict[str, dict]:
    """Every declared fault point (the chaos drill's worklist)."""
    return dict(_REGISTRY)


# -- firing --------------------------------------------------------------------


def _execute(spec: FaultSpec) -> None:
    """Run a non-write fault action. torn degrades to its then-action."""
    if spec.mark:
        _touch(spec.mark)
    kind = spec.kind
    if kind == "slow":
        time.sleep(spec.arg if spec.arg is not None else DEFAULT_SLOW_S)
        return
    if kind == "hang":
        time.sleep(spec.arg if spec.arg is not None else DEFAULT_HANG_S)
        return
    if kind == "enospc":
        raise OSError(errno.ENOSPC, f"No space left on device [injected at {spec.point}]")
    if kind == "kill" or (kind == "torn" and spec.then == "kill"):
        os.kill(os.getpid(), signal.SIGKILL)
    raise FaultInjected(f"injected fault at {spec.point}")


def _touch(path: str) -> None:
    try:
        with open(path, "a", encoding="utf-8"):
            pass
    except OSError:
        pass


def _torn_length(spec: FaultSpec, total: int) -> int:
    if spec.arg is None:
        return max(1, total // 2)
    if 0 < spec.arg < 1:
        return max(1, int(total * spec.arg))
    return max(0, min(total, int(spec.arg)))


def fault_point(name: str, key: object = None) -> None:
    """Hit the fault point ``name``; a no-op unless an armed entry matches.

    ``key`` labels this particular hit (a window index, a journal event
    name) so plans can target it via their ``key=`` field.
    """
    if _unarmed():
        return
    plan = active_plan()
    if plan is None or plan.empty:
        return
    key_str = None if key is None else str(key)
    with _lock:
        fire = [spec for spec in plan.specs
                if spec.matches(name, key_str) and spec.should_fire()]
    for spec in fire:
        _execute(spec)


def fault_write(name: str, handle, data: str, key: object = None) -> None:
    """Write ``data`` to ``handle`` under the fault plane.

    The write-shaped counterpart of :func:`fault_point`: ``torn`` entries
    write a prefix of ``data``, flush it so the partial record is really
    on the stream, and then die; every other kind behaves exactly as at a
    plain fault point (``kill``/``enospc``/``raise`` lose the whole
    record, ``slow`` delays it, no match writes it verbatim).
    """
    if _unarmed():
        handle.write(data)
        return
    plan = active_plan()
    if plan is None or plan.empty:
        handle.write(data)
        return
    key_str = None if key is None else str(key)
    with _lock:
        fire = [spec for spec in plan.specs
                if spec.matches(name, key_str) and spec.should_fire()]
    for spec in fire:
        if spec.kind == "torn":
            if spec.mark:
                _touch(spec.mark)
            handle.write(data[: _torn_length(spec, len(data))])
            try:
                handle.flush()
                os.fsync(handle.fileno())
            except (OSError, ValueError, AttributeError):
                pass
            if spec.then == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            raise FaultInjected(f"injected torn write at {spec.point}")
        _execute(spec)
    handle.write(data)


def reset() -> None:
    """Forget all cached plan state (hit counters included). Test helper."""
    global _plan, _installed
    with _lock:
        _plan = None
        _installed = None
