"""Bounded variable elimination (NiVER-style) with traced resolutions.

Resolution-based preprocessing: a variable v is *eliminated* by replacing
every clause containing v or ~v with all their pairwise resolvents on v
(the Davis-Putnam step), applied only when the replacement does not grow
the formula (the NiVER rule). The key point for this library: every
resolvent is a resolution with exactly two sources, so it is recorded in
the trace like any learned clause and the final proof remains exactly
checkable by the unmodified checkers.

Eliminated variables never appear in the remaining clauses, are excluded
from branching, and are reconstructed after a SAT answer from the clauses
removed during their elimination (in reverse elimination order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.solver.database import ClauseDatabase


@dataclass
class EliminationRecord:
    """What it takes to undo one variable's elimination in a model."""

    var: int
    removed_clauses: list[list[int]]


@dataclass
class EliminationStats:
    eliminated_vars: int = 0
    removed_clauses: int = 0
    added_resolvents: int = 0


@dataclass
class EliminationResult:
    stats: EliminationStats = field(default_factory=EliminationStats)
    records: list[EliminationRecord] = field(default_factory=list)
    conflict_cid: int | None = None  # an empty resolvent: instant UNSAT
    unit_cids: list[int] = field(default_factory=list)  # unit resolvents


class VariableEliminator:
    """Runs bounded VE over a solver's clause database.

    The caller (the solver, right after level-0 BCP) supplies which
    variables are assigned; only fully-unassigned variables are
    candidates, which guarantees no level-0 antecedent clause is removed
    (such clauses contain only assigned variables).
    """

    def __init__(
        self,
        db: ClauseDatabase,
        trace=None,
        value_of_lit=None,
        max_occurrences: int = 10,
        max_resolvent_length: int = 20,
    ):
        self.db = db
        self.trace = trace
        # Literal valuation under the permanent level-0 assignment; used to
        # keep watched literals on non-false positions and to classify
        # resolvents as satisfied / unit / conflicting at add time.
        self._value_of_lit = value_of_lit or (lambda lit: -1)
        self.max_occurrences = max_occurrences
        self.max_resolvent_length = max_resolvent_length

    def run(self, is_assigned) -> EliminationResult:
        """Eliminate variables until no candidate passes the NiVER test."""
        result = EliminationResult()
        occurrences = self._occurrence_index()
        queue = sorted(
            occurrences,
            key=lambda var: len(occurrences[var][0]) * len(occurrences[var][1]),
        )
        for var in queue:
            if is_assigned(var):
                continue
            outcome = self._try_eliminate(var, result)
            if outcome == "conflict":
                return result
        return result

    # -- internals --------------------------------------------------------------

    def _occurrence_index(self) -> dict[int, tuple[list[int], list[int]]]:
        index: dict[int, tuple[list[int], list[int]]] = {}
        for cid, literals in self.db.lits.items():
            for lit in literals:
                slot = index.setdefault(abs(lit), ([], []))
                slot[0 if lit > 0 else 1].append(cid)
        return index

    def _current_occurrences(self, var: int) -> tuple[list[int], list[int]]:
        positive, negative = [], []
        for cid, literals in self.db.lits.items():
            if var in literals:
                positive.append(cid)
            elif -var in literals:
                negative.append(cid)
            # A clause with both phases is a tautology; it blocks nothing
            # but resolving on it is useless — classify it as positive so
            # it still gets removed with the variable.
        return positive, negative

    def _try_eliminate(self, var: int, result: EliminationResult) -> str:
        positive, negative = self._current_occurrences(var)
        if not positive and not negative:
            return "skip"
        if len(positive) > self.max_occurrences or len(negative) > self.max_occurrences:
            return "skip"

        removed_literal_total = sum(
            len(self.db.lits[cid]) for cid in positive + negative
        )
        resolvents: list[tuple[list[int], int, int]] = []
        resolvent_literal_total = 0
        for pos_cid in positive:
            pos_lits = self.db.lits[pos_cid]
            if -var in pos_lits:
                continue  # tautological clause: no useful resolvents
            for neg_cid in negative:
                neg_lits = self.db.lits[neg_cid]
                merged: dict[int, None] = {}
                tautology = False
                for lit in pos_lits:
                    if lit != var:
                        merged[lit] = None
                for lit in neg_lits:
                    if lit == -var:
                        continue
                    if -lit in merged:
                        tautology = True
                        break
                    merged[lit] = None
                if tautology:
                    continue
                literals = list(merged)
                if len(literals) > self.max_resolvent_length:
                    return "skip"  # would create an oversized clause
                resolvents.append((literals, pos_cid, neg_cid))
                resolvent_literal_total += len(literals)
                if resolvent_literal_total > removed_literal_total:
                    return "skip"  # NiVER: never increase the formula

        # Commit: remove the occurrence clauses, add the resolvents.
        removed: list[list[int]] = []
        for cid in positive + negative:
            literals = self.db.lits[cid]
            if len(literals) >= 2:
                self.db._detach(cid)
            removed.append(list(literals))
            del self.db.lits[cid]
            self.db.protected.discard(cid)
            if cid in self.db.learned_ids:
                self.db.learned_ids.remove(cid)
                del self.db.activity[cid]
        result.records.append(EliminationRecord(var=var, removed_clauses=removed))
        result.stats.eliminated_vars += 1
        result.stats.removed_clauses += len(removed)

        from repro.cnf import FALSE, TRUE, UNASSIGNED  # local: avoid cycle

        for literals, pos_cid, neg_cid in resolvents:
            values = {lit: self._value_of_lit(lit) for lit in literals}
            if any(value == TRUE for value in values.values()):
                # Satisfied forever (level-0 assignments are permanent):
                # logically entailed, so it is sound to drop it unrecorded.
                continue
            # Watches live at positions 0/1: put non-false literals first.
            ordered = sorted(literals, key=lambda lit: values[lit] == FALSE)
            cid = self.db.add_learned(ordered)
            self.db.protected.add(cid)
            if self.trace is not None:
                self.trace.learned_clause(cid, [pos_cid, neg_cid])
            result.stats.added_resolvents += 1
            non_false = [lit for lit in ordered if values[lit] != FALSE]
            if not non_false:
                result.conflict_cid = cid
                return "conflict"
            if len(non_false) == 1 and values[non_false[0]] == UNASSIGNED:
                result.unit_cids.append(cid)
        return "eliminated"


def reconstruct_model(model: dict[int, bool], records: list[EliminationRecord]) -> None:
    """Fix up eliminated variables in a satisfying model, in place.

    Processes eliminations in reverse order: each variable is set so that
    every clause removed during its elimination is satisfied (always
    possible — the resolvents, which the model satisfies, guarantee it).
    """
    for record in reversed(records):
        var = record.var
        forced: bool | None = None
        for literals in record.removed_clauses:
            var_literal = None
            others_satisfied = False
            both_phases = (var in literals) and (-var in literals)
            if both_phases:
                continue  # tautology on var: always satisfiable
            for lit in literals:
                if abs(lit) == var:
                    var_literal = lit
                elif model.get(abs(lit)) == (lit > 0):
                    others_satisfied = True
                    break
            if others_satisfied or var_literal is None:
                continue
            needed = var_literal > 0
            if forced is None:
                forced = needed
            elif forced != needed:
                raise AssertionError(
                    f"model reconstruction conflict on eliminated variable {var}"
                )
        model[var] = False if forced is None else forced
