"""Restart policies.

The paper's termination proof (§2.2, Proposition 1) observes that restarts
can make the solver loop forever unless the restart period increases over
time. Both policies provided here have that property; ``NoRestartPolicy``
disables restarts entirely.
"""

from __future__ import annotations


class NoRestartPolicy:
    """Never restart."""

    def should_restart(self, conflicts_since_restart: int) -> bool:
        return False

    def on_restart(self) -> None:  # pragma: no cover - trivial
        pass


class GeometricRestartPolicy:
    """Restart after a conflict budget that grows geometrically."""

    def __init__(self, first: int = 100, inc: float = 1.5):
        if first < 1:
            raise ValueError("first restart interval must be >= 1")
        if inc < 1.0:
            raise ValueError("interval must not shrink (termination, §2.2)")
        self._limit = float(first)
        self._inc = inc

    def should_restart(self, conflicts_since_restart: int) -> bool:
        return conflicts_since_restart >= self._limit

    def on_restart(self) -> None:
        self._limit *= self._inc


class LubyRestartPolicy:
    """Luby sequence restarts (1,1,2,1,1,2,4,...) scaled by a unit.

    The Luby sequence is unbounded, so the increasing-period requirement is
    met in the limit even though individual intervals shrink.
    """

    def __init__(self, unit: int = 64):
        if unit < 1:
            raise ValueError("luby unit must be >= 1")
        self._unit = unit
        self._index = 1

    @staticmethod
    def luby(i: int) -> int:
        """The i-th element (1-based) of the Luby sequence 1,1,2,1,1,2,4,..."""
        if i < 1:
            raise ValueError("luby index is 1-based")
        x = i - 1
        size, seq = 1, 0
        while size < x + 1:
            seq += 1
            size = 2 * size + 1
        while size - 1 != x:
            size = (size - 1) >> 1
            seq -= 1
            x %= size
        return 1 << seq

    def should_restart(self, conflicts_since_restart: int) -> bool:
        return conflicts_since_restart >= self._unit * self.luby(self._index)

    def on_restart(self) -> None:
        self._index += 1


def make_restart_policy(name: str, first: int = 100, inc: float = 1.5, luby_unit: int = 64):
    """Factory used by the solver config."""
    if name == "none":
        return NoRestartPolicy()
    if name == "geometric":
        return GeometricRestartPolicy(first, inc)
    if name == "luby":
        return LubyRestartPolicy(luby_unit)
    raise ValueError(f"unknown restart policy {name!r}")
