"""Fault-injected solver variants.

The paper's motivation: "during the recent SAT 2002 solver competition,
quite a few submitted SAT solvers were found to be buggy. Thus, a rigorous
checker is needed to validate the solvers." These deliberately broken
variants exist to demonstrate — and regression-test — that the checkers
catch real bug classes with useful diagnostics.

Two kinds of faults are modeled:

* **Trace-generation bugs** (`CorruptingTraceWriter`): the solver reasons
  correctly but records a wrong trace (dropped resolve source, swapped
  order, wrong antecedent, missing level-0 entry, wrong final conflict).
* **Reasoning bugs** (`UnsoundLearningSolver`): the solver silently drops a
  literal from learned clauses, which is unsound and can make it claim
  UNSAT for satisfiable formulas; the recorded sources then no longer
  reproduce the clauses the solver actually used.

The trace-generation bugs split further by how they are caught. The
*semantic* ones (dropped source, swapped order, wrong-but-defined
antecedent, omitted trail entry, misdirected final conflict) leave a
structurally well-formed trace and genuinely need resolution replay. The
*structural* ones (truncated chain, forward reference, duplicated ID,
missing final conflict, dangling antecedent) break the trace DAG itself and
are caught by the :mod:`repro.analysis` linter without building a single
clause — `tests/analysis/test_fault_matrix.py` pins down which bug lands on
which side, with exact rule IDs.
"""

from __future__ import annotations

import enum
import random

from repro.cnf import CnfFormula
from repro.solver.config import SolverConfig
from repro.solver.solver import Solver


class BugKind(enum.Enum):
    """Bug classes the checker must catch."""

    DROP_SOURCE = "drop_source"  # omit a resolve source of some learned clause
    SWAP_SOURCES = "swap_sources"  # break the resolution order
    WRONG_ANTECEDENT = "wrong_antecedent"  # bogus antecedent for a level-0 var
    OMIT_LEVEL_ZERO = "omit_level_zero"  # drop a level-0 trail entry
    WRONG_FINAL_CONFLICT = "wrong_final_conflict"  # CONF points at a non-conflict
    DROP_LEARNED_LITERAL = "drop_learned_literal"  # unsound learning
    # Structural bugs: break the trace DAG itself (statically detectable).
    TRUNCATE_SOURCES = "truncate_sources"  # keep only the first resolve source
    FORWARD_SOURCE = "forward_source"  # source ID >= the learned clause's own
    DUPLICATE_CID = "duplicate_cid"  # reuse an already-defined clause ID
    OMIT_FINAL_CONFLICT = "omit_final_conflict"  # never record the CONF line
    DANGLING_ANTECEDENT = "dangling_antecedent"  # trail cites an undefined clause
    EMPTY_SOURCES = "empty_sources"  # learned clause with zero resolve sources


class CorruptingTraceWriter:
    """Wraps a real trace writer and injects one trace-generation bug.

    The corruption site is chosen pseudo-randomly (seeded) among the
    eligible records so different instances exercise different positions.
    """

    def __init__(self, inner, bug: BugKind, seed: int = 0):
        if bug == BugKind.DROP_LEARNED_LITERAL:
            raise ValueError("DROP_LEARNED_LITERAL is a reasoning bug; use UnsoundLearningSolver")
        self._inner = inner
        self._bug = bug
        self._rng = random.Random(seed)
        self._corrupted = False
        self._level_zero_seen = 0
        self._last_cid: int | None = None

    @property
    def corrupted(self) -> bool:
        """Whether the injected bug actually fired during this run."""
        return self._corrupted

    def header(self, num_vars: int, num_original_clauses: int) -> None:
        self._inner.header(num_vars, num_original_clauses)

    def learned_clause(self, cid: int, sources) -> None:
        sources = list(sources)
        if not self._corrupted and len(sources) >= 3 and self._rng.random() < 0.2:
            if self._bug == BugKind.DROP_SOURCE:
                del sources[self._rng.randrange(1, len(sources))]
                self._corrupted = True
            elif self._bug == BugKind.SWAP_SOURCES:
                # Swapping the conflicting clause with a later antecedent
                # breaks the reverse-chronological resolution order.
                sources[0], sources[-1] = sources[-1], sources[0]
                self._corrupted = True
            elif self._bug == BugKind.TRUNCATE_SOURCES:
                sources = sources[:1]
                self._corrupted = True
            elif self._bug == BugKind.FORWARD_SOURCE:
                sources[-1] = cid + self._rng.randrange(1, 8)
                self._corrupted = True
            elif self._bug == BugKind.DUPLICATE_CID and self._last_cid is not None:
                cid = self._last_cid
                self._corrupted = True
            elif self._bug == BugKind.EMPTY_SOURCES:
                # A CL record with no sources at all: the record type itself
                # rejects this shape, so the fault only survives through
                # file-backed writers (an in-memory writer raises at once).
                sources = []
                self._corrupted = True
        self._last_cid = cid
        self._inner.learned_clause(cid, sources)

    def clause_deletion(self, cid: int) -> None:
        self._inner.clause_deletion(cid)

    def level_zero(self, var: int, value: bool, antecedent: int) -> None:
        self._level_zero_seen += 1
        if not self._corrupted:
            if self._bug == BugKind.OMIT_LEVEL_ZERO and self._rng.random() < 0.5:
                self._corrupted = True
                return
            if self._bug == BugKind.WRONG_ANTECEDENT and self._rng.random() < 0.5:
                self._corrupted = True
                self._inner.level_zero(var, value, max(1, antecedent - 1))
                return
            if self._bug == BugKind.DANGLING_ANTECEDENT and self._rng.random() < 0.5:
                self._corrupted = True
                self._inner.level_zero(var, value, antecedent + 10_000_000)
                return
        self._inner.level_zero(var, value, antecedent)

    def final_conflict(self, cid: int) -> None:
        if self._bug == BugKind.WRONG_FINAL_CONFLICT:
            self._corrupted = True
            cid = 1 if cid != 1 else 2
        elif self._bug == BugKind.OMIT_FINAL_CONFLICT:
            self._corrupted = True
            return
        self._inner.final_conflict(cid)

    def result(self, status: str) -> None:
        self._inner.result(status)

    def close(self) -> None:
        self._inner.close()


class UnsoundLearningSolver(Solver):
    """A solver whose conflict analysis silently drops a learned literal.

    This is the classic unsound-learning bug: the clause database diverges
    from what resolution actually derives. The solver may answer UNSAT on
    satisfiable formulas; either way the checker's reconstruction will not
    match the clauses the solver used and the check fails.
    """

    def __init__(self, formula: CnfFormula, config: SolverConfig | None = None, trace_writer=None, drop_period: int = 5):
        super().__init__(formula, config=config, trace_writer=trace_writer)
        self._drop_period = drop_period
        self._learn_count = 0

    def _propagate_and_learn(self):
        # Intercept learned clauses by monkey-wrapping the database add.
        original_add = self.db.add_learned

        def buggy_add(literals, watch_hint=None):
            self._learn_count += 1
            if self._learn_count % self._drop_period == 0 and len(literals) > 2:
                literals = literals[:-1]  # drop the last (lowest-level) literal
            return original_add(literals, watch_hint)

        self.db.add_learned = buggy_add
        try:
            return super()._propagate_and_learn()
        finally:
            self.db.add_learned = original_add


def make_buggy_solver(
    formula: CnfFormula,
    bug: BugKind,
    trace_writer,
    config: SolverConfig | None = None,
    seed: int = 0,
):
    """Build a solver afflicted with ``bug`` writing through ``trace_writer``.

    Returns ``(solver, corrupting_writer_or_None)`` — for trace bugs the
    second element exposes whether the fault actually fired.
    """
    if bug == BugKind.DROP_LEARNED_LITERAL:
        return UnsoundLearningSolver(formula, config=config, trace_writer=trace_writer), None
    wrapper = CorruptingTraceWriter(trace_writer, bug, seed=seed)
    return Solver(formula, config=config, trace_writer=wrapper), wrapper
