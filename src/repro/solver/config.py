"""Solver configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SolverConfig:
    """Tunables for the CDCL solver.

    Defaults mirror the spirit of zchaff's defaults scaled to the size of
    instances a pure-Python solver handles. All randomness (decision
    tie-breaking, optional random decisions) derives from ``seed`` so runs
    are reproducible bit-for-bit.
    """

    # Decision heuristic
    decision_heuristic: str = "vsids"  # vsids | static | random | jeroslow-wang
    var_decay: float = 0.95
    random_decision_freq: float = 0.0  # fraction of decisions made at random
    default_phase: bool = False  # branch negative first, like zchaff

    # Learning
    minimize_learned: bool = False  # self-subsumption minimization (tracked
    # as extra resolutions, so traces stay exactly checkable)

    # Preprocessing
    preprocess_blocked_clause: bool = False  # blocked clause elimination
    preprocess_elimination: bool = False  # NiVER-style variable elimination
    elimination_max_occurrences: int = 10
    elimination_max_resolvent_length: int = 20

    # Restarts ("increasing restart period", §2.2 termination discussion)
    restart_policy: str = "geometric"  # geometric | luby | none
    restart_first: int = 100
    restart_inc: float = 1.5
    luby_unit: int = 64

    # Learned clause deletion
    clause_decay: float = 0.999
    max_learned_factor: float = 1.0 / 3.0  # initial cap: originals * factor
    max_learned_growth: float = 1.1  # cap growth per reduction
    min_learned_cap: int = 500

    # Budgets (None = unlimited)
    max_conflicts: int | None = None
    max_decisions: int | None = None

    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.var_decay <= 1.0:
            raise ValueError(f"var_decay must be in (0, 1], got {self.var_decay}")
        if not 0.0 < self.clause_decay <= 1.0:
            raise ValueError(f"clause_decay must be in (0, 1], got {self.clause_decay}")
        if not 0.0 <= self.random_decision_freq <= 1.0:
            raise ValueError("random_decision_freq must be in [0, 1]")
        if self.decision_heuristic not in ("vsids", "static", "random", "jeroslow-wang"):
            raise ValueError(f"unknown decision heuristic {self.decision_heuristic!r}")
        if self.restart_policy not in ("geometric", "luby", "none"):
            raise ValueError(f"unknown restart policy {self.restart_policy!r}")
        if self.restart_first < 1:
            raise ValueError("restart_first must be >= 1")
        if self.restart_inc < 1.0:
            raise ValueError(
                "restart_inc must be >= 1.0: the paper requires the restart "
                "period to increase for the solver to terminate"
            )
