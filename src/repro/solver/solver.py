"""The CDCL solver: Fig. 1 of the paper, with trace generation (§3.1).

Pipeline per iteration: decide -> BCP (two watched literals) -> on conflict,
first-UIP analysis by resolution -> learn + assertion-based backtracking.
When the conflict arrives at decision level 0 the instance is UNSAT and the
solver dumps the level-0 trail and final conflicting clause into the trace,
exactly the information the checkers need to re-derive the empty clause.
"""

from __future__ import annotations

import time

from repro.cnf import Assignment, CnfFormula, FALSE, TRUE, UNASSIGNED
from repro.solver.config import SolverConfig
from repro.solver.conflict import analyze_conflict
from repro.solver.database import ClauseDatabase
from repro.solver.decision import make_decision_heuristic
from repro.solver.restarts import make_restart_policy
from repro.solver.result import SAT, UNKNOWN, UNSAT, SolveResult, SolverStats


class Solver:
    """Single-shot CDCL solver over a CNF formula.

    Attach a trace writer (any object satisfying ``repro.trace.io.TraceWriter``)
    to record the resolution trace while solving; pass ``None`` to solve
    without tracing (the paper's Table 1 compares the two).
    """

    def __init__(
        self,
        formula: CnfFormula,
        config: SolverConfig | None = None,
        trace_writer=None,
        drup_writer=None,
    ):
        self.config = config or SolverConfig()
        self.drup = drup_writer
        self.db = ClauseDatabase.from_formula(formula)
        self.assignment = Assignment(formula.num_vars)
        self.vsids = make_decision_heuristic(
            self.config.decision_heuristic, formula.num_vars, self.db, self.config
        )
        self.restart_policy = make_restart_policy(
            self.config.restart_policy,
            first=self.config.restart_first,
            inc=self.config.restart_inc,
            luby_unit=self.config.luby_unit,
        )
        self.trace = trace_writer
        self.stats = SolverStats()
        self._qhead = 0
        self._conflicts_since_restart = 0
        self._max_learned = max(
            self.config.min_learned_cap,
            int(self.db.num_original * self.config.max_learned_factor),
        )
        self.elimination_records: list = []
        self.blocked_records: list = []
        self._solved = False

    # -- public API --------------------------------------------------------

    def solve(self) -> SolveResult:
        """Run the search to completion (or budget exhaustion)."""
        if self._solved:
            raise RuntimeError("Solver instances are single-shot; build a new one")
        self._solved = True
        start = time.perf_counter()
        if self.trace is not None:
            self.trace.header(self.assignment.num_vars, self.db.num_original)
        try:
            status, model = self._search()
        finally:
            self.stats.solve_time = time.perf_counter() - start
            if self.trace is not None:
                self.trace.close()
            if self.drup is not None:
                self.drup.close()
        return SolveResult(status=status, model=model, stats=self.stats)

    # -- search ------------------------------------------------------------

    def _search(self) -> tuple[str, dict[int, bool] | None]:
        conflict = self._preprocess()
        if conflict is not None:
            self._emit_unsat(conflict)
            return UNSAT, None

        while True:
            decision = self.vsids.pick_branch(self.assignment)
            if decision is None:
                model = self._full_model()
                if self.trace is not None:
                    self.trace.result(SAT)
                return SAT, model

            if (
                self.config.max_decisions is not None
                and self.stats.decisions >= self.config.max_decisions
            ):
                if self.trace is not None:
                    self.trace.result(UNKNOWN)
                return UNKNOWN, None

            self.stats.decisions += 1
            self.assignment.new_decision_level()
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, self.assignment.decision_level
            )
            self.assignment.assign(decision)

            status = self._propagate_and_learn()
            if status is not None:
                return status, None

    def _propagate_and_learn(self) -> str | None:
        """BCP, resolving conflicts as they come. Returns a final status or
        None when the search should continue with a new decision."""
        while True:
            conflict = self._propagate()
            if conflict is None:
                return None

            self.stats.conflicts += 1
            self._conflicts_since_restart += 1

            if self.assignment.decision_level == 0:
                self._emit_unsat(conflict)
                return UNSAT

            analysis = analyze_conflict(
                conflict,
                self.db,
                self.assignment,
                bump_var=self.vsids.bump,
                bump_clause=self.db.bump_clause,
                minimize=self.config.minimize_learned,
            )
            self.vsids.decay()
            self.db.decay_clause_activity(self.config.clause_decay)

            self._backtrack_to(analysis.backtrack_level)

            if len(analysis.sources) == 1:
                # The conflicting clause was already asserting: no resolution
                # happened, so there is nothing to learn — the clause itself
                # becomes the antecedent after backtracking.
                antecedent = analysis.sources[0]
            else:
                antecedent = self.db.add_learned(analysis.learned_literals)
                self.stats.learned_clauses += 1
                if self.trace is not None:
                    self.trace.learned_clause(antecedent, analysis.sources)
                if self.drup is not None:
                    self.drup.add_clause(self.db.lits[antecedent])

            self.assignment.assign(analysis.asserting_literal, antecedent=antecedent)
            self.vsids.save_phase(analysis.asserting_literal)

            if (
                self.config.max_conflicts is not None
                and self.stats.conflicts >= self.config.max_conflicts
            ):
                if self.trace is not None:
                    self.trace.result(UNKNOWN)
                return UNKNOWN

            if self.db.num_learned > self._max_learned:
                self._reduce_learned()

            if (
                self.assignment.decision_level > 0
                and self.restart_policy.should_restart(self._conflicts_since_restart)
            ):
                self.restart_policy.on_restart()
                self.stats.restarts += 1
                self._conflicts_since_restart = 0
                self._backtrack_to(0)

    # -- BCP ----------------------------------------------------------------

    def _propagate(self) -> int | None:
        """Boolean constraint propagation; returns a conflicting clause ID."""
        assignment = self.assignment
        db = self.db
        while self._qhead < len(assignment.trail):
            lit = assignment.trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = -lit
            watchers = db.watchers_of(false_lit)
            i = j = 0
            n = len(watchers)
            conflict: int | None = None
            while i < n:
                cid = watchers[i]
                i += 1
                lits = db.lits[cid]
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                value = assignment.value_of_lit(first)
                if value == TRUE:
                    watchers[j] = cid
                    j += 1
                    continue
                for k in range(2, len(lits)):
                    if assignment.value_of_lit(lits[k]) != FALSE:
                        lits[1], lits[k] = lits[k], lits[1]
                        db.watchers_of(lits[1]).append(cid)
                        break
                else:
                    watchers[j] = cid
                    j += 1
                    if value == FALSE:
                        conflict = cid
                        while i < n:  # keep the untouched tail of the list
                            watchers[j] = watchers[i]
                            j += 1
                            i += 1
                    else:
                        assignment.assign(first, antecedent=cid)
                if conflict is not None:
                    break
            del watchers[j:]
            if conflict is not None:
                self._qhead = len(assignment.trail)
                return conflict
        return None

    # -- setup / teardown helpers -------------------------------------------

    def _preprocess(self) -> int | None:
        """Level-0 deductions (the paper's ``preprocess()``).

        Returns a conflicting clause ID if the formula is refuted without
        any branching, else None.
        """
        if self.db.empty_original is not None:
            return self.db.empty_original
        for cid in self.db.unit_originals:
            lit = self.db.lits[cid][0]
            value = self.assignment.value_of_lit(lit)
            if value == FALSE:
                return cid
            if value == UNASSIGNED:
                self.assignment.assign(lit, antecedent=cid)
        conflict = self._propagate()
        if conflict is not None:
            return conflict
        if self.config.preprocess_blocked_clause:
            from repro.solver.blocked import eliminate_blocked_clauses

            self.blocked_records = eliminate_blocked_clauses(
                self.db, self.assignment.is_assigned
            ).records
        if not self.config.preprocess_elimination:
            return None
        return self._eliminate_variables()

    def _eliminate_variables(self) -> int | None:
        """NiVER-style preprocessing; resolvents are recorded in the trace."""
        from repro.solver.elimination import VariableEliminator

        eliminator = VariableEliminator(
            self.db,
            trace=self.trace,
            value_of_lit=self.assignment.value_of_lit,
            max_occurrences=self.config.elimination_max_occurrences,
            max_resolvent_length=self.config.elimination_max_resolvent_length,
        )
        outcome = eliminator.run(self.assignment.is_assigned)
        self.elimination_records = outcome.records
        self.stats.learned_clauses += outcome.stats.added_resolvents
        self.vsids.banned.update(record.var for record in outcome.records)
        if outcome.conflict_cid is not None:
            return outcome.conflict_cid
        for cid in outcome.unit_cids:
            if cid not in self.db:
                continue  # resolved away by a later elimination
            for lit in self.db.lits[cid]:
                value = self.assignment.value_of_lit(lit)
                if value == FALSE:
                    continue
                if value == UNASSIGNED:
                    self.assignment.assign(lit, antecedent=cid)
                break
            else:
                return cid  # every literal false: the unit clause conflicts
        return self._propagate()

    def _backtrack_to(self, level: int) -> None:
        assignment = self.assignment
        if level >= assignment.decision_level:
            return
        keep = assignment.level_limits[level]
        for lit in assignment.trail[keep:]:
            self.vsids.save_phase(lit)
            self.vsids.requeue(abs(lit))
        assignment.backtrack(level)
        self._qhead = len(assignment.trail)

    def _reduce_learned(self) -> None:
        locked = {
            assignment_ante
            for assignment_ante in (
                self.assignment.antecedents[abs(lit)] for lit in self.assignment.trail
            )
            if assignment_ante != 0
        }
        deleted = self.db.reduce_learned(locked)
        self.stats.deleted_clauses += len(deleted)
        for cid, literals in deleted:
            if self.drup is not None:
                self.drup.delete_clause(literals)
            if self.trace is not None:
                self.trace.clause_deletion(cid)
        self._max_learned = int(self._max_learned * self.config.max_learned_growth)

    def _emit_unsat(self, conflict_cid: int) -> None:
        if self.drup is not None:
            self.drup.finish_unsat()
        if self.trace is None:
            return
        for lit in self.assignment.trail:
            var = abs(lit)
            antecedent = self.assignment.antecedents[var]
            assert antecedent != 0, f"level-0 variable {var} lacks an antecedent"
            self.trace.level_zero(var, lit > 0, antecedent)
        self.trace.final_conflict(conflict_cid)
        self.trace.result(UNSAT)

    def _full_model(self) -> dict[int, bool]:
        model = self.assignment.model()
        for var in range(1, self.assignment.num_vars + 1):
            model.setdefault(var, self.vsids.phase[var])
        # Undo preprocessing in reverse application order: variable
        # elimination ran after blocked-clause elimination.
        if self.elimination_records:
            from repro.solver.elimination import reconstruct_model

            reconstruct_model(model, self.elimination_records)
        if self.blocked_records:
            from repro.solver.blocked import repair_model

            repair_model(model, self.blocked_records)
        return model


def solve_formula(
    formula: CnfFormula,
    config: SolverConfig | None = None,
    trace_writer=None,
    drup_writer=None,
) -> SolveResult:
    """Convenience wrapper: build a Solver, run it, return the result."""
    solver = Solver(formula, config=config, trace_writer=trace_writer, drup_writer=drup_writer)
    return solver.solve()
