"""Solve results and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"


@dataclass
class SolverStats:
    """Counters the experiment harness reports (cf. Table 1)."""

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    restarts: int = 0
    max_decision_level: int = 0
    solve_time: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "decisions": self.decisions,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
            "learned_clauses": self.learned_clauses,
            "deleted_clauses": self.deleted_clauses,
            "restarts": self.restarts,
            "max_decision_level": self.max_decision_level,
            "solve_time": self.solve_time,
        }


@dataclass
class SolveResult:
    """Outcome of a solver run.

    ``model`` is populated on SAT (variable -> bool for every variable that
    occurs in the formula). On UNSAT the companion trace (if a writer was
    attached) carries the checkable proof.
    """

    status: str
    model: dict[int, bool] | None = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT
