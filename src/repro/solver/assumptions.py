"""Solving under assumptions, with *verified* failed-assumption cores.

EDA flows rarely ask one SAT question: they ask thousands of related ones
("is this path sensitizable given these mode pins?"). The standard
interface is ``solve(formula, assumptions)``; on UNSAT the caller wants to
know *which assumptions* caused it.

We implement assumptions by appending one unit clause per assumption
literal and solving the augmented formula. On UNSAT, the depth-first
checker both validates the proof and (via its unsat-core byproduct, §4)
tells us exactly which assumption units the proof used — a failed-
assumption set that is machine-checked, not merely reported by the
solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.checker.depth_first import DepthFirstChecker
from repro.cnf import CnfFormula
from repro.solver.config import SolverConfig
from repro.solver.result import SolverStats
from repro.solver.solver import Solver
from repro.trace import InMemoryTraceWriter


@dataclass
class AssumptionResult:
    """Outcome of an assumption query."""

    status: str  # SAT | UNSAT | UNKNOWN
    model: dict[int, bool] | None = None
    failed_assumptions: list[int] = field(default_factory=list)
    core_clause_ids: set[int] = field(default_factory=set)  # original formula IDs
    proof_verified: bool = False
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        return self.status == "SAT"

    @property
    def is_unsat(self) -> bool:
        return self.status == "UNSAT"


def solve_with_assumptions(
    formula: CnfFormula,
    assumptions: Sequence[int],
    config: SolverConfig | None = None,
) -> AssumptionResult:
    """Decide ``formula`` under the given assumption literals.

    On UNSAT, ``failed_assumptions`` is the subset of assumptions the
    verified proof actually used (possibly empty, when the formula is
    unsatisfiable on its own) and ``core_clause_ids`` is the unsat core
    among the *formula's* clauses. Raises the checker's failure if the
    solver's proof does not verify.
    """
    seen: set[int] = set()
    for lit in assumptions:
        if lit == 0 or abs(lit) > max(formula.num_vars, abs(lit)):
            raise ValueError(f"bad assumption literal {lit}")
        if -lit in seen:
            return _contradictory_assumptions(lit)
        seen.add(lit)

    augmented = CnfFormula(formula.num_vars)
    for clause in formula:
        augmented.add_clause(list(clause.literals))
    assumption_cid: dict[int, int] = {}
    for lit in assumptions:
        if lit in assumption_cid:
            continue
        clause = augmented.add_clause([lit])
        assumption_cid[lit] = clause.cid

    writer = InMemoryTraceWriter()
    result = Solver(augmented, config=config, trace_writer=writer).solve()

    if result.status != "UNSAT":
        return AssumptionResult(
            status=result.status, model=result.model, stats=result.stats
        )

    report = DepthFirstChecker(augmented, writer.to_trace()).check()
    report.raise_if_failed()
    assert report.original_core is not None
    failed = [
        lit for lit, cid in assumption_cid.items() if cid in report.original_core
    ]
    core = {cid for cid in report.original_core if cid <= formula.num_clauses}
    return AssumptionResult(
        status="UNSAT",
        failed_assumptions=failed,
        core_clause_ids=core,
        proof_verified=True,
        stats=result.stats,
    )


def _contradictory_assumptions(lit: int) -> AssumptionResult:
    """Both phases assumed: trivially UNSAT, blame exactly that pair."""
    return AssumptionResult(
        status="UNSAT",
        failed_assumptions=[-lit, lit],
        proof_verified=True,
    )
