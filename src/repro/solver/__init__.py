"""A zchaff-style CDCL SAT solver with resolution trace generation.

Implements the algorithm of Fig. 1/Fig. 2 of the paper: DLL search with
two-watched-literal BCP, VSIDS-style decision heuristic, first-UIP conflict
analysis by resolution, clause learning with activity-based deletion,
assertion-based backtracking, and increasing-period restarts (required for
termination, §2.2). The solver optionally emits the trace the checkers
consume (§3.1).
"""

from repro.solver.config import SolverConfig
from repro.solver.result import SolveResult, SolverStats, SAT, UNSAT, UNKNOWN
from repro.solver.solver import Solver, solve_formula
from repro.solver.assumptions import AssumptionResult, solve_with_assumptions
from repro.solver.restarts import (
    GeometricRestartPolicy,
    LubyRestartPolicy,
    NoRestartPolicy,
    make_restart_policy,
)

__all__ = [
    "SolverConfig",
    "SolveResult",
    "SolverStats",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "Solver",
    "solve_formula",
    "AssumptionResult",
    "solve_with_assumptions",
    "GeometricRestartPolicy",
    "LubyRestartPolicy",
    "NoRestartPolicy",
    "make_restart_policy",
]
