"""Alternative decision heuristics, for ablation against VSIDS.

Chaff's VSIDS was the paper's era-defining heuristic; these baselines
(static order, Jeroslow-Wang, uniform random) exist so the benchmark
harness can quantify what it buys. All expose the same surface as
:class:`repro.solver.vsids.VsidsHeuristic`: ``bump``, ``decay``,
``save_phase``, ``requeue``, ``pick_branch``.
"""

from __future__ import annotations

import random

from repro.cnf import Assignment
from repro.solver.vsids import VsidsHeuristic


class StaticOrderHeuristic:
    """Branch on the lowest-numbered free variable (DLL's original order)."""

    def __init__(self, num_vars: int, default_phase: bool = False):
        self.num_vars = num_vars
        self.phase = [default_phase] * (num_vars + 1)
        self.banned: set[int] = set()

    def bump(self, var: int) -> None:
        pass

    def decay(self) -> None:
        pass

    def save_phase(self, lit: int) -> None:
        self.phase[abs(lit)] = lit > 0

    def requeue(self, var: int) -> None:
        pass

    def pick_branch(self, assignment: Assignment) -> int | None:
        for var in range(1, self.num_vars + 1):
            if not assignment.is_assigned(var) and var not in self.banned:
                return var if self.phase[var] else -var
        return None


class RandomHeuristic:
    """Branch on a uniformly random free variable (seeded)."""

    def __init__(self, num_vars: int, default_phase: bool = False, seed: int = 0):
        self.num_vars = num_vars
        self.phase = [default_phase] * (num_vars + 1)
        self.banned: set[int] = set()
        self._rng = random.Random(seed)

    def bump(self, var: int) -> None:
        pass

    def decay(self) -> None:
        pass

    def save_phase(self, lit: int) -> None:
        self.phase[abs(lit)] = lit > 0

    def requeue(self, var: int) -> None:
        pass

    def pick_branch(self, assignment: Assignment) -> int | None:
        free = [
            v
            for v in range(1, self.num_vars + 1)
            if not assignment.is_assigned(v) and v not in self.banned
        ]
        if not free:
            return None
        var = self._rng.choice(free)
        return var if self.phase[var] else -var


class JeroslowWangHeuristic:
    """One-sided Jeroslow-Wang: J(l) = sum over clauses containing l of
    2^-|clause|, scored once from the input formula. Picks the free
    variable with the best literal score and branches on that phase."""

    def __init__(self, num_vars: int, clause_literal_lists, default_phase: bool = False):
        self.num_vars = num_vars
        score: dict[int, float] = {}
        for literals in clause_literal_lists:
            if not literals:
                continue
            weight = 2.0 ** -len(literals)
            for lit in literals:
                score[lit] = score.get(lit, 0.0) + weight
        self._score = score
        # Pre-rank variables by their best literal score (descending).
        def var_key(var: int) -> float:
            return max(score.get(var, 0.0), score.get(-var, 0.0))

        self._order = sorted(range(1, num_vars + 1), key=var_key, reverse=True)
        self.banned: set[int] = set()
        self.phase = [default_phase] * (num_vars + 1)
        for var in range(1, num_vars + 1):
            self.phase[var] = score.get(var, 0.0) >= score.get(-var, 0.0)

    def bump(self, var: int) -> None:
        pass

    def decay(self) -> None:
        pass

    def save_phase(self, lit: int) -> None:
        pass  # JW keeps its static polarity preference

    def requeue(self, var: int) -> None:
        pass

    def pick_branch(self, assignment: Assignment) -> int | None:
        for var in self._order:
            if not assignment.is_assigned(var) and var not in self.banned:
                return var if self.phase[var] else -var
        return None


def make_decision_heuristic(name: str, num_vars: int, db, config):
    """Factory keyed by ``SolverConfig.decision_heuristic``."""
    if name == "vsids":
        return VsidsHeuristic(
            num_vars,
            var_decay=config.var_decay,
            default_phase=config.default_phase,
            random_freq=config.random_decision_freq,
            seed=config.seed,
        )
    if name == "static":
        return StaticOrderHeuristic(num_vars, default_phase=config.default_phase)
    if name == "random":
        return RandomHeuristic(num_vars, default_phase=config.default_phase, seed=config.seed)
    if name == "jeroslow-wang":
        return JeroslowWangHeuristic(
            num_vars,
            (db.lits[cid] for cid in sorted(db.lits) if cid <= db.num_original),
            default_phase=config.default_phase,
        )
    raise ValueError(f"unknown decision heuristic {name!r}")
