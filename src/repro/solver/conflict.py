"""First-UIP conflict analysis by resolution (Fig. 2 of the paper).

Starting from the conflicting clause, iteratively resolve with the
antecedent of the literal assigned *last* (reverse chronological order,
``choose_literal`` in the paper) until the resolvent is an *asserting
clause*: exactly one literal at the current decision level. The sequence of
clause IDs used — conflicting clause first, then each antecedent — is the
learned clause's *resolve sources*, recorded in the trace for the checker.

Literals assigned at decision level 0 are kept in the learned clause so the
learned clause is the exact resolvent of its sources (the checker re-derives
it literal-for-literal).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnf import Assignment
from repro.solver.database import ClauseDatabase


@dataclass
class AnalysisResult:
    """Outcome of conflict analysis at a decision level > 0."""

    learned_literals: list[int]  # asserting literal first
    sources: list[int]  # conflicting clause, then antecedents in order
    backtrack_level: int  # the asserting level
    asserting_literal: int  # the single current-level literal (negated UIP)


def analyze_conflict(
    conflict_cid: int,
    db: ClauseDatabase,
    assignment: Assignment,
    bump_var=None,
    bump_clause=None,
    minimize: bool = False,
) -> AnalysisResult:
    """Run 1-UIP analysis. The caller guarantees decision level > 0.

    ``bump_var`` / ``bump_clause`` are optional callbacks for the decision
    heuristic and clause-activity bookkeeping.

    ``minimize`` enables self-subsumption minimization: a lower-level
    literal is dropped when resolving with its variable's antecedent
    introduces nothing new. Each drop *is* one more resolution, so the
    antecedent is appended to the resolve sources and the trace stays
    exactly checkable — the learned clause remains the literal-for-literal
    resolvent of its recorded sources.
    """
    current_level = assignment.decision_level
    if current_level == 0:
        raise ValueError("analyze_conflict requires decision level > 0")

    sources = [conflict_cid]
    seen: set[int] = set()
    lower_literals: list[int] = []  # false literals below the current level
    counter = 0  # unresolved current-level literals

    def absorb(literals: list[int], pivot_var: int | None) -> None:
        nonlocal counter
        for lit in literals:
            var = abs(lit)
            if var == pivot_var or var in seen:
                continue
            seen.add(var)
            if bump_var is not None:
                bump_var(var)
            if assignment.levels[var] == current_level:
                counter += 1
            else:
                lower_literals.append(lit)

    if bump_clause is not None:
        bump_clause(conflict_cid)
    absorb(db.clause_literals(conflict_cid), None)
    if counter == 0:
        raise RuntimeError(
            f"conflicting clause {conflict_cid} has no literal at the current "
            "decision level; the BCP invariant is broken"
        )

    trail = assignment.trail
    index = len(trail) - 1
    while True:
        # choose_literal: the current-level literal assigned last.
        while abs(trail[index]) not in seen or assignment.levels[abs(trail[index])] != current_level:
            index -= 1
        pivot_lit = trail[index]
        pivot_var = abs(pivot_lit)
        index -= 1
        if counter == 1:
            asserting_literal = -pivot_lit
            break
        antecedent = assignment.antecedents[pivot_var]
        if antecedent == 0:
            raise RuntimeError(
                f"variable {pivot_var} at level {current_level} has no "
                "antecedent but is not the last current-level literal"
            )
        sources.append(antecedent)
        if bump_clause is not None:
            bump_clause(antecedent)
        counter -= 1
        absorb(db.clause_literals(antecedent), pivot_var)

    if minimize and lower_literals:
        _minimize_lower_literals(
            lower_literals, sources, db, assignment, bump_clause
        )

    backtrack_level = 0
    watch_literal_index = -1
    for i, lit in enumerate(lower_literals):
        level = assignment.levels[abs(lit)]
        if level > backtrack_level:
            backtrack_level = level
            watch_literal_index = i

    learned = [asserting_literal] + lower_literals
    # Put the highest-level lower literal at position 1 so the database can
    # watch it: after backtracking it is the most recently falsified literal.
    if watch_literal_index >= 0:
        learned[1], learned[watch_literal_index + 1] = (
            learned[watch_literal_index + 1],
            learned[1],
        )
    return AnalysisResult(
        learned_literals=learned,
        sources=sources,
        backtrack_level=backtrack_level,
        asserting_literal=asserting_literal,
    )


def _minimize_lower_literals(
    lower_literals: list[int],
    sources: list[int],
    db: ClauseDatabase,
    assignment: Assignment,
    bump_clause=None,
) -> None:
    """Self-subsumption minimization over the below-current-level literals.

    A literal ``lit`` can be resolved away against its variable's
    antecedent when every *other* antecedent literal is already in the
    clause: the resolution removes ``lit`` and adds nothing. Mutates
    ``lower_literals`` in place and appends the antecedents used to
    ``sources`` in resolution order.
    """
    remaining = set(lower_literals)
    for lit in list(lower_literals):
        var = lit if lit > 0 else -lit
        antecedent = assignment.antecedents[var]
        if antecedent == 0 or antecedent not in db:
            continue  # a decision, or its antecedent is gone
        others = [other for other in db.clause_literals(antecedent) if other != -lit]
        if -lit not in db.clause_literals(antecedent):
            continue  # not actually this variable's implying clause anymore
        if all(other in remaining for other in others):
            remaining.discard(lit)
            sources.append(antecedent)
            if bump_clause is not None:
                bump_clause(antecedent)
    if len(remaining) != len(lower_literals):
        lower_literals[:] = [lit for lit in lower_literals if lit in remaining]
