"""A tiny reference solver for cross-validation.

Plain recursive DLL with naive unit propagation — slow but simple enough
to trust. The test suite solves the same random formulas with this and the
CDCL engine and requires identical SAT/UNSAT answers.
"""

from __future__ import annotations

from repro.cnf import CnfFormula


def reference_is_satisfiable(formula: CnfFormula, _limit: int = 10**7) -> bool:
    """Decide satisfiability by naive DLL. Intended for small formulas."""
    clauses = [list(clause.literals) for clause in formula]
    return _dll(clauses, {})


def _simplify(clauses: list[list[int]], lit: int) -> list[list[int]] | None:
    """Assign ``lit`` true; None signals an empty (conflicting) clause."""
    out: list[list[int]] = []
    for clause in clauses:
        if lit in clause:
            continue
        reduced = [other for other in clause if other != -lit]
        if not reduced:
            return None
        out.append(reduced)
    return out


def _dll(clauses: list[list[int]], assignment: dict[int, bool]) -> bool:
    if any(not clause for clause in clauses):
        return False  # an input empty clause
    # Unit propagation.
    while True:
        unit = next((clause[0] for clause in clauses if len(clause) == 1), None)
        if unit is None:
            break
        clauses = _simplify(clauses, unit)
        if clauses is None:
            return False
    if not clauses:
        return True
    branch_lit = clauses[0][0]
    for lit in (branch_lit, -branch_lit):
        simplified = _simplify(clauses, lit)
        if simplified is not None and _dll(simplified, assignment):
            return True
    return False
