"""Clause database with two-watched-literal indexing and learned-clause
activity bookkeeping.

Clause IDs are the contract with the checker: originals get 1..m in file
order, learned clauses continue the numbering even across deletions (IDs are
never reused — the trace refers to clauses by ID forever).

Clauses that are antecedents of currently assigned variables are *locked*
and never deleted, per the paper: "the clauses that are antecedents of
currently assigned variables should always be kept by the solver because
they may be used in the future resolution process."
"""

from __future__ import annotations

from typing import Iterable

from repro.cnf import CnfFormula


def _watch_index(lit: int) -> int:
    """Map a literal to its slot in the watch array (2v / 2v+1)."""
    return 2 * lit if lit > 0 else -2 * lit + 1


class ClauseDatabase:
    """Mutable clause store for the solver.

    Literal lists are reordered in place so positions 0 and 1 always hold
    the watched literals (for clauses of length >= 2).
    """

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        self.lits: dict[int, list[int]] = {}  # cid -> literal list
        self.learned_ids: set[int] = set()
        self.activity: dict[int, float] = {}  # learned cid -> activity
        self.watches: list[list[int]] = [[] for _ in range(2 * num_vars + 2)]
        self.next_cid = 1
        self.num_original = 0
        # Learned clauses that must never be deleted: preprocessing
        # resolvents *replace* original clauses, so dropping them would
        # change the formula (unlike ordinary redundant learned clauses).
        self.protected: set[int] = set()
        self.empty_original: int | None = None  # cid of an input empty clause
        self.unit_originals: list[int] = []  # cids of input unit clauses
        self.cla_inc = 1.0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_formula(cls, formula: CnfFormula) -> "ClauseDatabase":
        db = cls(formula.num_vars)
        for clause in formula:
            db.add_original(list(clause.literals))
        return db

    def add_original(self, literals: list[int]) -> int:
        """Add an original clause; returns its ID."""
        cid = self.next_cid
        self.next_cid += 1
        self.num_original += 1
        self.lits[cid] = literals
        if not literals:
            if self.empty_original is None:
                self.empty_original = cid
        elif len(literals) == 1:
            self.unit_originals.append(cid)
        else:
            self._attach(cid)
        return cid

    def add_learned(self, literals: list[int], watch_hint: int | None = None) -> int:
        """Add a learned clause; caller orders/others via ``watch_hint``.

        ``watch_hint`` is the index of the literal that should share watch
        duty with position 0 (the asserting literal). The solver passes the
        highest-decision-level false literal so the watch invariant holds
        right after backtracking.
        """
        cid = self.next_cid
        self.next_cid += 1
        self.learned_ids.add(cid)
        self.activity[cid] = self.cla_inc
        self.lits[cid] = literals
        if len(literals) >= 2:
            if watch_hint is not None and watch_hint >= 2:
                literals[1], literals[watch_hint] = literals[watch_hint], literals[1]
            self._attach(cid)
        return cid

    def _attach(self, cid: int) -> None:
        lits = self.lits[cid]
        self.watches[_watch_index(lits[0])].append(cid)
        self.watches[_watch_index(lits[1])].append(cid)

    def _detach(self, cid: int) -> None:
        lits = self.lits[cid]
        for lit in lits[:2]:
            self.watches[_watch_index(lit)].remove(cid)

    # -- queries -----------------------------------------------------------

    def __contains__(self, cid: int) -> bool:
        return cid in self.lits

    def clause_literals(self, cid: int) -> list[int]:
        return self.lits[cid]

    def is_learned(self, cid: int) -> bool:
        return cid in self.learned_ids

    @property
    def num_learned(self) -> int:
        return len(self.learned_ids)

    def watchers_of(self, lit: int) -> list[int]:
        return self.watches[_watch_index(lit)]

    # -- learned clause activity / deletion ---------------------------------

    def bump_clause(self, cid: int) -> None:
        if cid in self.activity:
            self.activity[cid] += self.cla_inc
            if self.activity[cid] >= 1e100:
                self._rescale_activity()

    def decay_clause_activity(self, decay: float) -> None:
        self.cla_inc /= decay

    def _rescale_activity(self) -> None:
        for cid in self.activity:
            self.activity[cid] *= 1e-100
        self.cla_inc *= 1e-100

    def reduce_learned(self, locked: Iterable[int]) -> list[tuple[int, list[int]]]:
        """Delete roughly the lower-activity half of unlocked learned clauses.

        Binary learned clauses are kept (cheap and valuable). Returns the
        deleted clauses as ``(cid, literals)`` pairs — the literals feed
        DRUP deletion logging, the IDs feed the trace's deletion records.
        """
        locked_set = set(locked)
        candidates = [
            cid
            for cid in self.learned_ids
            if cid not in locked_set
            and cid not in self.protected
            and len(self.lits[cid]) > 2
        ]
        if not candidates:
            return []
        candidates.sort(key=lambda cid: self.activity[cid])
        victims = candidates[: max(1, len(candidates) // 2)]
        deleted: list[tuple[int, list[int]]] = []
        for cid in victims:
            self._detach(cid)
            deleted.append((cid, self.lits.pop(cid)))
            del self.activity[cid]
            self.learned_ids.remove(cid)
        return deleted
