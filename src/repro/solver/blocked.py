"""Blocked clause elimination (BCE).

A clause C containing literal l is *blocked* if every resolvent of C on l
(against each clause containing ~l) is a tautology. Blocked clauses can
be removed without affecting satisfiability (Kullmann): any model of the
reduced formula extends to one of the original by flipping l when C ends
up falsified.

Interplay with the checker is the pleasant part: removal only *shrinks*
what the solver may use, so an UNSAT trace over the reduced clause set is
automatically a valid proof for the original formula — no trace records
are needed (contrast with variable elimination, whose resolvents must be
recorded). SAT models are repaired in reverse removal order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.solver.database import ClauseDatabase


@dataclass
class BlockedClauseRecord:
    """One removed clause and its blocking literal."""

    literals: list[int]
    blocking_literal: int


@dataclass
class BceResult:
    records: list[BlockedClauseRecord] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return len(self.records)


def _resolvent_is_tautology(clause_a: list[int], clause_b: list[int], pivot: int) -> bool:
    """Tautology check for the resolvent of A (contains pivot) and B
    (contains -pivot), resolving on pivot."""
    literals_a = {lit for lit in clause_a if lit != pivot}
    for lit in clause_b:
        if lit != -pivot and -lit in literals_a:
            return True
    return False


def eliminate_blocked_clauses(
    db: ClauseDatabase,
    is_assigned,
    max_occurrences: int = 30,
) -> BceResult:
    """Remove blocked clauses from the database, to fixpoint.

    Only clauses whose variables are all unassigned are considered — this
    keeps level-0 antecedents untouchable, mirroring the variable
    eliminator's discipline.
    """
    result = BceResult()
    changed = True
    while changed:
        changed = False
        occurrences: dict[int, list[int]] = {}
        for cid, literals in db.lits.items():
            for lit in literals:
                occurrences.setdefault(lit, []).append(cid)

        for cid in list(db.lits):
            literals = db.lits.get(cid)
            if literals is None or not literals:
                continue
            if any(is_assigned(abs(lit)) for lit in literals):
                continue
            for lit in literals:
                opponents = occurrences.get(-lit, [])
                if len(opponents) > max_occurrences:
                    continue
                if all(
                    other == cid
                    or other not in db
                    or _resolvent_is_tautology(literals, db.lits[other], lit)
                    for other in opponents
                ):
                    if len(literals) >= 2:
                        db._detach(cid)
                    result.records.append(
                        BlockedClauseRecord(list(literals), blocking_literal=lit)
                    )
                    del db.lits[cid]
                    db.protected.discard(cid)
                    if cid in db.learned_ids:
                        db.learned_ids.remove(cid)
                        del db.activity[cid]
                    changed = True
                    break
    return result


def repair_model(model: dict[int, bool], records: list[BlockedClauseRecord]) -> None:
    """Extend a model of the reduced formula to the original, in place.

    Processes removals in reverse order: if a removed clause is falsified
    by the current model, flip its blocking literal (the blockedness
    condition guarantees no earlier-restored clause breaks).
    """
    for record in reversed(records):
        satisfied = any(
            model.get(abs(lit), False) == (lit > 0) for lit in record.literals
        )
        if not satisfied:
            model[abs(record.blocking_literal)] = record.blocking_literal > 0
