"""VSIDS-style decision heuristic with phase saving.

Chaff's contribution: each variable carries an activity score bumped when
the variable participates in conflict analysis; scores decay geometrically
so recent conflicts dominate. Selection uses a max-heap with lazy deletion.
"""

from __future__ import annotations

import heapq
import random

from repro.cnf import Assignment


class VsidsHeuristic:
    """Activity-driven branching with saved phases."""

    def __init__(
        self,
        num_vars: int,
        var_decay: float = 0.95,
        default_phase: bool = False,
        random_freq: float = 0.0,
        seed: int = 0,
    ):
        self.num_vars = num_vars
        self.activity = [0.0] * (num_vars + 1)
        self.phase = [default_phase] * (num_vars + 1)
        self.banned: set[int] = set()  # e.g. variables eliminated by preprocessing
        self.var_inc = 1.0
        self.var_decay = var_decay
        self.random_freq = random_freq
        self._rng = random.Random(seed)
        # Heap of (-activity, var); stale entries skipped at pop time.
        self._heap: list[tuple[float, int]] = [(0.0, v) for v in range(1, num_vars + 1)]
        heapq.heapify(self._heap)

    def bump(self, var: int) -> None:
        """Increase a variable's activity (it appeared in conflict analysis)."""
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            self._rescale()
        heapq.heappush(self._heap, (-self.activity[var], var))

    def decay(self) -> None:
        """Geometric decay, implemented by scaling the increment."""
        self.var_inc /= self.var_decay

    def _rescale(self) -> None:
        for var in range(1, self.num_vars + 1):
            self.activity[var] *= 1e-100
        self.var_inc *= 1e-100
        self._heap = [(-self.activity[v], v) for v in range(1, self.num_vars + 1)]
        heapq.heapify(self._heap)

    def save_phase(self, lit: int) -> None:
        """Remember the polarity a variable was last assigned."""
        self.phase[abs(lit)] = lit > 0

    def requeue(self, var: int) -> None:
        """Make a variable selectable again after backtracking."""
        heapq.heappush(self._heap, (-self.activity[var], var))

    def pick_branch(self, assignment: Assignment) -> int | None:
        """Return the decision literal, or None if all variables assigned."""
        if self.random_freq and self._rng.random() < self.random_freq:
            free = [
                v
                for v in range(1, self.num_vars + 1)
                if not assignment.is_assigned(v) and v not in self.banned
            ]
            if not free:
                return None
            var = self._rng.choice(free)
            return var if self.phase[var] else -var
        while self._heap:
            neg_act, var = heapq.heappop(self._heap)
            if assignment.is_assigned(var) or var in self.banned:
                continue
            if -neg_act != self.activity[var]:
                # Stale entry: a fresher one with the true activity exists.
                continue
            return var if self.phase[var] else -var
        # Heap exhausted: fall back to a linear scan (covers stale-heap cases).
        for var in range(1, self.num_vars + 1):
            if not assignment.is_assigned(var) and var not in self.banned:
                heapq.heappush(self._heap, (-self.activity[var], var))
                return var if self.phase[var] else -var
        return None
