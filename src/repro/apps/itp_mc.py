"""Unbounded model checking via interpolation (McMillan, CAV 2003).

The deepest "other application" of checked resolution proofs: BMC can only
refute or bound-check a property, but the interpolant of an UNSAT
unrolling is an *overapproximate image* of the reachable states. Iterating
images to a fixed point proves the property for **all** depths:

    R := Init
    loop:
        A := R(s0) AND T(s0, s1)
        B := T(s1 .. sk) AND Bad(s1 .. sk)
        if A AND B is SAT:
            R is Init  -> real counterexample (validated by simulation)
            otherwise  -> overapproximation too coarse: increase k
        else:
            I := interpolant(A, B) over the step-1 state variables
            if I implies the accumulated reach set: FIXED POINT -> proved
            R := I   (continue the inner loop from the overapproximation)

Every UNSAT answer along the way is certified by the resolution checker
(the interpolation construction refuses unchecked proofs), and every
counterexample is replayed through the transition circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.bmc_engine import BoundedModelChecker, Counterexample
from repro.bmc.transition import TransitionSystem
from repro.circuits.netlist import Circuit
from repro.circuits.tseitin import tseitin_encode
from repro.cnf import CnfFormula
from repro.interp import Interpolant, compute_interpolant
from repro.solver import Solver, SolverConfig
from repro.trace import InMemoryTraceWriter


@dataclass
class ItpMcResult:
    """Verdict of an interpolation-based model-checking run."""

    status: str  # "proved" | "counterexample" | "unknown"
    counterexample: Counterexample | None = None
    fixed_point_frontier: Circuit | None = None  # reach-set circuit, if proved
    bound_used: int = 0
    image_iterations: int = 0
    stats: dict = field(default_factory=dict)


class _ReachSet:
    """Disjunction of state-predicate circuits over the state bits."""

    def __init__(self, num_state_bits: int):
        self.num_state_bits = num_state_bits
        self.members: list[Circuit] = []

    def add(self, circuit: Circuit) -> None:
        if len(circuit.inputs) != self.num_state_bits:
            raise ValueError("reach-set member must range over the state bits")
        self.members.append(circuit)

    def union_circuit(self) -> Circuit:
        """One circuit computing the OR of every member."""
        union = Circuit(name="reach")
        state = union.add_inputs(self.num_state_bits)
        outs = []
        for member in self.members:
            remap = dict(zip(member.inputs, state))
            for gate in member.gates:
                remap[gate.output] = union.add_gate(
                    gate.gtype, *(remap[n] for n in gate.inputs)
                )
            outs.append(remap[member.outputs[0]])
        if not outs:
            union.mark_output(union.const(False))
        elif len(outs) == 1:
            union.mark_output(outs[0])
        else:
            union.mark_output(union.or_(*outs))
        return union


class InterpolationModelChecker:
    """McMillan's interpolation loop over a transition system."""

    def __init__(self, system: TransitionSystem, config: SolverConfig | None = None):
        if system.bad.inputs and len(system.bad.inputs) != system.num_state_bits:
            raise ValueError("bad circuit must range over the state bits")
        self.system = system
        self.config = config or SolverConfig()

    # -- public API -------------------------------------------------------------

    def prove(self, max_bound: int = 10, max_images: int = 50) -> ItpMcResult:
        """Try to decide the property outright.

        Returns "proved" (safe for every depth), "counterexample" (with a
        validated trace), or "unknown" (budgets exhausted).
        """
        initial_cex = self._check_initial_bad()
        if initial_cex is not None:
            return ItpMcResult(status="counterexample", counterexample=initial_cex)
        total_images = 0
        for bound in range(1, max_bound + 1):
            verdict, payload, images = self._round(bound, max_images - total_images)
            total_images += images
            if verdict == "proved":
                return ItpMcResult(
                    status="proved",
                    fixed_point_frontier=payload,
                    bound_used=bound,
                    image_iterations=total_images,
                )
            if verdict == "cex":
                return ItpMcResult(
                    status="counterexample",
                    counterexample=payload,
                    bound_used=bound,
                    image_iterations=total_images,
                )
            if total_images >= max_images:
                break
        return ItpMcResult(status="unknown", bound_used=max_bound, image_iterations=total_images)

    def _check_initial_bad(self) -> Counterexample | None:
        """Length-0 counterexample: an initial state that is already bad."""
        system = self.system
        formula = CnfFormula(0)
        state_vars = [formula.num_vars + i + 1 for i in range(system.num_state_bits)]
        formula.num_vars += system.num_state_bits
        for clause in system.init:
            formula.add_clause(
                [state_vars[abs(lit) - 1] * (1 if lit > 0 else -1) for lit in clause]
            )
        encoded = tseitin_encode(
            system.bad, formula, bindings=dict(zip(system.bad.inputs, state_vars))
        )
        formula.add_clause([encoded.var(system.bad.outputs[0])])
        result = Solver(formula, config=self.config).solve()
        if not result.is_sat:
            return None
        state = [result.model[var] for var in state_vars]
        counterexample = Counterexample(states=[state], inputs=[], bad_step=0)
        BoundedModelChecker(system, config=self.config)._validate_counterexample(
            counterexample
        )
        return counterexample

    # -- one bound's image iteration -----------------------------------------------

    def _round(self, bound: int, image_budget: int):
        system = self.system
        reach = _ReachSet(system.num_state_bits)
        frontier: Circuit | None = None  # None encodes "the real Init"
        images = 0
        while images < image_budget:
            built = self._build_query(frontier, bound)
            formula, a_ids, shared_state_vars, decode = built
            writer = InMemoryTraceWriter()
            result = Solver(formula, config=self.config, trace_writer=writer).solve()
            if result.status == "UNKNOWN":
                return "budget", None, images
            if result.is_sat:
                if frontier is None:
                    counterexample = decode(result.model)
                    return "cex", counterexample, images
                return "refine", None, images  # spurious: need a deeper bound
            interpolant = compute_interpolant(formula, writer.to_trace(), a_ids)
            images += 1
            image = self._interpolant_to_state_circuit(interpolant, shared_state_vars)
            if self._implied_by_reach(image, reach, include_init=True):
                return "proved", reach.union_circuit(), images
            reach.add(image)
            frontier = image
        return "budget", None, images

    # -- query construction ------------------------------------------------------------

    def _build_query(self, frontier: Circuit | None, bound: int):
        """CNF for frontier(s0) AND T(s0,s1) AND [T... AND Bad(s1..sk)].

        Returns (formula, a_clause_ids, step-1 state variables, decoder).
        The A-partition is everything over step-0/step-1 variables: the
        frontier constraint plus the first transition.
        """
        system = self.system
        formula = CnfFormula(0)
        state_nets = system.transition.inputs[: system.num_state_bits]
        input_nets = system.transition.inputs[system.num_state_bits :]

        state_vars = [[formula.num_vars + i + 1 for i in range(system.num_state_bits)]]
        formula.num_vars += system.num_state_bits

        if frontier is None:
            for clause in system.init:
                formula.add_clause(
                    [state_vars[0][abs(lit) - 1] * (1 if lit > 0 else -1) for lit in clause]
                )
        else:
            bindings = dict(zip(frontier.inputs, state_vars[0]))
            encoded = tseitin_encode(frontier, formula, bindings=bindings)
            formula.add_clause([encoded.var(frontier.outputs[0])])

        input_vars: list[list[int]] = []
        for _ in range(bound):
            bindings = dict(zip(state_nets, state_vars[-1]))
            encoded = tseitin_encode(system.transition, formula, bindings=bindings)
            state_vars.append([encoded.var(net) for net in system.transition.outputs])
            input_vars.append([encoded.var(net) for net in input_nets])
            if len(state_vars) == 2:
                a_boundary = formula.num_clauses  # A = clauses so far

        bad_vars = []
        for step_vars in state_vars[1:]:
            bindings = dict(zip(system.bad.inputs, step_vars))
            encoded = tseitin_encode(system.bad, formula, bindings=bindings)
            bad_vars.append(encoded.var(system.bad.outputs[0]))
        formula.add_clause(bad_vars)

        a_ids = set(range(1, a_boundary + 1))

        def decode(model) -> Counterexample:
            states = [[model[var] for var in step] for step in state_vars]
            inputs = [[model[var] for var in step] for step in input_vars]
            bad_step = 1 + next(
                index for index, var in enumerate(bad_vars) if model[var]
            )
            counterexample = Counterexample(states=states, inputs=inputs, bad_step=bad_step)
            BoundedModelChecker(system, config=self.config)._validate_counterexample(
                counterexample
            )
            return counterexample

        return formula, a_ids, state_vars[1], decode

    # -- interpolant plumbing --------------------------------------------------------------

    def _interpolant_to_state_circuit(
        self, interpolant: Interpolant, shared_state_vars: list[int]
    ) -> Circuit:
        """Rebase the interpolant circuit onto the state-bit interface.

        The A/B split guarantees shared variables are a subset of the
        step-1 state variables; unused state bits become don't-cares.
        """
        position_of = {var: index for index, var in enumerate(shared_state_vars)}
        for var in interpolant.input_vars:
            if var not in position_of:
                raise AssertionError(
                    "interpolant escaped the step-1 state interface — the "
                    "A/B partition is wrong"
                )
        rebased = Circuit(name="image")
        state = rebased.add_inputs(self.system.num_state_bits)
        remap = {
            net: state[position_of[var]]
            for net, var in zip(interpolant.circuit.inputs, interpolant.input_vars)
        }
        for gate in interpolant.circuit.gates:
            remap[gate.output] = rebased.add_gate(
                gate.gtype, *(remap[n] for n in gate.inputs)
            )
        rebased.mark_output(remap[interpolant.circuit.outputs[0]])
        return rebased

    def _implied_by_reach(
        self, image: Circuit, reach: _ReachSet, include_init: bool
    ) -> bool:
        """Fixed-point test: image(s) AND NOT (Init(s) OR reach(s)) UNSAT?"""
        formula = CnfFormula(0)
        state_vars = [formula.num_vars + i + 1 for i in range(self.system.num_state_bits)]
        formula.num_vars += self.system.num_state_bits

        encoded_image = tseitin_encode(
            image, formula, bindings=dict(zip(image.inputs, state_vars))
        )
        formula.add_clause([encoded_image.var(image.outputs[0])])

        negated_parts = []
        if include_init:
            init_circuit = self._init_as_circuit()
            encoded = tseitin_encode(
                init_circuit, formula, bindings=dict(zip(init_circuit.inputs, state_vars))
            )
            negated_parts.append(encoded.var(init_circuit.outputs[0]))
        for member in reach.members:
            encoded = tseitin_encode(
                member, formula, bindings=dict(zip(member.inputs, state_vars))
            )
            negated_parts.append(encoded.var(member.outputs[0]))
        for var in negated_parts:
            formula.add_clause([-var])
        return Solver(formula, config=self.config).solve().is_unsat

    def _init_as_circuit(self) -> Circuit:
        """The init CNF as an AND-of-ORs circuit over the state bits."""
        circuit = Circuit(name="init")
        state = circuit.add_inputs(self.system.num_state_bits)
        clause_nets = []
        for clause in self.system.init:
            literal_nets = [
                state[abs(lit) - 1] if lit > 0 else circuit.not_(state[abs(lit) - 1])
                for lit in clause
            ]
            clause_nets.append(
                literal_nets[0] if len(literal_nets) == 1 else circuit.or_(*literal_nets)
            )
        if not clause_nets:
            circuit.mark_output(circuit.const(True))
        elif len(clause_nets) == 1:
            circuit.mark_output(clause_nets[0])
        else:
            circuit.mark_output(circuit.and_(*clause_nets))
        return circuit
