"""A bounded model checker with validated verdicts at every bound.

Sweeps bounds 0..max_bound. At each bound:

* UNSAT — the resolution checker replays the proof before the bound is
  declared safe;
* SAT — the model is decoded into a concrete execution (states + inputs
  per step) and *replayed through the transition circuit*, so a reported
  counterexample is a real one by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bmc.transition import TransitionSystem
from repro.checker.depth_first import DepthFirstChecker
from repro.checker.report import CheckReport
from repro.circuits.tseitin import tseitin_encode
from repro.solver import Solver, SolverConfig
from repro.trace import InMemoryTraceWriter


@dataclass
class Counterexample:
    """A validated execution reaching a bad state."""

    states: list[list[bool]]  # state bits per step, step 0 first
    inputs: list[list[bool]]  # input bits per transition
    bad_step: int

    @property
    def length(self) -> int:
        return len(self.states) - 1


@dataclass
class BmcOutcome:
    """Result of a BMC sweep."""

    safe_through: int  # highest bound proven safe (-1 when none)
    counterexample: Counterexample | None = None
    proof_reports: list[CheckReport] = field(default_factory=list)

    @property
    def property_violated(self) -> bool:
        return self.counterexample is not None


class BoundedModelChecker:
    """Per-bound BMC driver over a transition system."""

    def __init__(self, system: TransitionSystem, config: SolverConfig | None = None):
        self.system = system
        self.config = config or SolverConfig()

    def check_bound(self, bound: int):
        """Decide one bound; returns ("safe", report) or ("cex", counterexample)."""
        formula, state_vars, input_vars = self._unroll_with_inputs(bound)

        bad_vars = []
        for step_vars in state_vars:
            bindings = dict(zip(self.system.bad.inputs, step_vars))
            encoded = tseitin_encode(self.system.bad, formula, bindings=bindings)
            bad_vars.append(encoded.var(self.system.bad.outputs[0]))
        formula.add_clause(bad_vars)

        writer = InMemoryTraceWriter()
        result = Solver(formula, config=self.config, trace_writer=writer).solve()
        if result.status == "UNKNOWN":
            raise RuntimeError(f"solver budget exhausted at bound {bound}")

        if result.is_unsat:
            report = DepthFirstChecker(formula, writer.to_trace()).check()
            report.raise_if_failed()
            return "safe", report

        assert result.model is not None
        states = [
            [result.model[var] for var in step_vars] for step_vars in state_vars
        ]
        inputs = [
            [result.model[var] for var in step_inputs] for step_inputs in input_vars
        ]
        bad_step = next(
            step for step, var in enumerate(bad_vars) if result.model[var]
        )
        counterexample = Counterexample(states=states, inputs=inputs, bad_step=bad_step)
        self._validate_counterexample(counterexample)
        return "cex", counterexample

    def run(self, max_bound: int) -> BmcOutcome:
        """Sweep bounds 0..max_bound, stopping at the first counterexample."""
        outcome = BmcOutcome(safe_through=-1)
        for bound in range(max_bound + 1):
            verdict, payload = self.check_bound(bound)
            if verdict == "cex":
                outcome.counterexample = payload
                return outcome
            outcome.proof_reports.append(payload)
            outcome.safe_through = bound
        return outcome

    # -- internals ---------------------------------------------------------------

    def _unroll_with_inputs(self, bound: int):
        """Like :func:`repro.bmc.unroll.unroll`, also returning input vars."""
        from repro.cnf import CnfFormula

        system = self.system
        formula = CnfFormula(0)
        state_vars = [[formula.num_vars + i + 1 for i in range(system.num_state_bits)]]
        formula.num_vars += system.num_state_bits
        for clause in system.init:
            formula.add_clause(
                [state_vars[0][abs(lit) - 1] * (1 if lit > 0 else -1) for lit in clause]
            )
        input_vars: list[list[int]] = []
        state_nets = system.transition.inputs[: system.num_state_bits]
        input_nets = system.transition.inputs[system.num_state_bits :]
        for _ in range(bound):
            bindings = dict(zip(state_nets, state_vars[-1]))
            encoded = tseitin_encode(system.transition, formula, bindings=bindings)
            state_vars.append([encoded.var(net) for net in system.transition.outputs])
            input_vars.append([encoded.var(net) for net in input_nets])
        return formula, state_vars, input_vars

    def _validate_counterexample(self, cex: Counterexample) -> None:
        """Replay the execution through the real circuits."""
        system = self.system
        # Initial state must satisfy the init clauses.
        for clause in system.init:
            if not any(
                cex.states[0][abs(lit) - 1] == (lit > 0) for lit in clause
            ):
                raise AssertionError("counterexample violates the initial condition")
        for step in range(len(cex.states) - 1):
            simulated = system.transition.simulate(
                list(cex.states[step]) + list(cex.inputs[step])
            )
            if simulated != cex.states[step + 1]:
                raise AssertionError(
                    f"counterexample transition at step {step} does not "
                    "match the transition circuit"
                )
        bad_value = system.bad.simulate(list(cex.states[cex.bad_step]))[0]
        if not bad_value:
            raise AssertionError("counterexample does not actually reach a bad state")
