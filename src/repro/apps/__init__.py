"""Validated EDA application flows.

The paper's opening list of SAT-powered EDA applications — "test pattern
generation, combinational equivalence checking, microprocessor
verification, bounded model checking, FPGA routing" — motivates why
solver answers must be validated: these flows are mission critical. This
package builds three of those flows end-to-end on top of the solver and
checkers, with *every* answer independently validated:

* :class:`EquivalenceChecker` — CEC with verified equivalence proofs and
  simulation-confirmed counterexamples.
* ATPG (:func:`generate_test`, :func:`run_atpg`) — stuck-at test pattern
  generation with verified redundant-fault proofs.
* :class:`BoundedModelChecker` — BMC sweeps with verified safe bounds and
  simulation-confirmed counterexample traces.
"""

from repro.apps.cec import EquivalenceChecker, EquivalenceResult
from repro.apps.atpg import (
    StuckAtFault,
    TestResult,
    AtpgReport,
    generate_test,
    enumerate_faults,
    run_atpg,
)
from repro.apps.bmc_engine import (
    BoundedModelChecker,
    BmcOutcome,
    Counterexample,
)
from repro.apps.itp_mc import InterpolationModelChecker, ItpMcResult
from repro.apps.sec import SecResult, build_product_system, check_sequential_equivalence

__all__ = [
    "EquivalenceChecker",
    "EquivalenceResult",
    "StuckAtFault",
    "TestResult",
    "AtpgReport",
    "generate_test",
    "enumerate_faults",
    "run_atpg",
    "BoundedModelChecker",
    "BmcOutcome",
    "Counterexample",
    "InterpolationModelChecker",
    "ItpMcResult",
    "SecResult",
    "build_product_system",
    "check_sequential_equivalence",
]
