"""SAT-based ATPG: stuck-at test pattern generation with validated answers.

The paper's first-listed application. For a stuck-at fault on some net, a
*test vector* is an input assignment under which the good and faulty
circuits produce different outputs. SAT formulation: miter the good
circuit against a copy with the faulted net forced to a constant; a model
is a test vector (validated here by simulating the fault), and UNSAT —
validated by the resolution checker — proves the fault *untestable*
(redundant logic, which synthesis can remove).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.cec import EquivalenceChecker
from repro.checker.report import CheckReport
from repro.circuits.netlist import Circuit
from repro.solver import SolverConfig
from repro.solver.result import SolverStats


@dataclass(frozen=True)
class StuckAtFault:
    """Net ``net`` permanently stuck at ``value``."""

    net: int
    value: bool

    def __str__(self) -> str:
        return f"net{self.net}/sa{1 if self.value else 0}"


@dataclass
class TestResult:
    """ATPG outcome for one fault."""

    fault: StuckAtFault
    testable: bool | None  # None when the solver hit a budget
    vector: list[bool] | None = None
    good_outputs: list[bool] | None = None
    faulty_outputs: list[bool] | None = None
    proof_report: CheckReport | None = None  # untestability proof
    solver_stats: SolverStats = field(default_factory=SolverStats)


@dataclass
class AtpgReport:
    """Whole-circuit ATPG summary."""

    results: list[TestResult] = field(default_factory=list)

    @property
    def testable(self) -> list[TestResult]:
        return [r for r in self.results if r.testable]

    @property
    def untestable(self) -> list[TestResult]:
        return [r for r in self.results if r.testable is False]

    @property
    def fault_coverage(self) -> float:
        if not self.results:
            return 1.0
        return len(self.testable) / len(self.results)


def inject_fault(circuit: Circuit, fault: StuckAtFault) -> Circuit:
    """Copy ``circuit`` with the faulted net replaced by a constant.

    Every *consumer* of the net (gates and outputs) sees the constant; the
    net's own driver is left in place (its fan-out is simply cut), which
    matches the standard stuck-at model.
    """
    known_nets = set(circuit.inputs) | {gate.output for gate in circuit.gates}
    if fault.net not in known_nets:
        raise ValueError(f"fault on unknown net {fault.net}")
    faulty = Circuit(name=f"{circuit.name}_{fault}")
    remap: dict[int, int] = {}
    for net in circuit.inputs:
        remap[net] = faulty.add_input()
    constant = faulty.const(fault.value)

    def read(net: int) -> int:
        if net == fault.net:
            return constant
        return remap[net]

    for gate in circuit.gates:
        remap[gate.output] = faulty.add_gate(gate.gtype, *(read(n) for n in gate.inputs))
    for net in circuit.outputs:
        faulty.mark_output(read(net))
    return faulty


def generate_test(
    circuit: Circuit,
    fault: StuckAtFault,
    config: SolverConfig | None = None,
) -> TestResult:
    """Find a test vector for one fault, or prove it untestable."""
    faulty = inject_fault(circuit, fault)
    outcome = EquivalenceChecker(circuit, faulty, config=config).run()

    if outcome.equivalent is None:
        return TestResult(fault=fault, testable=None, solver_stats=outcome.solver_stats)
    if outcome.equivalent:
        # Good == faulty on all inputs: the fault is untestable, and we
        # hold a checked resolution proof of that.
        return TestResult(
            fault=fault,
            testable=False,
            proof_report=outcome.proof_report,
            solver_stats=outcome.solver_stats,
        )
    return TestResult(
        fault=fault,
        testable=True,
        vector=outcome.counterexample,
        good_outputs=outcome.left_outputs,
        faulty_outputs=outcome.right_outputs,
        solver_stats=outcome.solver_stats,
    )


def enumerate_faults(circuit: Circuit) -> list[StuckAtFault]:
    """Both stuck-at faults on every gate output and primary input."""
    nets = list(circuit.inputs) + [gate.output for gate in circuit.gates]
    return [StuckAtFault(net, value) for net in nets for value in (False, True)]


def run_atpg(
    circuit: Circuit,
    faults: list[StuckAtFault] | None = None,
    config: SolverConfig | None = None,
) -> AtpgReport:
    """ATPG over a fault list (default: the full stuck-at fault set)."""
    report = AtpgReport()
    for fault in faults if faults is not None else enumerate_faults(circuit):
        report.results.append(generate_test(circuit, fault, config=config))
    return report
