"""Sequential equivalence checking (SEC) for Moore-style designs.

Builds the *product machine* of two sequential circuits driven by the
same primary inputs; the bad state asserts that designated state elements
(the observable registers) disagree. Bounded equivalence comes from the
validated BMC engine; full equivalence from the interpolation model
checker — so "sequentially equivalent" arrives with a machine-checked
proof, and "not equivalent" with a replayable distinguishing input
sequence.

Moore-style means the compared observables are registers (state), not
combinational outputs — the restriction inherited from
``to_transition_system``'s state-only bad cones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.bmc_engine import BoundedModelChecker, Counterexample
from repro.apps.itp_mc import InterpolationModelChecker, ItpMcResult
from repro.bmc.transition import TransitionSystem
from repro.circuits.netlist import Circuit
from repro.circuits.sequential import SequentialCircuit
from repro.solver import SolverConfig


@dataclass
class SecResult:
    """Verdict of a sequential equivalence check."""

    equivalent: bool | None  # None = undecided within budgets
    proved_unbounded: bool = False
    bound_checked: int = -1
    distinguishing_run: Counterexample | None = None


def build_product_system(
    left: SequentialCircuit,
    right: SequentialCircuit,
    observed_left: list[int] | None = None,
    observed_right: list[int] | None = None,
    name: str = "product",
) -> TransitionSystem:
    """Product machine whose bad state is "observed registers disagree".

    ``observed_left`` / ``observed_right`` are register indices to compare
    (defaults: all registers, which then must be equally many).
    """
    if left.num_primary_inputs != right.num_primary_inputs:
        raise ValueError("designs must share the primary-input interface")
    observed_left = list(range(left.num_registers)) if observed_left is None else observed_left
    observed_right = (
        list(range(right.num_registers)) if observed_right is None else observed_right
    )
    if len(observed_left) != len(observed_right):
        raise ValueError("observed register lists must pair up")
    for index in observed_left:
        if not 0 <= index < left.num_registers:
            raise ValueError(f"left register index {index} out of range")
    for index in observed_right:
        if not 0 <= index < right.num_registers:
            raise ValueError(f"right register index {index} out of range")

    num_inputs = left.num_primary_inputs
    total_state = left.num_registers + right.num_registers

    transition = Circuit(name=f"{name}_T")
    state_nets = transition.add_inputs(total_state)
    input_nets = transition.add_inputs(num_inputs)

    def splice(design: SequentialCircuit, state_slice: list[int]) -> list[int]:
        remap = dict(
            zip(design.core.inputs, state_slice + input_nets)
        )
        for gate in design.core.gates:
            remap[gate.output] = transition.add_gate(
                gate.gtype, *(remap[n] for n in gate.inputs)
            )
        return [remap[register.next_input] for register in design.registers]

    left_next = splice(left, state_nets[: left.num_registers])
    right_next = splice(right, state_nets[left.num_registers :])
    for net in left_next + right_next:
        transition.mark_output(transition.buf(net))

    bad = Circuit(name=f"{name}_bad")
    bad_state = bad.add_inputs(total_state)
    differences = [
        bad.xor(bad_state[l_index], bad_state[left.num_registers + r_index])
        for l_index, r_index in zip(observed_left, observed_right)
    ]
    bad.mark_output(differences[0] if len(differences) == 1 else bad.or_(*differences))

    init = []
    for index, register in enumerate(left.registers):
        init.append([(index + 1) if register.init else -(index + 1)])
    offset = left.num_registers
    for index, register in enumerate(right.registers):
        position = offset + index + 1
        init.append([position if register.init else -position])

    return TransitionSystem(
        num_state_bits=total_state,
        num_input_bits=num_inputs,
        init=init,
        transition=transition,
        bad=bad,
        name=name,
    )


def check_sequential_equivalence(
    left: SequentialCircuit,
    right: SequentialCircuit,
    bound: int = 10,
    prove: bool = True,
    observed_left: list[int] | None = None,
    observed_right: list[int] | None = None,
    config: SolverConfig | None = None,
    max_images: int = 50,
) -> SecResult:
    """Decide observable equivalence of two Moore designs.

    With ``prove`` (default) the interpolation engine attempts a full
    unbounded proof first; bounded BMC is the fallback (and the
    counterexample finder).
    """
    system = build_product_system(
        left, right, observed_left=observed_left, observed_right=observed_right
    )

    if prove:
        outcome: ItpMcResult = InterpolationModelChecker(system, config=config).prove(
            max_bound=bound, max_images=max_images
        )
        if outcome.status == "proved":
            return SecResult(equivalent=True, proved_unbounded=True)
        if outcome.status == "counterexample":
            return SecResult(
                equivalent=False, distinguishing_run=outcome.counterexample
            )

    bmc = BoundedModelChecker(system, config=config).run(max_bound=bound)
    if bmc.property_violated:
        return SecResult(equivalent=False, distinguishing_run=bmc.counterexample)
    return SecResult(equivalent=None, bound_checked=bmc.safe_through)
