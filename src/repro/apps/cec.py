"""Combinational equivalence checking with validated answers.

Both verdicts are independently confirmed before being reported:

* "equivalent" — the solver's UNSAT proof on the miter is replayed by a
  resolution checker;
* "not equivalent" — the satisfying assignment is decoded into an input
  vector and *simulated* through both circuits, which must disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checker.depth_first import DepthFirstChecker
from repro.checker.report import CheckReport
from repro.circuits.miter import build_miter
from repro.circuits.netlist import Circuit
from repro.circuits.tseitin import tseitin_encode
from repro.cnf import CnfFormula
from repro.solver import Solver, SolverConfig
from repro.solver.result import SolverStats
from repro.trace import InMemoryTraceWriter


@dataclass
class EquivalenceResult:
    """Verdict of a CEC run."""

    equivalent: bool | None  # None when the solver hit a budget
    counterexample: list[bool] | None = None  # input vector, if inequivalent
    left_outputs: list[bool] | None = None
    right_outputs: list[bool] | None = None
    proof_report: CheckReport | None = None
    solver_stats: SolverStats = field(default_factory=SolverStats)


class EquivalenceChecker:
    """One-shot CEC between two circuits with matching interfaces."""

    def __init__(self, left: Circuit, right: Circuit, config: SolverConfig | None = None):
        self.left = left
        self.right = right
        self.config = config or SolverConfig()
        self.miter = build_miter(left, right)

    def run(self) -> EquivalenceResult:
        formula = CnfFormula(0)
        encoded = tseitin_encode(self.miter, formula)
        formula.add_clause([encoded.var(self.miter.outputs[0])])

        writer = InMemoryTraceWriter()
        result = Solver(formula, config=self.config, trace_writer=writer).solve()

        if result.status == "UNKNOWN":
            return EquivalenceResult(equivalent=None, solver_stats=result.stats)

        if result.is_sat:
            assert result.model is not None
            vector = [
                result.model[encoded.var(net)] for net in self.miter.inputs
            ]
            left_out = self.left.simulate(vector)
            right_out = self.right.simulate(vector)
            if left_out == right_out:
                raise AssertionError(
                    "solver produced a spurious counterexample — its model "
                    "does not distinguish the circuits"
                )
            return EquivalenceResult(
                equivalent=False,
                counterexample=vector,
                left_outputs=left_out,
                right_outputs=right_out,
                solver_stats=result.stats,
            )

        report = DepthFirstChecker(formula, writer.to_trace()).check()
        report.raise_if_failed()
        return EquivalenceResult(
            equivalent=True, proof_report=report, solver_stats=result.stats
        )
