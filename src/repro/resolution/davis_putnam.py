"""The classic Davis-Putnam procedure (the paper's [8]).

Resolution-based variable elimination: pick a variable, replace all
clauses mentioning it by all their resolvents, repeat. Sound and complete
— "the classic DP algorithm is based on this [resolution]" — but "hard to
use in practice due to prohibitive space requirements, and over the years
has given way to search algorithms based on DLL" (§1). The benchmark
harness quantifies exactly that blow-up against the CDCL engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.cnf import CnfFormula


@dataclass
class DavisPutnamResult:
    """Outcome of a DP run, with the space statistics that doomed it."""

    status: str  # "SAT" | "UNSAT" | "UNKNOWN" (clause budget exhausted)
    eliminated_variables: int
    peak_clauses: int
    total_resolvents: int


def _min_occurrence_variable(clauses: set[FrozenSet[int]]) -> int | None:
    """Pick the variable whose elimination generates the fewest resolvents
    (the standard min-degree-style heuristic)."""
    positive: dict[int, int] = {}
    negative: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            if lit > 0:
                positive[lit] = positive.get(lit, 0) + 1
            else:
                negative[-lit] = negative.get(-lit, 0) + 1
    best_var = None
    best_cost = None
    for var in set(positive) | set(negative):
        cost = positive.get(var, 0) * negative.get(var, 0)
        if best_cost is None or cost < best_cost:
            best_var, best_cost = var, cost
    return best_var


def davis_putnam(
    formula: CnfFormula,
    clause_limit: int | None = None,
) -> DavisPutnamResult:
    """Decide satisfiability by ordered resolution (variable elimination).

    ``clause_limit`` bounds the working clause set; exceeding it returns
    status UNKNOWN — the space blow-up the paper cites as DP's downfall,
    made observable instead of fatal.
    """
    clauses: set[FrozenSet[int]] = set()
    for clause in formula:
        if clause.is_tautology:
            continue
        clauses.add(frozenset(clause.literals))
    if frozenset() in clauses:
        return DavisPutnamResult("UNSAT", 0, len(clauses), 0)

    eliminated = 0
    peak = len(clauses)
    resolvents_made = 0

    while clauses:
        var = _min_occurrence_variable(clauses)
        if var is None:
            break  # only the empty set of literals left (can't happen here)
        with_pos = [c for c in clauses if var in c]
        with_neg = [c for c in clauses if -var in c]
        others = {c for c in clauses if var not in c and -var not in c}

        resolvents: set[FrozenSet[int]] = set()
        for pos_clause in with_pos:
            for neg_clause in with_neg:
                resolvent = (pos_clause | neg_clause) - {var, -var}
                resolvents_made += 1
                if any(-lit in resolvent for lit in resolvent):
                    continue  # tautology: drop
                if not resolvent:
                    return DavisPutnamResult(
                        "UNSAT", eliminated + 1, peak, resolvents_made
                    )
                resolvents.add(resolvent)

        clauses = others | resolvents
        eliminated += 1
        peak = max(peak, len(clauses))
        if clause_limit is not None and len(clauses) > clause_limit:
            return DavisPutnamResult("UNKNOWN", eliminated, peak, resolvents_made)

    # All variables eliminated without deriving the empty clause.
    return DavisPutnamResult("SAT", eliminated, peak, resolvents_made)
