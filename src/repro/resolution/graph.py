"""Explicit resolution-proof DAGs.

"Essentially the checker creates and traverses the resolution graph,
which is a directed acyclic graph that describes the sequence of
resolutions starting from the original clauses at the leaves and ending
with the empty clause at the root." (§3.1)

This module materializes that graph: leaves are original clauses,
internal nodes are learned clauses (edges to their resolve sources), and
the root is the empty clause derived in the final phase. Useful for proof
analytics (size, depth, core width) and for downstream applications that
consume proofs rather than just verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.checker.depth_first import DepthFirstChecker
from repro.checker.level_zero import LevelZeroState, derive_empty_clause
from repro.cnf import CnfFormula
from repro.trace.records import Trace

EMPTY_CLAUSE_ID = 0  # reserved node ID for the derived empty clause


@dataclass
class ProofStats:
    """Summary numbers for a resolution proof DAG."""

    num_nodes: int
    num_leaves: int
    num_internal: int
    num_edges: int
    depth: int
    total_resolutions: int
    core_clauses: int
    core_variables: int


@dataclass
class ResolutionGraph:
    """A verified resolution derivation of the empty clause.

    ``parents[cid]`` lists the resolve sources (in resolution order) of
    each derived node; leaves (original clauses) have no entry. Node
    ``EMPTY_CLAUSE_ID`` is the empty clause root; its parents are the
    final conflicting clause followed by the level-0 antecedents used.
    """

    literals: dict[int, FrozenSet[int]] = field(default_factory=dict)
    parents: dict[int, tuple[int, ...]] = field(default_factory=dict)
    num_original: int = 0

    @classmethod
    def from_trace(cls, formula: CnfFormula, trace: Trace) -> "ResolutionGraph":
        """Build (and fully validate) the proof DAG for an UNSAT trace.

        Runs the depth-first checker under the hood; raises the checker's
        failure if the trace does not constitute a valid proof.
        """
        checker = DepthFirstChecker(formula, trace)
        report = checker.check()
        report.raise_if_failed()

        graph = cls(num_original=trace.header.num_original_clauses)
        # Nodes: everything the checker built (originals it touched
        # included). The kernel engine stores clauses as interned int
        # arrays; the graph's node payload is declared as frozensets, so
        # coerce at this boundary.
        for cid, lits in checker._built.items():
            graph.literals[cid] = frozenset(lits)
        for cid in list(graph.literals):
            if cid > graph.num_original:
                graph.parents[cid] = trace.learned[cid].sources

        # Re-run the final phase to recover the root's parent order.
        final_cid = trace.final_conflicts[0]
        level_zero = LevelZeroState(trace.level_zero)
        used: list[int] = []
        derive_empty_clause(
            final_cid,
            graph.literals[final_cid],
            level_zero,
            get_clause=lambda cid: graph.literals[cid]
            if cid in graph.literals
            else frozenset(formula[cid].literals),
            on_use=used.append,
        )
        for cid in used:
            if cid not in graph.literals:
                graph.literals[cid] = frozenset(formula[cid].literals)
        graph.literals[EMPTY_CLAUSE_ID] = frozenset()
        graph.parents[EMPTY_CLAUSE_ID] = tuple(used)
        return graph

    # -- queries ---------------------------------------------------------------

    def is_leaf(self, cid: int) -> bool:
        return cid not in self.parents

    def leaves(self) -> set[int]:
        """Original clause IDs that participate in the proof."""
        return {cid for cid in self.literals if self.is_leaf(cid) and cid != EMPTY_CLAUSE_ID}

    def depth_of(self, cid: int) -> int:
        """Longest leaf-to-node path length (0 for leaves)."""
        memo: dict[int, int] = {}
        stack = [cid]
        while stack:
            node = stack[-1]
            if node in memo:
                stack.pop()
                continue
            if self.is_leaf(node):
                memo[node] = 0
                stack.pop()
                continue
            pending = [p for p in self.parents[node] if p not in memo]
            if pending:
                stack.extend(pending)
                continue
            memo[node] = 1 + max(memo[p] for p in self.parents[node])
            stack.pop()
        return memo[cid]

    def stats(self) -> ProofStats:
        leaves = self.leaves()
        internal = [cid for cid in self.parents if cid != EMPTY_CLAUSE_ID]
        edges = sum(len(sources) for sources in self.parents.values())
        resolutions = sum(
            len(sources) - 1 for sources in self.parents.values()
        )
        variables = {abs(lit) for cid in leaves for lit in self.literals[cid]}
        return ProofStats(
            num_nodes=len(self.literals),
            num_leaves=len(leaves),
            num_internal=len(internal),
            num_edges=edges,
            depth=self.depth_of(EMPTY_CLAUSE_ID),
            total_resolutions=resolutions,
            core_clauses=len(leaves),
            core_variables=len(variables),
        )

    def check_acyclic(self) -> bool:
        """Defensive check: derived nodes only reference smaller IDs
        (the root references anything)."""
        for cid, sources in self.parents.items():
            if cid == EMPTY_CLAUSE_ID:
                continue
            if any(source >= cid for source in sources):
                return False
        return True
