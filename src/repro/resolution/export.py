"""Exports of resolution-proof DAGs: networkx graphs and Graphviz DOT.

For proof analytics (centrality of clauses, depth/width profiles) and for
eyeballing small proofs while debugging a solver.
"""

from __future__ import annotations

from repro.resolution.graph import EMPTY_CLAUSE_ID, ResolutionGraph


def _node_kind(graph: ResolutionGraph, cid: int) -> str:
    if cid == EMPTY_CLAUSE_ID:
        return "empty"
    if cid <= graph.num_original:
        return "original"
    return "learned"


def _label(graph: ResolutionGraph, cid: int) -> str:
    if cid == EMPTY_CLAUSE_ID:
        return "[] (empty)"
    literals = " ".join(str(lit) for lit in sorted(graph.literals[cid], key=abs))
    return f"{cid}: {literals}"


def to_networkx(graph: ResolutionGraph):
    """Build a ``networkx.DiGraph`` with edges from sources to resolvents.

    Node attributes: ``kind`` (original / learned / empty), ``literals``
    (tuple), ``num_literals``. Edge attribute ``order`` is the source's
    position in the resolution chain.
    """
    import networkx as nx

    digraph = nx.DiGraph()
    for cid, literals in graph.literals.items():
        digraph.add_node(
            cid,
            kind=_node_kind(graph, cid),
            literals=tuple(sorted(literals, key=abs)),
            num_literals=len(literals),
        )
    for cid, sources in graph.parents.items():
        for order, source in enumerate(sources):
            digraph.add_edge(source, cid, order=order)
    return digraph


def to_dot(graph: ResolutionGraph, max_nodes: int = 200) -> str:
    """Render the proof DAG as Graphviz DOT (small proofs only).

    Raises ValueError when the proof exceeds ``max_nodes`` — a plot that
    size is unreadable anyway; use :func:`to_networkx` for analytics.
    """
    if len(graph.literals) > max_nodes:
        raise ValueError(
            f"proof has {len(graph.literals)} nodes (> {max_nodes}); "
            "use to_networkx for large proofs"
        )
    shapes = {"original": "box", "learned": "ellipse", "empty": "doublecircle"}
    lines = ["digraph proof {", "  rankdir=BT;"]
    for cid in sorted(graph.literals):
        kind = _node_kind(graph, cid)
        label = _label(graph, cid).replace('"', r"\"")
        lines.append(f'  n{cid} [shape={shapes[kind]}, label="{label}"];')
    for cid, sources in sorted(graph.parents.items()):
        for source in sources:
            lines.append(f"  n{source} -> n{cid};")
    lines.append("}")
    return "\n".join(lines)
