"""Resolution proofs as first-class objects, plus the Davis-Putnam baseline.

The paper's Lemma: a CNF formula is unsatisfiable if the empty clause can
be derived from it by resolution. :class:`ResolutionGraph` materializes
such a derivation as an explicit DAG (handy for proof analytics and for
the §4 applications); :func:`davis_putnam` is the classic 1960 resolution
procedure the paper contrasts with DLL search — correct, but with the
exponential space appetite that made the field switch to search.
"""

from repro.resolution.graph import ResolutionGraph, ProofStats
from repro.resolution.davis_putnam import davis_putnam, DavisPutnamResult
from repro.resolution.export import to_networkx, to_dot

__all__ = [
    "ResolutionGraph",
    "ProofStats",
    "davis_putnam",
    "DavisPutnamResult",
    "to_networkx",
    "to_dot",
]
