"""Export the benchmark suite as DIMACS files with a manifest.

Lets the generated instances be fed to *other* SAT solvers/checkers (or
archived alongside experiment results), the way the paper's benchmark
files circulated.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cnf import write_dimacs_file
from repro.experiments.suite import core_suite, default_suite


def export_suite(
    directory: str | Path,
    scale: str = "medium",
    include_core_suite: bool = True,
) -> dict:
    """Write every suite instance to ``directory``; returns the manifest.

    The manifest (also written as ``manifest.json``) records, per
    instance: file name, family, the paper instance it stands in for, and
    size statistics.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict = {"scale": scale, "instances": []}

    instances = list(default_suite(scale))
    if include_core_suite:
        instances += [
            instance
            for instance in core_suite(scale)
            if instance.name not in {i.name for i in instances}
        ]

    for instance in instances:
        formula = instance.build()
        filename = f"{instance.name}.cnf"
        comment = (
            f"{instance.name} | family: {instance.family} | "
            f"paper analog: {instance.paper_analog} | scale: {scale}"
        )
        write_dimacs_file(formula, directory / filename, comment=comment)
        manifest["instances"].append(
            {
                "file": filename,
                "name": instance.name,
                "family": instance.family,
                "paper_analog": instance.paper_analog,
                "num_vars": formula.num_vars,
                "num_clauses": formula.num_clauses,
            }
        )

    with open(directory / "manifest.json", "w", encoding="ascii") as handle:
        json.dump(manifest, handle, indent=2)
    return manifest
