"""Experiment harness: regenerates the paper's Tables 1-3 and the §4/§5
remarks (trace-format compaction, check-vs-solve ratio, hybrid checker).

Entry points:

* ``python -m repro.experiments table1`` — trace-generation overhead.
* ``python -m repro.experiments table2`` — DF vs BF checker comparison.
* ``python -m repro.experiments table3`` — iterated unsat-core extraction.
* ``python -m repro.experiments formats`` — ASCII vs binary trace sizes.
* ``python -m repro.experiments all`` — everything, in order.
"""

from repro.experiments.suite import BenchmarkInstance, default_suite, core_suite
from repro.experiments.runner import InstanceResult, run_instance
from repro.experiments.tables import (
    table1_rows,
    table2_rows,
    table3_rows,
    format_table,
    render_table1,
    render_table2,
    render_table3,
    render_formats_table,
)

__all__ = [
    "BenchmarkInstance",
    "default_suite",
    "core_suite",
    "InstanceResult",
    "run_instance",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "format_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_formats_table",
]
