"""The benchmark suite: synthetic analogs of the paper's Table 1 instances.

Every instance is generated deterministically. Three scales:

* ``small``  — seconds for the full pipeline; used by the test suite.
* ``medium`` — the default; solve times from ~0.05 s to a few seconds.
* ``large``  — the EXPERIMENTS.md runs; the hardest instances take tens of
  seconds in pure Python, mirroring the paper's spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bmc import bmc_cnf, counter_system, lfsr_system
from repro.circuits import (
    adder_equivalence_miter,
    miter_to_cnf,
    multiplier_commutativity_miter,
    random_cec_miter,
    shifter_equivalence_miter,
)
from repro.cnf import CnfFormula
from repro.generators import (
    dense_channel_instance,
    pigeonhole,
    random_ksat,
    swap_planning,
)


@dataclass(frozen=True)
class BenchmarkInstance:
    """A named, generated-on-demand unsatisfiable instance."""

    name: str
    family: str  # which paper family this stands in for
    paper_analog: str  # the Table 1 instance it mirrors
    factory: Callable[[], CnfFormula]

    def build(self) -> CnfFormula:
        return self.factory()


def _scaled(scale: str, small, medium, large):
    try:
        return {"small": small, "medium": medium, "large": large}[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; use small/medium/large") from None


def default_suite(scale: str = "medium") -> list[BenchmarkInstance]:
    """The Table 1/Table 2 suite, ordered roughly by solve time."""
    php_a = _scaled(scale, (5, 4), (7, 6), (8, 7))
    php_b = _scaled(scale, (6, 5), (8, 7), (9, 8))
    adder_w = _scaled(scale, 8, 16, 24)
    shift_w = _scaled(scale, 8, 16, 16)
    mult_w = _scaled(scale, 3, 4, 5)
    cec = _scaled(scale, (12, 80, 4), (20, 250, 8), (24, 400, 8))
    ksat = _scaled(scale, (40, 180), (80, 360), (120, 530))
    fpga = _scaled(scale, (4, 6, 10), (7, 9, 30), (8, 10, 40))
    swap = _scaled(scale, (4, 8), (5, 12), (6, 16))
    counter = _scaled(scale, (5, 20, 15), (6, 40, 30), (7, 80, 60))
    lfsr = _scaled(scale, (5, 8), (8, 16), (10, 24))

    return [
        BenchmarkInstance(
            "cec_rand",
            "combinational equivalence checking",
            "c5135 / c7225",
            lambda: miter_to_cnf(random_cec_miter(*cec, seed=11)),
        ),
        BenchmarkInstance(
            "bw_swap",
            "AI planning",
            "bw_large.d",
            lambda: swap_planning(*swap),
        ),
        BenchmarkInstance(
            "barrel_counter",
            "bounded model checking",
            "barrel",
            lambda: bmc_cnf(
                counter_system(counter[0], counter[1], with_enable=True), counter[2]
            ),
        ),
        BenchmarkInstance(
            "lfsr_bmc",
            "bounded model checking",
            "longmult (BMC side)",
            lambda: bmc_cnf(lfsr_system(lfsr[0]), lfsr[1]),
        ),
        BenchmarkInstance(
            "dlx_adder_eq",
            "microprocessor verification",
            "2dlx_cc_mc_ex_bp_f",
            lambda: miter_to_cnf(adder_equivalence_miter(adder_w, block=4)),
        ),
        BenchmarkInstance(
            "vliw_shift_eq",
            "microprocessor verification",
            "9vliw_bp_mc",
            lambda: miter_to_cnf(shifter_equivalence_miter(shift_w)),
        ),
        BenchmarkInstance(
            "aim_ksat",
            "random (control)",
            "(none - control family)",
            lambda: random_ksat(*ksat, seed=12),
        ),
        BenchmarkInstance(
            "longmult_comm",
            "multiplier equivalence",
            "longmult12",
            lambda: miter_to_cnf(multiplier_commutativity_miter(mult_w)),
        ),
        BenchmarkInstance(
            "fpga_route",
            "FPGA routing",
            "too_largefs3w8v262",
            lambda: dense_channel_instance(*fpga, seed=5)[0],
        ),
        BenchmarkInstance(
            "pipe_php_a",
            "microprocessor verification",
            "5pipe_5_ooo",
            lambda: pigeonhole(*php_a),
        ),
        BenchmarkInstance(
            "pipe_php_b",
            "microprocessor verification",
            "6pipe / 7pipe",
            lambda: pigeonhole(*php_b),
        ),
    ]


def core_suite(scale: str = "medium") -> list[BenchmarkInstance]:
    """The Table 3 suite: instances whose cores are interesting.

    Mirrors the paper's observation that planning (bw_large.d) and FPGA
    routing (too_large...) instances have *small* cores while pigeonhole-
    like and XOR-heavy instances need almost everything.
    """
    fpga = _scaled(scale, (4, 6, 12), (6, 8, 30), (7, 9, 40))
    swap = _scaled(scale, (4, 8), (4, 10), (5, 12))
    php = _scaled(scale, (5, 4), (6, 5), (7, 6))
    mult_w = _scaled(scale, 3, 3, 4)
    ksat = _scaled(scale, (30, 150), (40, 190), (60, 280))

    return [
        BenchmarkInstance(
            "fpga_route_core",
            "FPGA routing",
            "too_largefs3w8v262",
            lambda: dense_channel_instance(*fpga, seed=5)[0],
        ),
        BenchmarkInstance(
            "bw_swap_core",
            "AI planning",
            "bw_large.d",
            lambda: swap_planning(*swap),
        ),
        BenchmarkInstance(
            "aim_ksat_core",
            "random (control)",
            "(none - control family)",
            lambda: random_ksat(*ksat, seed=21),
        ),
        BenchmarkInstance(
            "pipe_php_core",
            "microprocessor verification",
            "5pipe_5_ooo",
            lambda: pigeonhole(*php),
        ),
        BenchmarkInstance(
            "longmult_core",
            "multiplier equivalence",
            "longmult12",
            lambda: miter_to_cnf(multiplier_commutativity_miter(mult_w)),
        ),
    ]
