"""Table renderers mirroring the paper's Tables 1-3."""

from __future__ import annotations

from typing import Sequence

from repro.core_extract import iterate_core
from repro.experiments.runner import InstanceResult
from repro.experiments.suite import BenchmarkInstance


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text aligned table."""
    cells = [[str(x) for x in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    def line(row):
        return "  ".join(str(cell).rjust(width) for cell, width in zip(row, widths))
    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([line(headers), rule] + [line(row) for row in cells])


# -- Table 1: trace generation overhead ----------------------------------------


def table1_rows(results: list[InstanceResult]) -> list[list[object]]:
    rows = []
    for r in sorted(results, key=lambda x: x.time_trace_off):
        rows.append(
            [
                r.name,
                r.num_vars,
                r.num_clauses,
                r.learned_clauses,
                f"{r.time_trace_off:.3f}",
                f"{r.time_trace_on:.3f}",
                f"{r.trace_overhead_pct:+.1f}%",
            ]
        )
    return rows


def render_table1(results: list[InstanceResult]) -> str:
    headers = [
        "Instance",
        "Num. Vars",
        "Orig. Clauses",
        "Learned Clauses",
        "Trace Off (s)",
        "Trace On (s)",
        "Overhead",
    ]
    return "Table 1: zchaff-analog with trace generation off / on\n" + format_table(
        headers, table1_rows(results)
    )


# -- Table 2: the two checking strategies ---------------------------------------


def _checker_cells(report) -> list[object]:
    if report is None:
        return ["-", "-"]
    if not report.verified:
        if report.failure is not None and report.failure.kind.value == "memory-out":
            return ["*", "*"]  # the paper's memory-out marker
        return ["FAIL", "FAIL"]
    return [f"{report.check_time:.3f}", report.peak_memory_units]


def table2_rows(results: list[InstanceResult]) -> list[list[object]]:
    rows = []
    for r in sorted(results, key=lambda x: x.time_trace_off):
        df_built = "-"
        df_pct = "-"
        if r.df is not None and r.df.verified:
            df_built = r.df.clauses_built
            df_pct = f"{r.df.built_pct:.0f}%"
        rows.append(
            [
                r.name,
                f"{r.ascii_trace_bytes / 1024:.1f}",
                df_built,
                df_pct,
                *_checker_cells(r.df),
                *_checker_cells(r.bf),
            ]
        )
    return rows


def render_table2(results: list[InstanceResult]) -> str:
    headers = [
        "Instance",
        "Trace KB",
        "DF Cls Built",
        "Built%",
        "DF Time (s)",
        "DF Peak Mem",
        "BF Time (s)",
        "BF Peak Mem",
    ]
    note = "(* indicates memory-out, as in the paper)"
    return (
        "Table 2: depth-first vs breadth-first checking " + note + "\n"
        + format_table(headers, table2_rows(results))
    )


# -- Table 3: iterated unsat cores -----------------------------------------------


def table3_rows(
    suite: list[BenchmarkInstance], max_iterations: int = 30
) -> list[list[object]]:
    rows = []
    for instance in suite:
        formula = instance.build()
        outcome = iterate_core(formula, max_iterations=max_iterations)
        orig_clauses, orig_vars = outcome.iterations[0]
        first_clauses, first_vars = outcome.first_iteration
        final_clauses, final_vars = outcome.final
        rows.append(
            [
                instance.name,
                orig_clauses,
                orig_vars,
                first_clauses,
                first_vars,
                final_clauses,
                final_vars,
                outcome.num_iterations if outcome.reached_fixed_point else f">{max_iterations}",
            ]
        )
    return rows


def render_table3(suite: list[BenchmarkInstance], max_iterations: int = 30) -> str:
    headers = [
        "Instance",
        "Orig Cls",
        "Orig Vars",
        "Iter1 Cls",
        "Iter1 Vars",
        "Final Cls",
        "Final Vars",
        "Iterations",
    ]
    return (
        f"Table 3: clauses/variables in the proof (<= {max_iterations} iterations "
        "or fixed point)\n" + format_table(headers, table3_rows(suite, max_iterations))
    )


# -- §4 remark: trace format compaction --------------------------------------------


def render_formats_table(results: list[InstanceResult]) -> str:
    headers = ["Instance", "ASCII KB", "Binary KB", "Compaction"]
    rows = []
    for r in sorted(results, key=lambda x: x.ascii_trace_bytes):
        rows.append(
            [
                r.name,
                f"{r.ascii_trace_bytes / 1024:.1f}",
                f"{r.binary_trace_bytes / 1024:.1f}",
                f"{r.compaction_ratio:.1f}x",
            ]
        )
    return (
        "Trace format comparison (the paper predicts 2-3x from a binary "
        "encoding)\n" + format_table(headers, rows)
    )


# -- §4 remark: checking is much cheaper than solving ---------------------------------


def render_check_vs_solve(results: list[InstanceResult]) -> str:
    headers = ["Instance", "Solve (s)", "DF Check (s)", "BF Check (s)", "DF/solve", "BF/solve"]
    rows = []
    for r in sorted(results, key=lambda x: x.time_trace_off):
        if r.df is None or r.bf is None or not (r.df.verified and r.bf.verified):
            continue
        rows.append(
            [
                r.name,
                f"{r.time_trace_off:.3f}",
                f"{r.df.check_time:.3f}",
                f"{r.bf.check_time:.3f}",
                f"{r.df.check_time / max(r.time_trace_off, 1e-9):.2f}",
                f"{r.bf.check_time / max(r.time_trace_off, 1e-9):.2f}",
            ]
        )
    return "Check time vs solve time (paper: always much smaller)\n" + format_table(
        headers, rows
    )


def render_hybrid_table(results: list[InstanceResult]) -> str:
    headers = ["Instance", "Hy Built", "Built%", "Hy Time (s)", "Hy Peak Mem", "DF Peak", "BF Peak"]
    rows = []
    for r in sorted(results, key=lambda x: x.time_trace_off):
        if r.hybrid is None:
            continue
        cells = _checker_cells(r.hybrid)
        rows.append(
            [
                r.name,
                r.hybrid.clauses_built if r.hybrid.verified else "-",
                f"{r.hybrid.built_pct:.0f}%" if r.hybrid.verified else "-",
                *cells,
                r.df.peak_memory_units if r.df and r.df.verified else "*",
                r.bf.peak_memory_units if r.bf and r.bf.verified else "*",
            ]
        )
    return "Hybrid checker (the paper's §5 future-work design)\n" + format_table(
        headers, rows
    )
