"""Ablation tables: what the solver's design choices buy.

DESIGN.md calls out four choices; this renders a conflicts/time table for
each over a pair of representative instances.
"""

from __future__ import annotations

from repro.circuits import miter_to_cnf, shifter_equivalence_miter
from repro.experiments.tables import format_table
from repro.generators import pigeonhole
from repro.solver import Solver, SolverConfig


def _instances(scale: str):
    # The shifter miter stays at width 8 even at larger scales: the static
    # heuristic (deliberately bad on structured instances — that is the
    # point of the ablation) blows up super-linearly with the width.
    if scale == "small":
        return [("php65", pigeonhole(6, 5)), ("shift8", miter_to_cnf(shifter_equivalence_miter(8)))]
    return [("php76", pigeonhole(7, 6)), ("shift8", miter_to_cnf(shifter_equivalence_miter(8)))]


def _run(formula, **kwargs):
    result = Solver(formula, SolverConfig(**kwargs)).solve()
    assert result.is_unsat
    return result


def render_ablation_tables(scale: str = "medium") -> str:
    """All four ablations as text tables."""
    instances = _instances(scale)
    sections = []

    rows = []
    for name, formula in instances:
        for heuristic in ("vsids", "jeroslow-wang", "static", "random"):
            result = _run(formula, decision_heuristic=heuristic)
            rows.append(
                [name, heuristic, result.stats.conflicts, f"{result.stats.solve_time:.3f}"]
            )
    sections.append(
        "Ablation: decision heuristic\n"
        + format_table(["Instance", "Heuristic", "Conflicts", "Time (s)"], rows)
    )

    rows = []
    for name, formula in instances:
        for minimize in (False, True):
            result = _run(formula, minimize_learned=minimize)
            rows.append(
                [
                    name,
                    "minimized" if minimize else "plain",
                    result.stats.conflicts,
                    f"{result.stats.solve_time:.3f}",
                ]
            )
    sections.append(
        "Ablation: learned-clause minimization\n"
        + format_table(["Instance", "Learning", "Conflicts", "Time (s)"], rows)
    )

    rows = []
    for name, formula in instances:
        for policy in ("geometric", "luby", "none"):
            result = _run(formula, restart_policy=policy)
            rows.append(
                [name, policy, result.stats.conflicts, result.stats.restarts,
                 f"{result.stats.solve_time:.3f}"]
            )
    sections.append(
        "Ablation: restart policy\n"
        + format_table(["Instance", "Policy", "Conflicts", "Restarts", "Time (s)"], rows)
    )

    rows = []
    for name, formula in instances:
        for label, kwargs in (
            ("keep-all", {"min_learned_cap": 10**9}),
            ("default", {}),
            ("aggressive", {"min_learned_cap": 20, "max_learned_factor": 0.0}),
        ):
            result = _run(formula, **kwargs)
            rows.append(
                [name, label, result.stats.conflicts, result.stats.deleted_clauses,
                 f"{result.stats.solve_time:.3f}"]
            )
    sections.append(
        "Ablation: learned-clause deletion\n"
        + format_table(["Instance", "Policy", "Conflicts", "Deleted", "Time (s)"], rows)
    )

    return "\n\n".join(sections)
