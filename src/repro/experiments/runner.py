"""Per-instance experiment pipeline.

For one benchmark instance: solve with tracing off, solve with tracing on
(ASCII and binary trace files), then run the depth-first, breadth-first
and hybrid checkers over the trace. Everything the table renderers need
comes back in one ``InstanceResult``.

Pass a :class:`~repro.service.client.ServiceClient` to route the checks
through the verdict cache: identical (formula, trace, options) triples —
re-rendered tables, repeated ablation sweeps — then cost a hash and a
file read instead of a resolution replay. Checks run under the *strict*
policy so a memory-capped depth-first run still reports its Table 2
memory-out instead of silently degrading.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.checker import BreadthFirstChecker, DepthFirstChecker, HybridChecker
from repro.checker.report import CheckReport
from repro.experiments.suite import BenchmarkInstance
from repro.solver import Solver, SolverConfig
from repro.trace import AsciiTraceWriter, BinaryTraceWriter, load_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.service.client import ServiceClient


@dataclass
class InstanceResult:
    """Everything measured for one instance."""

    name: str
    family: str
    paper_analog: str
    num_vars: int
    num_clauses: int
    learned_clauses: int
    conflicts: int
    time_trace_off: float
    time_trace_on: float
    ascii_trace_bytes: int
    binary_trace_bytes: int
    df: CheckReport | None = None
    bf: CheckReport | None = None
    hybrid: CheckReport | None = None
    extras: dict = field(default_factory=dict)

    @property
    def trace_overhead_pct(self) -> float:
        if self.time_trace_off <= 0:
            return 0.0
        return 100.0 * (self.time_trace_on - self.time_trace_off) / self.time_trace_off

    @property
    def compaction_ratio(self) -> float:
        if self.binary_trace_bytes == 0:
            return 0.0
        return self.ascii_trace_bytes / self.binary_trace_bytes


def run_instance(
    instance: BenchmarkInstance,
    work_dir: str | Path | None = None,
    config: SolverConfig | None = None,
    memory_limit: int | None = None,
    run_checkers: bool = True,
    keep_traces: bool = False,
    client: ServiceClient | None = None,
) -> InstanceResult:
    """Run the full pipeline on one instance.

    ``memory_limit`` (logical units, see :mod:`repro.checker.memory`)
    applies to both checkers and reproduces Table 2's depth-first
    memory-outs when set. ``client`` routes the checking runs through the
    service's verdict cache (``python -m repro.experiments … --cache``).
    """
    formula = instance.build()
    config = config or SolverConfig()

    own_dir = None
    if work_dir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="repro-exp-")
        work_dir = own_dir.name
    work_dir = Path(work_dir)
    ascii_path = work_dir / f"{instance.name}.trace"
    binary_path = work_dir / f"{instance.name}.rtb"

    try:
        # Run 1: trace generation off (the baseline of Table 1).
        result_off = Solver(formula, config=config).solve()
        if not result_off.is_unsat:
            raise ValueError(
                f"suite instance {instance.name} is {result_off.status}, not UNSAT"
            )

        # Run 2: trace on, ASCII (the timed run of Table 1).
        result_on = Solver(
            formula, config=config, trace_writer=AsciiTraceWriter(ascii_path)
        ).solve()

        # Run 3: trace on, binary (for the §4 compaction remark).
        Solver(
            formula, config=config, trace_writer=BinaryTraceWriter(binary_path)
        ).solve()

        outcome = InstanceResult(
            name=instance.name,
            family=instance.family,
            paper_analog=instance.paper_analog,
            num_vars=len(formula.used_variables()),
            num_clauses=formula.num_clauses,
            learned_clauses=result_on.stats.learned_clauses,
            conflicts=result_on.stats.conflicts,
            time_trace_off=result_off.stats.solve_time,
            time_trace_on=result_on.stats.solve_time,
            ascii_trace_bytes=ascii_path.stat().st_size,
            binary_trace_bytes=binary_path.stat().st_size,
        )

        if run_checkers:
            if client is not None:
                outcome.df = client.check(
                    formula, binary_path, method="df",
                    policy="strict", memory_limit=memory_limit,
                )
                outcome.bf = client.check(
                    formula, binary_path, method="bf",
                    policy="strict", memory_limit=memory_limit,
                )
                outcome.hybrid = client.check(
                    formula, binary_path, method="hybrid",
                    policy="strict", memory_limit=memory_limit,
                )
            else:
                trace = load_trace(binary_path)
                outcome.df = DepthFirstChecker(
                    formula, trace, memory_limit=memory_limit
                ).check()
                outcome.bf = BreadthFirstChecker(
                    formula, binary_path, memory_limit=memory_limit
                ).check()
                outcome.hybrid = HybridChecker(
                    formula, binary_path, memory_limit=memory_limit
                ).check()
        return outcome
    finally:
        if own_dir is not None:
            if keep_traces:  # pragma: no cover - debugging aid
                own_dir._finalizer.detach()  # type: ignore[attr-defined]
            else:
                own_dir.cleanup()
