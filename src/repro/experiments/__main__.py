"""CLI: regenerate the paper's tables.

Usage:
    python -m repro.experiments table1 [--scale medium]
    python -m repro.experiments table2 [--scale medium] [--mem-limit N]
    python -m repro.experiments table3 [--scale medium] [--iterations 30]
    python -m repro.experiments formats
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import run_instance
from repro.experiments.suite import core_suite, default_suite
from repro.experiments.tables import (
    render_check_vs_solve,
    render_formats_table,
    render_hybrid_table,
    render_table1,
    render_table2,
    render_table3,
)


def _run_suite(scale: str, memory_limit: int | None = None, verbose: bool = True, client=None):
    results = []
    for instance in default_suite(scale):
        if verbose:
            print(f"  running {instance.name} ...", file=sys.stderr, flush=True)
        results.append(run_instance(instance, memory_limit=memory_limit, client=client))
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments", description="Regenerate the paper's tables."
    )
    parser.add_argument(
        "what",
        choices=[
            "table1",
            "table2",
            "table3",
            "formats",
            "check-vs-solve",
            "hybrid",
            "ablations",
            "export",
            "all",
        ],
    )
    parser.add_argument("--scale", default="medium", choices=["small", "medium", "large"])
    parser.add_argument("--out-dir", default="suite-export", help="directory for `export`")
    parser.add_argument(
        "--mem-limit",
        type=int,
        default=None,
        help="checker memory budget in logical units (reproduces Table 2's "
        "depth-first memory-outs)",
    )
    parser.add_argument("--iterations", type=int, default=30, help="Table 3 iteration cap")
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="route checking runs through the service verdict cache at DIR "
        "(repeat runs and ablation sweeps then skip redundant re-checks)",
    )
    args = parser.parse_args(argv)

    client = None
    if args.cache:
        from repro.service import ServiceClient, VerdictCache

        client = ServiceClient(cache=VerdictCache(args.cache))

    if args.what == "export":
        from repro.experiments.export import export_suite

        manifest = export_suite(args.out_dir, scale=args.scale)
        print(
            f"exported {len(manifest['instances'])} instances to {args.out_dir} "
            "(see manifest.json)"
        )
        return 0

    needs_suite = args.what in ("table1", "table2", "formats", "check-vs-solve", "hybrid", "all")
    results = (
        _run_suite(args.scale, memory_limit=args.mem_limit, client=client)
        if needs_suite
        else []
    )

    sections = []
    if args.what in ("table1", "all"):
        sections.append(render_table1(results))
    if args.what in ("table2", "all"):
        sections.append(render_table2(results))
    if args.what in ("table3", "all"):
        sections.append(render_table3(core_suite(args.scale), args.iterations))
    if args.what in ("formats", "all"):
        sections.append(render_formats_table(results))
    if args.what in ("check-vs-solve", "all"):
        sections.append(render_check_vs_solve(results))
    if args.what in ("hybrid", "all"):
        sections.append(render_hybrid_table(results))
    if args.what in ("ablations", "all"):
        from repro.experiments.ablations import render_ablation_tables

        sections.append(render_ablation_tables(args.scale))

    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
