"""Arithmetic circuits: adders and multipliers.

Multipliers are the paper's hard case: "longmult12 ... is derived from a
multiplier. The original circuit contains many xor gates. It is well known
that xor gates often require long proofs by resolution." The multiplier
commutativity miter below reproduces that structure.
"""

from __future__ import annotations

from repro.circuits.miter import build_miter
from repro.circuits.netlist import Circuit


def _full_adder(circuit: Circuit, a: int, b: int, cin: int) -> tuple[int, int]:
    """Returns (sum, carry-out)."""
    axb = circuit.xor(a, b)
    total = circuit.xor(axb, cin)
    carry = circuit.or_(circuit.and_(a, b), circuit.and_(axb, cin))
    return total, carry


def ripple_carry_adder(width: int, name: str = "rca") -> Circuit:
    """width-bit ripple-carry adder: inputs a[0..w), b[0..w); outputs sum + carry."""
    if width < 1:
        raise ValueError("width must be >= 1")
    circuit = Circuit(name=f"{name}{width}")
    a = circuit.add_inputs(width)
    b = circuit.add_inputs(width)
    carry = circuit.const(False)
    for i in range(width):
        total, carry = _full_adder(circuit, a[i], b[i], carry)
        circuit.mark_output(total)
    circuit.mark_output(carry)
    return circuit


def carry_select_adder(width: int, block: int = 2, name: str = "csa") -> Circuit:
    """Carry-select adder: per-block duplicate adders muxed by carry-in.

    Functionally identical to the ripple-carry adder; structurally very
    different — a natural CEC pair.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if block < 1:
        raise ValueError("block must be >= 1")
    circuit = Circuit(name=f"{name}{width}")
    a = circuit.add_inputs(width)
    b = circuit.add_inputs(width)
    carry = circuit.const(False)
    position = 0
    while position < width:
        size = min(block, width - position)
        # Compute the block twice, for carry-in 0 and 1, then select.
        sums0, sums1 = [], []
        carry0 = circuit.const(False)
        carry1 = circuit.const(True)
        for i in range(position, position + size):
            s0, carry0 = _full_adder(circuit, a[i], b[i], carry0)
            s1, carry1 = _full_adder(circuit, a[i], b[i], carry1)
            sums0.append(s0)
            sums1.append(s1)
        for s0, s1 in zip(sums0, sums1):
            circuit.mark_output(circuit.mux(carry, s0, s1))
        carry = circuit.mux(carry, carry0, carry1)
        position += size
    circuit.mark_output(carry)
    return circuit


def array_multiplier(width: int, name: str = "mult") -> Circuit:
    """width x width array multiplier producing 2*width output bits."""
    if width < 1:
        raise ValueError("width must be >= 1")
    circuit = Circuit(name=f"{name}{width}")
    a = circuit.add_inputs(width)
    b = circuit.add_inputs(width)
    zero = circuit.const(False)
    # Partial-product accumulation, row by row.
    accum = [zero] * (2 * width)
    for j in range(width):
        carry = zero
        row = [circuit.and_(a[i], b[j]) for i in range(width)]
        for i in range(width):
            total, carry = _full_adder(circuit, accum[i + j], row[i], carry)
            accum[i + j] = total
        # Propagate the final carry up the accumulator.
        position = j + width
        while position < 2 * width:
            total, carry = _full_adder(circuit, accum[position], carry, zero)
            accum[position] = total
            position += 1
    for net in accum:
        circuit.mark_output(net)
    return circuit


def adder_equivalence_miter(width: int, block: int = 2) -> Circuit:
    """Ripple-carry vs carry-select: the pipelined-datapath CEC analog."""
    return build_miter(
        ripple_carry_adder(width),
        carry_select_adder(width, block=block),
        name=f"adder_eq{width}",
    )


def multiplier_commutativity_miter(width: int) -> Circuit:
    """a*b vs b*a on an array multiplier: XOR-heavy, long resolution proofs.

    The operand swap makes the two sides structurally dissimilar even
    though they are semantically identical — the ``longmult`` analog.
    """
    left = array_multiplier(width, name="multL")
    right_core = array_multiplier(width, name="multR")
    # Swap the operand order by permuting the right circuit's inputs.
    right = Circuit(name="multR_swapped")
    ins = right.add_inputs(2 * width)
    swapped = ins[width:] + ins[:width]
    remap = dict(zip(right_core.inputs, swapped))
    for gate in right_core.gates:
        remap[gate.output] = right.add_gate(gate.gtype, *(remap[n] for n in gate.inputs))
    for net in right_core.outputs:
        right.mark_output(remap[net])
    return build_miter(left, right, name=f"mult_comm{width}")
