"""Random logic and semantics-preserving rewrites — the CEC analog.

The paper's c5135/c7225 instances are equivalence checks of industrial
random logic. We generate a seeded random DAG circuit and a structurally
rewritten copy (De Morgan, double negation, AND/OR re-association); the
miter of the two is unsatisfiable by construction but non-trivially so.
"""

from __future__ import annotations

import random

from repro.circuits.miter import build_miter
from repro.circuits.netlist import Circuit, Gate, GateType

_BINARY_TYPES = [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND, GateType.NOR]


def random_circuit(
    num_inputs: int,
    num_gates: int,
    num_outputs: int,
    seed: int = 0,
    name: str = "rand",
) -> Circuit:
    """A seeded random combinational DAG."""
    if num_inputs < 2:
        raise ValueError("need at least 2 inputs")
    if num_outputs < 1:
        raise ValueError("need at least 1 output")
    rng = random.Random(seed)
    circuit = Circuit(name=f"{name}_{seed}")
    nets = circuit.add_inputs(num_inputs)
    for _ in range(num_gates):
        gtype = rng.choice(_BINARY_TYPES)
        a, b = rng.sample(nets, 2)
        nets.append(circuit.add_gate(gtype, a, b))
    # Prefer recent nets as outputs so the whole DAG stays relevant.
    candidates = nets[-max(num_outputs * 2, 4):]
    for net in rng.sample(candidates, min(num_outputs, len(candidates))):
        circuit.mark_output(net)
    return circuit


def rewritten_copy(source: Circuit, seed: int = 0) -> Circuit:
    """A logically equivalent, structurally different copy of ``source``.

    Applies, per gate and pseudo-randomly: De Morgan rewrites
    (AND(a,b) = NOT(OR(NOT a, NOT b)) etc.), XOR expansion into the
    AND/OR form, and double-negation insertion.
    """
    rng = random.Random(seed)
    target = Circuit(name=f"{source.name}_rw")
    remap: dict[int, int] = {}
    for net in source.inputs:
        remap[net] = target.add_input()

    def maybe_double_negate(net: int) -> int:
        if rng.random() < 0.25:
            return target.not_(target.not_(net))
        return net

    for gate in source.gates:
        ins = [remap[n] for n in gate.inputs]
        remap[gate.output] = _rewrite_gate(target, gate, ins, rng)
        remap[gate.output] = maybe_double_negate(remap[gate.output])
    for net in source.outputs:
        target.mark_output(remap[net])
    return target


def _rewrite_gate(target: Circuit, gate: Gate, ins: list[int], rng: random.Random) -> int:
    gtype = gate.gtype
    rewrite = rng.random() < 0.6
    if gtype == GateType.AND and rewrite:
        return target.not_(target.or_(*[target.not_(n) for n in ins]))
    if gtype == GateType.OR and rewrite:
        return target.not_(target.and_(*[target.not_(n) for n in ins]))
    if gtype == GateType.NAND and rewrite:
        return target.or_(*[target.not_(n) for n in ins])
    if gtype == GateType.NOR and rewrite:
        return target.and_(*[target.not_(n) for n in ins])
    if gtype == GateType.XOR and rewrite and len(ins) == 2:
        a, b = ins
        return target.or_(
            target.and_(a, target.not_(b)), target.and_(target.not_(a), b)
        )
    if gtype == GateType.XNOR and rewrite and len(ins) == 2:
        a, b = ins
        return target.or_(target.and_(a, b), target.and_(target.not_(a), target.not_(b)))
    return target.add_gate(gtype, *ins)


def random_cec_miter(
    num_inputs: int = 12,
    num_gates: int = 60,
    num_outputs: int = 4,
    seed: int = 0,
) -> Circuit:
    """Miter of a random circuit against its rewritten copy (UNSAT CEC)."""
    original = random_circuit(num_inputs, num_gates, num_outputs, seed=seed)
    rewritten = rewritten_copy(original, seed=seed + 1)
    return build_miter(original, rewritten, name=f"cec_rand{seed}")
