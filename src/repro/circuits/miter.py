"""Equivalence-checking miters.

A miter ties two circuits to the same primary inputs, XORs corresponding
outputs, and ORs the XORs into a single net. The miter output is
satisfiable (as a CNF asking output=1) iff the circuits differ — so an
UNSAT answer *proves* equivalence, which is exactly the claim the paper's
checker validates for CEC workloads (c5135/c7225).
"""

from __future__ import annotations

from repro.circuits.netlist import Circuit
from repro.circuits.tseitin import tseitin_encode
from repro.cnf import CnfFormula


def build_miter(left: Circuit, right: Circuit, name: str | None = None) -> Circuit:
    """Structurally merge two circuits into one miter circuit.

    Both circuits must have the same number of inputs and outputs. The
    result has the shared inputs and a single output that is 1 iff some
    output pair differs.
    """
    if len(left.inputs) != len(right.inputs):
        raise ValueError(
            f"input arity mismatch: {len(left.inputs)} vs {len(right.inputs)}"
        )
    if len(left.outputs) != len(right.outputs):
        raise ValueError(
            f"output arity mismatch: {len(left.outputs)} vs {len(right.outputs)}"
        )
    if not left.outputs:
        raise ValueError("miter needs at least one output pair")

    miter = Circuit(name=name or f"miter({left.name},{right.name})")
    shared = miter.add_inputs(len(left.inputs))
    left_outs = _splice(miter, left, shared)
    right_outs = _splice(miter, right, shared)
    diffs = [miter.xor(a, b) for a, b in zip(left_outs, right_outs)]
    out = diffs[0] if len(diffs) == 1 else miter.or_(*diffs)
    miter.mark_output(out)
    return miter


def _splice(target: Circuit, source: Circuit, input_nets: list[int]) -> list[int]:
    """Copy ``source``'s gates into ``target`` with inputs remapped."""
    remap: dict[int, int] = dict(zip(source.inputs, input_nets))
    for gate in source.gates:
        new_inputs = tuple(remap[net] for net in gate.inputs)
        remap[gate.output] = target.add_gate(gate.gtype, *new_inputs)
    return [remap[net] for net in source.outputs]


def miter_to_cnf(miter: Circuit) -> CnfFormula:
    """CNF asking "can the miter output be 1?" — UNSAT proves equivalence."""
    if len(miter.outputs) != 1:
        raise ValueError("a miter has exactly one output")
    encoded = tseitin_encode(miter)
    encoded.formula.add_clause([encoded.var(miter.outputs[0])])
    return encoded.formula


def equivalence_cnf(left: Circuit, right: Circuit) -> CnfFormula:
    """One-step convenience: miter two circuits and return the CEC CNF."""
    return miter_to_cnf(build_miter(left, right))
