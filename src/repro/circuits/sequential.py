"""Sequential circuits: combinational netlists plus registers.

Bridges the circuit substrate to the BMC substrate: a
:class:`SequentialCircuit` is a combinational ``Circuit`` whose
designated *register* nets hold state; :func:`to_transition_system`
produces the :class:`~repro.bmc.transition.TransitionSystem` the model
checkers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.circuits.netlist import Circuit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bmc.transition import TransitionSystem


@dataclass
class Register:
    """One state element: ``output`` is readable, ``next_input`` drives it."""

    output: int  # a net the combinational logic reads (declared as input)
    next_input: int  # the net whose value is latched each cycle
    init: bool = False  # reset value


@dataclass
class SequentialCircuit:
    """A synchronous design: combinational core + registers + bad output.

    The combinational ``core`` circuit's inputs must be the register
    outputs first (in register order), then the primary inputs. Exactly
    one core output may be designated the *bad* signal for verification.
    """

    core: Circuit
    registers: list[Register] = field(default_factory=list)
    num_primary_inputs: int = 0
    bad_output: int | None = None  # index into core.outputs

    def __post_init__(self) -> None:
        expected = len(self.registers) + self.num_primary_inputs
        if len(self.core.inputs) != expected:
            raise ValueError(
                f"core has {len(self.core.inputs)} inputs, expected "
                f"{len(self.registers)} register outputs + "
                f"{self.num_primary_inputs} primary inputs"
            )
        declared = set(self.core.inputs[: len(self.registers)])
        for register in self.registers:
            if register.output not in declared:
                raise ValueError(
                    f"register output net {register.output} is not one of the "
                    "core's leading inputs"
                )
        core_nets = set(self.core.inputs) | {g.output for g in self.core.gates}
        for register in self.registers:
            if register.next_input not in core_nets:
                raise ValueError(
                    f"register next-state net {register.next_input} is undefined"
                )
        if self.bad_output is not None and not (
            0 <= self.bad_output < len(self.core.outputs)
        ):
            raise ValueError(f"bad_output index {self.bad_output} out of range")

    @property
    def num_registers(self) -> int:
        return len(self.registers)

    def simulate_cycle(
        self, state: list[bool], primary_inputs: list[bool]
    ) -> tuple[list[bool], list[bool]]:
        """One clock cycle: returns (next_state, core outputs)."""
        if len(state) != self.num_registers:
            raise ValueError("state width mismatch")
        values = self._evaluate(state, primary_inputs)
        next_state = [values[r.next_input] for r in self.registers]
        outputs = [values[net] for net in self.core.outputs]
        return next_state, outputs

    def _evaluate(self, state, primary_inputs) -> dict[int, bool]:
        from repro.circuits.netlist import _evaluate as eval_gate

        values = dict(zip(self.core.inputs, list(state) + list(primary_inputs)))
        for gate in self.core.gates:
            values[gate.output] = eval_gate(gate.gtype, [values[n] for n in gate.inputs])
        return values


def to_transition_system(design: SequentialCircuit, name: str | None = None) -> "TransitionSystem":
    """Convert a sequential design into a TransitionSystem.

    State bits are the registers in order; the bad circuit is carved out
    of the core by re-synthesizing the cone of the designated bad output
    over the register outputs only (primary inputs in the bad cone are
    not supported — guard your property on state).
    """
    # Imported here: repro.bmc depends on repro.circuits at import time.
    from repro.bmc.transition import TransitionSystem

    if design.bad_output is None:
        raise ValueError("design has no bad output designated")

    # Transition circuit: same core, outputs = register next-state nets.
    transition = Circuit(name=f"{design.core.name}_T")
    remap: dict[int, int] = {}
    for net in design.core.inputs:
        remap[net] = transition.add_input()
    for gate in design.core.gates:
        remap[gate.output] = transition.add_gate(
            gate.gtype, *(remap[n] for n in gate.inputs)
        )
    for register in design.registers:
        transition.mark_output(transition.buf(remap[register.next_input]))

    # Bad circuit: the cone of the bad output, over register outputs only.
    bad_net = design.core.outputs[design.bad_output]
    cone = _transitive_fanin(design.core, bad_net)
    primary_nets = set(design.core.inputs[design.num_registers :])
    if cone & primary_nets:
        raise ValueError(
            "the bad output depends on primary inputs; express the property "
            "over registers only"
        )
    bad = Circuit(name=f"{design.core.name}_bad")
    bad_remap: dict[int, int] = {}
    for net in design.core.inputs[: design.num_registers]:
        bad_remap[net] = bad.add_input()
    for gate in design.core.gates:
        if gate.output in cone:
            bad_remap[gate.output] = bad.add_gate(
                gate.gtype, *(bad_remap[n] for n in gate.inputs)
            )
    bad.mark_output(bad_remap[bad_net])

    init = [
        [(index + 1) if register.init else -(index + 1)]
        for index, register in enumerate(design.registers)
    ]
    return TransitionSystem(
        num_state_bits=design.num_registers,
        num_input_bits=design.num_primary_inputs,
        init=init,
        transition=transition,
        bad=bad,
        name=name or f"{design.core.name}_ts",
    )


def _transitive_fanin(circuit: Circuit, net: int) -> set[int]:
    """All nets in the cone of ``net`` (inclusive)."""
    driver = {gate.output: gate for gate in circuit.gates}
    cone: set[int] = set()
    stack = [net]
    while stack:
        current = stack.pop()
        if current in cone:
            continue
        cone.add(current)
        gate = driver.get(current)
        if gate is not None:
            stack.extend(gate.inputs)
    return cone
