"""Gate-level circuit substrate.

The paper's benchmark families come from EDA flows — microprocessor
verification, combinational equivalence checking, FPGA routing. This
package provides the circuit machinery to generate analogous instances:
netlists, Tseitin CNF encoding, equivalence miters, and arithmetic blocks
(adders, multipliers — the XOR-heavy structures behind the paper's
``longmult`` remark).
"""

from repro.circuits.netlist import Circuit, Gate, GateType
from repro.circuits.tseitin import tseitin_encode, TseitinResult
from repro.circuits.miter import build_miter, miter_to_cnf, equivalence_cnf
from repro.circuits.arith import (
    ripple_carry_adder,
    carry_select_adder,
    array_multiplier,
    multiplier_commutativity_miter,
    adder_equivalence_miter,
)
from repro.circuits.barrel import barrel_shifter, naive_shifter, shifter_equivalence_miter
from repro.circuits.random_logic import random_circuit, rewritten_copy, random_cec_miter
from repro.circuits.sequential import Register, SequentialCircuit, to_transition_system
from repro.circuits.bench_format import (
    BenchFormatError,
    parse_bench,
    parse_bench_file,
    write_bench,
    write_bench_file,
)

__all__ = [
    "Circuit",
    "Gate",
    "GateType",
    "tseitin_encode",
    "TseitinResult",
    "build_miter",
    "miter_to_cnf",
    "equivalence_cnf",
    "ripple_carry_adder",
    "carry_select_adder",
    "array_multiplier",
    "multiplier_commutativity_miter",
    "adder_equivalence_miter",
    "barrel_shifter",
    "naive_shifter",
    "shifter_equivalence_miter",
    "random_circuit",
    "rewritten_copy",
    "random_cec_miter",
    "Register",
    "SequentialCircuit",
    "to_transition_system",
    "BenchFormatError",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "write_bench_file",
]
