"""ISCAS ``.bench`` netlist format.

The interchange format of the ISCAS-85/89 benchmark circuits — the family
the paper's CEC instances (c5135, c7225) descend from:

    INPUT(G1)
    OUTPUT(G17)
    G10 = AND(G1, G3)
    G11 = NOT(G10)
    G12 = DFF(G11)        # sequential extension (ISCAS-89)

Combinational gates map directly onto :class:`repro.circuits.Circuit`;
``DFF`` lines produce a :class:`repro.circuits.sequential.SequentialCircuit`.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import TextIO

from repro.circuits.netlist import Circuit, GateType
from repro.circuits.sequential import Register, SequentialCircuit


class BenchFormatError(ValueError):
    """Malformed .bench input."""


_GATE_TYPES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
}

_LINE_RE = re.compile(r"^(\w+)\s*=\s*(\w+)\s*\(([^)]*)\)$")
_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\((\w+)\)$")


def parse_bench(text: str) -> Circuit | SequentialCircuit:
    """Parse .bench text; returns a SequentialCircuit when DFFs appear."""
    return _parse(io.StringIO(text))


def parse_bench_file(path: str | Path) -> Circuit | SequentialCircuit:
    with open(path, "r", encoding="ascii") as handle:
        return _parse(handle)


def _parse(stream: TextIO) -> Circuit | SequentialCircuit:
    inputs: list[str] = []
    outputs: list[str] = []
    gates: list[tuple[str, str, list[str]]] = []  # (name, type, operands)
    dffs: list[tuple[str, str]] = []  # (output name, next-state name)

    for lineno, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            (inputs if io_match.group(1) == "INPUT" else outputs).append(io_match.group(2))
            continue
        gate_match = _LINE_RE.match(line)
        if not gate_match:
            raise BenchFormatError(f"line {lineno}: cannot parse {line!r}")
        name, gtype, operand_text = gate_match.groups()
        operands = [tok.strip() for tok in operand_text.split(",") if tok.strip()]
        gtype = gtype.upper()
        if gtype == "DFF":
            if len(operands) != 1:
                raise BenchFormatError(f"line {lineno}: DFF takes one operand")
            dffs.append((name, operands[0]))
        elif gtype in _GATE_TYPES:
            if not operands:
                raise BenchFormatError(f"line {lineno}: gate with no operands")
            gates.append((name, gtype, operands))
        else:
            raise BenchFormatError(f"line {lineno}: unknown gate type {gtype!r}")

    circuit = Circuit(name="bench")
    net_of: dict[str, int] = {}
    registers: list[Register] = []
    for name, _ in dffs:
        net_of[name] = circuit.add_input()  # register outputs lead
    for name in inputs:
        if name in net_of:
            raise BenchFormatError(f"signal {name} declared twice")
        net_of[name] = circuit.add_input()

    # Gates may appear in any order in .bench files: build topologically.
    pending = list(gates)
    while pending:
        progressed = False
        remaining = []
        for name, gtype, operands in pending:
            if all(op in net_of for op in operands):
                if name in net_of:
                    raise BenchFormatError(f"signal {name} defined twice")
                net_of[name] = circuit.add_gate(
                    _GATE_TYPES[gtype], *(net_of[op] for op in operands)
                )
                progressed = True
            else:
                remaining.append((name, gtype, operands))
        if not progressed:
            missing = sorted(
                {op for _, _, ops in remaining for op in ops if op not in net_of}
            )
            raise BenchFormatError(
                f"undriven or cyclic signals: {', '.join(missing[:5])}"
            )
        pending = remaining

    for name in outputs:
        if name not in net_of:
            raise BenchFormatError(f"output {name} is never defined")
        circuit.mark_output(net_of[name])

    if not dffs:
        return circuit
    for name, next_name in dffs:
        if next_name not in net_of:
            raise BenchFormatError(f"DFF {name} latches undefined signal {next_name}")
        registers.append(Register(output=net_of[name], next_input=net_of[next_name]))
    return SequentialCircuit(
        core=circuit,
        registers=registers,
        num_primary_inputs=len(inputs),
    )


def write_bench(circuit: Circuit, name_prefix: str = "G") -> str:
    """Serialize a combinational circuit to .bench text.

    Multi-input NOT/BUF and MUX/CONST gates are lowered to .bench's gate
    set (MUX -> AND/NOT/OR, CONST -> XOR/XNOR of an input with itself...
    .bench has no constants, so constants are expressed via a tied input
    pattern: CONST0 = AND(x, NOT x) over the first input).
    """
    lines: list[str] = [f"# {circuit.name}"]
    name_of: dict[int, str] = {}
    for index, net in enumerate(circuit.inputs):
        name_of[net] = f"{name_prefix}{net}"
        lines.append(f"INPUT({name_of[net]})")
    for net in circuit.outputs:
        lines.append(f"OUTPUT({name_prefix}{net})")

    if not circuit.inputs and any(
        gate.gtype in (GateType.CONST0, GateType.CONST1) for gate in circuit.gates
    ):
        raise ValueError(".bench export of constants requires at least one input")

    extra = 0

    def fresh() -> str:
        nonlocal extra
        extra += 1
        return f"{name_prefix}aux{extra}"

    for gate in circuit.gates:
        out = f"{name_prefix}{gate.output}"
        name_of[gate.output] = out
        ins = [name_of[n] for n in gate.inputs]
        gtype = gate.gtype
        if gtype in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
                     GateType.XOR, GateType.XNOR):
            lines.append(f"{out} = {gtype.name}({', '.join(ins)})")
        elif gtype == GateType.NOT:
            lines.append(f"{out} = NOT({ins[0]})")
        elif gtype == GateType.BUF:
            lines.append(f"{out} = BUFF({ins[0]})")
        elif gtype == GateType.CONST0:
            anchor = name_of[circuit.inputs[0]]
            inverted = fresh()
            lines.append(f"{inverted} = NOT({anchor})")
            lines.append(f"{out} = AND({anchor}, {inverted})")
        elif gtype == GateType.CONST1:
            anchor = name_of[circuit.inputs[0]]
            inverted = fresh()
            lines.append(f"{inverted} = NOT({anchor})")
            lines.append(f"{out} = OR({anchor}, {inverted})")
        elif gtype == GateType.MUX:
            select, a, b = ins
            not_select = fresh()
            left = fresh()
            right = fresh()
            lines.append(f"{not_select} = NOT({select})")
            lines.append(f"{left} = AND({not_select}, {a})")
            lines.append(f"{right} = AND({select}, {b})")
            lines.append(f"{out} = OR({left}, {right})")
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unhandled gate type {gtype}")
    return "\n".join(lines) + "\n"


def write_bench_file(circuit: Circuit, path: str | Path) -> None:
    with open(path, "w", encoding="ascii") as handle:
        handle.write(write_bench(circuit))
