"""Tseitin transformation: circuit -> equisatisfiable CNF.

Each net gets a CNF variable; each gate contributes the standard clause
set asserting output <-> gate function. The mapping net -> variable is
returned so callers can constrain inputs/outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import Circuit, Gate, GateType
from repro.cnf import CnfFormula


@dataclass
class TseitinResult:
    """CNF plus the net -> variable mapping."""

    formula: CnfFormula
    var_of_net: dict[int, int]

    def var(self, net: int) -> int:
        return self.var_of_net[net]


def tseitin_encode(
    circuit: Circuit,
    formula: CnfFormula | None = None,
    bindings: dict[int, int] | None = None,
) -> TseitinResult:
    """Encode a circuit, optionally extending an existing formula.

    When ``formula`` is given, fresh variables are allocated after its
    current ``num_vars`` — this is how a miter encodes two circuits into
    one CNF. ``bindings`` pins circuit nets (typically inputs) to existing
    formula variables — this is how BMC unrolling chains time steps.
    """
    if formula is None:
        formula = CnfFormula(0)
    var_of_net: dict[int, int] = dict(bindings) if bindings else {}
    next_var = formula.num_vars + 1

    def var(net: int) -> int:
        nonlocal next_var
        existing = var_of_net.get(net)
        if existing is None:
            existing = next_var
            var_of_net[net] = existing
            next_var += 1
        return existing

    for net in circuit.inputs:
        var(net)
    for gate in circuit.gates:
        _encode_gate(gate, var, formula)
    for net in circuit.outputs:
        var(net)
    # Make sure the formula knows about variables even if no clause uses
    # them (e.g. a floating input).
    if formula.num_vars < next_var - 1:
        formula.num_vars = next_var - 1
    return TseitinResult(formula=formula, var_of_net=var_of_net)


def _encode_gate(gate: Gate, var, formula: CnfFormula) -> None:
    out = var(gate.output)
    ins = [var(net) for net in gate.inputs]
    gtype = gate.gtype

    if gtype in (GateType.AND, GateType.NAND):
        # out <-> AND(ins); for NAND flip the output phase.
        phase = 1 if gtype == GateType.AND else -1
        for lit in ins:
            formula.add_clause([-phase * out, lit])
        formula.add_clause([phase * out] + [-lit for lit in ins])
    elif gtype in (GateType.OR, GateType.NOR):
        phase = 1 if gtype == GateType.OR else -1
        for lit in ins:
            formula.add_clause([phase * out, -lit])
        formula.add_clause([-phase * out] + list(ins))
    elif gtype in (GateType.NOT, GateType.BUF):
        phase = -1 if gtype == GateType.NOT else 1
        formula.add_clause([-out, phase * ins[0]])
        formula.add_clause([out, -phase * ins[0]])
    elif gtype in (GateType.XOR, GateType.XNOR):
        a, b = ins
        phase = 1 if gtype == GateType.XOR else -1
        # out <-> a xor b (xnor: negate out).
        formula.add_clause([-phase * out, a, b])
        formula.add_clause([-phase * out, -a, -b])
        formula.add_clause([phase * out, -a, b])
        formula.add_clause([phase * out, a, -b])
    elif gtype == GateType.CONST0:
        formula.add_clause([-out])
    elif gtype == GateType.CONST1:
        formula.add_clause([out])
    elif gtype == GateType.MUX:
        select, a, b = ins
        # select=0 -> out=a; select=1 -> out=b.
        formula.add_clause([select, -a, out])
        formula.add_clause([select, a, -out])
        formula.add_clause([-select, -b, out])
        formula.add_clause([-select, b, -out])
    else:  # pragma: no cover - defensive
        raise AssertionError(f"unhandled gate type {gtype}")
