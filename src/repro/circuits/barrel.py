"""Barrel shifter circuits (the ``barrel`` BMC family's namesake).

A barrel shifter rotates a word left by a binary-encoded amount in
log-stages of muxes; the naive shifter muxes over every possible amount.
Their equivalence miter is a mid-hardness structured instance.
"""

from __future__ import annotations

from repro.circuits.miter import build_miter
from repro.circuits.netlist import Circuit


def barrel_shifter(width: int, name: str = "barrel") -> Circuit:
    """Rotate-left of a ``width``-bit word by a ceil(log2(width))-bit amount.

    width must be a power of two so every encoded amount is a valid
    rotation.
    """
    if width < 2 or width & (width - 1):
        raise ValueError("width must be a power of two >= 2")
    stages = width.bit_length() - 1
    circuit = Circuit(name=f"{name}{width}")
    word = circuit.add_inputs(width)
    amount = circuit.add_inputs(stages)
    for stage in range(stages):
        shift = 1 << stage
        rotated = [word[(i - shift) % width] for i in range(width)]
        word = [circuit.mux(amount[stage], word[i], rotated[i]) for i in range(width)]
    for net in word:
        circuit.mark_output(net)
    return circuit


def naive_shifter(width: int, name: str = "naive_shift") -> Circuit:
    """Same function as :func:`barrel_shifter`, via one-hot decode + big OR."""
    if width < 2 or width & (width - 1):
        raise ValueError("width must be a power of two >= 2")
    stages = width.bit_length() - 1
    circuit = Circuit(name=f"{name}{width}")
    word = circuit.add_inputs(width)
    amount = circuit.add_inputs(stages)
    # One-hot decode of the shift amount.
    inverted = [circuit.not_(bit) for bit in amount]
    selects = []
    for value in range(width):
        bits = [
            amount[k] if (value >> k) & 1 else inverted[k] for k in range(stages)
        ]
        selects.append(bits[0] if stages == 1 else circuit.and_(*bits))
    for i in range(width):
        terms = [
            circuit.and_(selects[value], word[(i - value) % width])
            for value in range(width)
        ]
        circuit.mark_output(circuit.or_(*terms))
    return circuit


def shifter_equivalence_miter(width: int) -> Circuit:
    """Barrel vs naive shifter CEC miter."""
    return build_miter(barrel_shifter(width), naive_shifter(width), name=f"shift_eq{width}")
