"""Combinational netlists over integer nets.

Nets are positive integers allocated by the circuit. Gates are simple
records; circuits are DAGs (cycles are rejected at simulation/encoding
time by construction: a gate's inputs must already exist).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence


class GateType(enum.Enum):
    AND = "and"
    OR = "or"
    NOT = "not"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    BUF = "buf"
    CONST0 = "const0"
    CONST1 = "const1"
    MUX = "mux"  # inputs: (select, a, b) -> select ? b : a


_ARITY = {
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.MUX: 3,
}


@dataclass(frozen=True)
class Gate:
    """One gate: type, input nets, output net."""

    gtype: GateType
    inputs: tuple[int, ...]
    output: int


@dataclass
class Circuit:
    """A combinational circuit with named primary inputs and outputs."""

    name: str = "circuit"
    inputs: list[int] = field(default_factory=list)
    outputs: list[int] = field(default_factory=list)
    gates: list[Gate] = field(default_factory=list)
    _next_net: int = 1
    _defined: set[int] = field(default_factory=set)

    # -- construction ------------------------------------------------------

    def new_net(self) -> int:
        net = self._next_net
        self._next_net += 1
        return net

    def add_input(self) -> int:
        net = self.new_net()
        self.inputs.append(net)
        self._defined.add(net)
        return net

    def add_inputs(self, count: int) -> list[int]:
        return [self.add_input() for _ in range(count)]

    def add_gate(self, gtype: GateType, *input_nets: int) -> int:
        """Add a gate over existing nets; returns the fresh output net."""
        expected = _ARITY.get(gtype)
        if expected is not None and len(input_nets) != expected:
            raise ValueError(
                f"{gtype.value} takes {expected} inputs, got {len(input_nets)}"
            )
        if expected is None and len(input_nets) < 2:
            raise ValueError(f"{gtype.value} takes at least 2 inputs")
        for net in input_nets:
            if net not in self._defined:
                raise ValueError(f"net {net} is not defined yet (no feedback loops)")
        output = self.new_net()
        self.gates.append(Gate(gtype, tuple(input_nets), output))
        self._defined.add(output)
        return output

    # Convenience wrappers ---------------------------------------------------

    def and_(self, *nets: int) -> int:
        return self.add_gate(GateType.AND, *nets)

    def or_(self, *nets: int) -> int:
        return self.add_gate(GateType.OR, *nets)

    def not_(self, net: int) -> int:
        return self.add_gate(GateType.NOT, net)

    def xor(self, a: int, b: int) -> int:
        return self.add_gate(GateType.XOR, a, b)

    def xnor(self, a: int, b: int) -> int:
        return self.add_gate(GateType.XNOR, a, b)

    def nand(self, *nets: int) -> int:
        return self.add_gate(GateType.NAND, *nets)

    def nor(self, *nets: int) -> int:
        return self.add_gate(GateType.NOR, *nets)

    def buf(self, net: int) -> int:
        return self.add_gate(GateType.BUF, net)

    def mux(self, select: int, a: int, b: int) -> int:
        """select ? b : a"""
        return self.add_gate(GateType.MUX, select, a, b)

    def const(self, value: bool) -> int:
        return self.add_gate(GateType.CONST1 if value else GateType.CONST0)

    def mark_output(self, net: int) -> int:
        if net not in self._defined:
            raise ValueError(f"net {net} is not defined")
        self.outputs.append(net)
        return net

    # -- queries -------------------------------------------------------------

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def simulate(self, input_values: Sequence[bool]) -> list[bool]:
        """Evaluate the circuit on concrete inputs; returns output values."""
        if len(input_values) != len(self.inputs):
            raise ValueError(
                f"expected {len(self.inputs)} input values, got {len(input_values)}"
            )
        value: dict[int, bool] = dict(zip(self.inputs, input_values))
        for gate in self.gates:
            operands = [value[net] for net in gate.inputs]
            value[gate.output] = _evaluate(gate.gtype, operands)
        return [value[net] for net in self.outputs]


def _evaluate(gtype: GateType, operands: list[bool]) -> bool:
    if gtype == GateType.AND:
        return all(operands)
    if gtype == GateType.OR:
        return any(operands)
    if gtype == GateType.NOT:
        return not operands[0]
    if gtype == GateType.BUF:
        return operands[0]
    if gtype == GateType.XOR:
        return operands[0] != operands[1]
    if gtype == GateType.XNOR:
        return operands[0] == operands[1]
    if gtype == GateType.NAND:
        return not all(operands)
    if gtype == GateType.NOR:
        return not any(operands)
    if gtype == GateType.CONST0:
        return False
    if gtype == GateType.CONST1:
        return True
    if gtype == GateType.MUX:
        select, a, b = operands
        return b if select else a
    raise AssertionError(f"unhandled gate type {gtype}")
