"""Graph coloring instances."""

from __future__ import annotations

from typing import Iterable

from repro.cnf import CnfFormula


def graph_coloring(num_vertices: int, edges: Iterable[tuple[int, int]], colors: int) -> CnfFormula:
    """Can the graph be properly colored with ``colors`` colors?

    Variables x(v, c) = "vertex v has color c" (v, c both 0-based here;
    variables are 1-based). UNSAT iff the chromatic number exceeds
    ``colors``.
    """
    if num_vertices < 1 or colors < 1:
        raise ValueError("need at least one vertex and one color")

    def var(v: int, c: int) -> int:
        return v * colors + c + 1

    clauses: list[list[int]] = []
    for v in range(num_vertices):
        clauses.append([var(v, c) for c in range(colors)])
        for c1 in range(colors):
            for c2 in range(c1 + 1, colors):
                clauses.append([-var(v, c1), -var(v, c2)])
    for u, v in edges:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices) or u == v:
            raise ValueError(f"bad edge ({u}, {v})")
        for c in range(colors):
            clauses.append([-var(u, c), -var(v, c)])
    return CnfFormula(num_vertices * colors, clauses)


def clique_coloring(clique_size: int, colors: int, pendant_vertices: int = 0) -> CnfFormula:
    """Color a ``clique_size``-clique (plus optional pendant padding).

    UNSAT iff colors < clique_size. Pendant vertices hang off the clique
    and are always colorable — they pad the formula without joining the
    unsat core, which makes this family a good Table 3 subject.
    """
    edges = [
        (u, v) for u in range(clique_size) for v in range(u + 1, clique_size)
    ]
    total = clique_size + pendant_vertices
    for extra in range(clique_size, total):
        edges.append((extra % clique_size, extra))
    return graph_coloring(total, edges, colors)
