"""FPGA channel-routing instances (the too_largefs3w8v262 analog).

SAT-based detailed routing (the paper's [3]) asks whether every net can be
assigned a routing track such that nets whose horizontal spans overlap
never share one. With W tracks this is interval-graph coloring: the
instance is un-routable — UNSAT — exactly when some column is crossed by
more than W nets. The unsat core then names the nets responsible for the
congestion, the application §4 highlights.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cnf import CnfFormula


@dataclass(frozen=True)
class RoutingNet:
    """A net occupying columns [start, end] of the channel."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"net span [{self.start}, {self.end}] is inverted")

    def overlaps(self, other: "RoutingNet") -> bool:
        return self.start <= other.end and other.start <= self.end


def channel_routing(nets: list[RoutingNet], tracks: int) -> CnfFormula:
    """Assign each net one of ``tracks`` tracks; overlapping nets differ.

    Variable x(n, t) = "net n uses track t".
    """
    if tracks < 1:
        raise ValueError("need at least one track")

    def var(n: int, t: int) -> int:
        return n * tracks + t + 1

    clauses: list[list[int]] = []
    for n in range(len(nets)):
        clauses.append([var(n, t) for t in range(tracks)])
        for t1 in range(tracks):
            for t2 in range(t1 + 1, tracks):
                clauses.append([-var(n, t1), -var(n, t2)])
    for i in range(len(nets)):
        for j in range(i + 1, len(nets)):
            if nets[i].overlaps(nets[j]):
                for t in range(tracks):
                    clauses.append([-var(i, t), -var(j, t)])
    return CnfFormula(len(nets) * tracks, clauses)


def dense_channel_instance(
    tracks: int,
    congested_nets: int | None = None,
    easy_nets: int = 20,
    seed: int = 0,
) -> tuple[CnfFormula, int]:
    """A channel with one congested region and plenty of routable filler.

    ``congested_nets`` (default ``tracks + 1``) nets all cross column 0 —
    one more than the channel can carry, so the instance is UNSAT — while
    ``easy_nets`` short nets live in disjoint columns far away. The easy
    nets are irrelevant to unsatisfiability, so iterated core extraction
    (Table 3) shrinks the instance down to the congestion.

    Returns (formula, number of congested nets).
    """
    if congested_nets is None:
        congested_nets = tracks + 1
    if congested_nets <= tracks:
        raise ValueError("instance would be routable; need congested_nets > tracks")
    rng = random.Random(seed)
    nets = [RoutingNet(0, 2 + rng.randrange(4)) for _ in range(congested_nets)]
    base = 100
    for i in range(easy_nets):
        start = base + 10 * i
        nets.append(RoutingNet(start, start + rng.randrange(3)))
    return channel_routing(nets, tracks), congested_nets
