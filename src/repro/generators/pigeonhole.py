"""Pigeonhole principle instances."""

from __future__ import annotations

from repro.cnf import CnfFormula


def pigeonhole(pigeons: int, holes: int) -> CnfFormula:
    """PHP(p, h): p pigeons into h holes, one clause set per constraint.

    Unsatisfiable iff pigeons > holes; resolution proofs are exponential
    in the instance size, so small parameters already stress the checker.
    Variable x(i,j) = "pigeon i sits in hole j".
    """
    if pigeons < 1 or holes < 1:
        raise ValueError("need at least one pigeon and one hole")
    clauses: list[list[int]] = []

    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    for i in range(pigeons):
        clauses.append([var(i, j) for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append([-var(i1, j), -var(i2, j)])
    return CnfFormula(pigeons * holes, clauses)
