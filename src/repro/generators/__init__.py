"""Benchmark instance generators.

Synthetic stand-ins for the paper's benchmark families (we have no access
to the original industrial CNF files; see DESIGN.md's substitution table):

* :func:`pigeonhole` — the classic hard verification family.
* :func:`random_ksat` — phase-transition random instances.
* :func:`parity_chain` / :func:`random_parity` — XOR structure (longmult's
  "long resolution proofs" behaviour).
* :func:`graph_coloring` — coloring a graph with too few colors.
* :func:`channel_routing` — FPGA channel routability (too_largefs3w8v262).
* :func:`path_planning` — plan-length infeasibility (bw_large.d's AI
  planning flavour): no plan of length < shortest-path exists.
"""

from repro.generators.pigeonhole import pigeonhole
from repro.generators.random_ksat import random_ksat
from repro.generators.parity import parity_chain, random_parity
from repro.generators.coloring import graph_coloring, clique_coloring
from repro.generators.routing import channel_routing, RoutingNet, dense_channel_instance
from repro.generators.planning import path_planning, grid_planning, swap_planning
from repro.generators.tseitin_graphs import (
    tseitin_formula,
    tseitin_random_regular,
    is_satisfiable_charge,
)

__all__ = [
    "pigeonhole",
    "random_ksat",
    "parity_chain",
    "random_parity",
    "graph_coloring",
    "clique_coloring",
    "channel_routing",
    "RoutingNet",
    "dense_channel_instance",
    "path_planning",
    "grid_planning",
    "swap_planning",
    "tseitin_formula",
    "tseitin_random_regular",
    "is_satisfiable_charge",
]
