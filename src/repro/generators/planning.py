"""Plan-length infeasibility instances (the AI-planning analog).

SAT-based planning encodes "does a plan of length k exist?"; the paper's
bw_large.d is the blocks-world instance of that family, and §4 notes that
its unsat core explains *why* no schedule is feasible. We encode
single-agent movement planning on a graph: the agent starts at one vertex
and must reach a goal within k steps. For k < distance(start, goal) the
instance is UNSAT, and the core names the bottleneck.
"""

from __future__ import annotations

from typing import Iterable

from repro.cnf import CnfFormula


def path_planning(
    num_vertices: int,
    edges: Iterable[tuple[int, int]],
    start: int,
    goal: int,
    horizon: int,
) -> CnfFormula:
    """Reach ``goal`` from ``start`` in at most ``horizon`` moves.

    Variable x(v, t) = "agent at vertex v at time t" (vertices 0-based).
    Encoding: initial state, goal at the final step, exactly-one location
    per step, and frame/transition axioms (at(v, t+1) requires being at v
    or one of its neighbours at t).
    """
    if not 0 <= start < num_vertices or not 0 <= goal < num_vertices:
        raise ValueError("start/goal out of range")
    if horizon < 0:
        raise ValueError("horizon must be >= 0")
    neighbours: dict[int, set[int]] = {v: set() for v in range(num_vertices)}
    for u, v in edges:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices) or u == v:
            raise ValueError(f"bad edge ({u}, {v})")
        neighbours[u].add(v)
        neighbours[v].add(u)

    def var(v: int, t: int) -> int:
        return t * num_vertices + v + 1

    clauses: list[list[int]] = []
    clauses.append([var(start, 0)])
    for v in range(num_vertices):
        if v != start:
            clauses.append([-var(v, 0)])
    clauses.append([var(goal, horizon)])
    for t in range(horizon + 1):
        clauses.append([var(v, t) for v in range(num_vertices)])
        for v1 in range(num_vertices):
            for v2 in range(v1 + 1, num_vertices):
                clauses.append([-var(v1, t), -var(v2, t)])
    for t in range(horizon):
        for v in range(num_vertices):
            clauses.append(
                [-var(v, t + 1), var(v, t)] + [var(u, t) for u in sorted(neighbours[v])]
            )
    return CnfFormula((horizon + 1) * num_vertices, clauses)


def swap_planning(path_length: int, horizon: int) -> CnfFormula:
    """Two agents on a path graph must swap ends — impossible at any horizon.

    Agents occupy distinct vertices and move along edges one step at a
    time; on a path they cannot pass each other, so the goal is
    unreachable for every horizon. Unlike single-agent planning this is
    not refuted by unit propagation alone: the solver must search over
    interleavings (the blocks-world "obstruction" flavour of bw_large.d).

    Variable x(a, v, t) = "agent a at vertex v at time t".
    """
    if path_length < 2:
        raise ValueError("path needs at least 2 vertices")
    if horizon < 0:
        raise ValueError("horizon must be >= 0")
    agents = 2
    n = path_length

    def var(a: int, v: int, t: int) -> int:
        return (t * agents + a) * n + v + 1

    clauses: list[list[int]] = []
    # Initial and goal states: agents at opposite ends, swapped at the end.
    clauses.append([var(0, 0, 0)])
    clauses.append([var(1, n - 1, 0)])
    clauses.append([var(0, n - 1, horizon)])
    clauses.append([var(1, 0, horizon)])
    for t in range(horizon + 1):
        for a in range(agents):
            clauses.append([var(a, v, t) for v in range(n)])
            for v1 in range(n):
                for v2 in range(v1 + 1, n):
                    clauses.append([-var(a, v1, t), -var(a, v2, t)])
        # No two agents on one vertex.
        for v in range(n):
            clauses.append([-var(0, v, t), -var(1, v, t)])
    for t in range(horizon):
        for a in range(agents):
            for v in range(n):
                moves = [var(a, v, t)]
                if v > 0:
                    moves.append(var(a, v - 1, t))
                if v < n - 1:
                    moves.append(var(a, v + 1, t))
                clauses.append([-var(a, v, t + 1)] + moves)
        # No swapping across a single edge in one step.
        for v in range(n - 1):
            for a in range(agents):
                other = 1 - a
                clauses.append(
                    [-var(a, v, t), -var(other, v + 1, t), -var(a, v + 1, t + 1), -var(other, v, t + 1)]
                )
    return CnfFormula((horizon + 1) * agents * n, clauses)


def grid_planning(width: int, height: int, horizon: int | None = None) -> CnfFormula:
    """Corner-to-corner planning on a width x height grid.

    The shortest plan has length (width-1) + (height-1); the default
    horizon is one step short of that, making the instance UNSAT with a
    core that traces the Manhattan-distance argument.
    """
    if width < 1 or height < 1:
        raise ValueError("grid must be non-empty")
    distance = (width - 1) + (height - 1)
    if horizon is None:
        horizon = max(distance - 1, 0)

    def vertex(x: int, y: int) -> int:
        return y * width + x

    edges = []
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                edges.append((vertex(x, y), vertex(x + 1, y)))
            if y + 1 < height:
                edges.append((vertex(x, y), vertex(x, y + 1)))
    return path_planning(
        width * height, edges, start=vertex(0, 0), goal=vertex(width - 1, height - 1),
        horizon=horizon,
    )
