"""Uniform random k-SAT."""

from __future__ import annotations

import random

from repro.cnf import CnfFormula


def random_ksat(num_vars: int, num_clauses: int, k: int = 3, seed: int = 0) -> CnfFormula:
    """Uniform random k-SAT: each clause draws k distinct variables.

    At clause/variable ratio ~4.27 (k=3) instances sit at the
    SAT/UNSAT phase transition; above it they are almost surely UNSAT
    with proofs of meaningful size.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if num_vars < k:
        raise ValueError("need at least k variables")
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), k)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return CnfFormula(num_vars, clauses)
