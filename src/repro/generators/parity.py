"""XOR / parity instances — the structure behind ``longmult``.

XOR constraints have no short resolution refutations in general; these
generators produce instances whose proofs use a large fraction of the
learned clauses (the paper's Table 2 calls out longmult12 for exactly
this).
"""

from __future__ import annotations

import random

from repro.cnf import CnfFormula


def _xor_clauses(variables: list[int], parity: bool) -> list[list[int]]:
    """Direct CNF of x1 ^ ... ^ xn = parity (2^(n-1) clauses)."""
    clauses = []
    n = len(variables)
    for mask in range(1 << n):
        ones = bin(mask).count("1")
        # Forbid assignments with the wrong parity: assignment bit 1 = var
        # true. A clause negates one forbidden full assignment.
        if (ones % 2 == 1) != parity:
            clauses.append(
                [-variables[i] if (mask >> i) & 1 else variables[i] for i in range(n)]
            )
    return clauses


def parity_chain(length: int, satisfiable: bool = False) -> CnfFormula:
    """Chained 3-variable XORs x_i ^ x_{i+1} ^ y_i = 0 with contradictory ends.

    The chain forces x_1 == x_n through intermediate carries; pinning the
    two ends to different values makes it unsatisfiable.
    """
    if length < 2:
        raise ValueError("length must be >= 2")
    clauses: list[list[int]] = []
    # Variables: x_1..x_length, then y_1..y_{length-1}.
    def x(i: int) -> int:
        return i

    def y(i: int) -> int:
        return length + i

    for i in range(1, length):
        clauses.extend(_xor_clauses([x(i), x(i + 1), y(i)], parity=False))
        clauses.append([-y(i)])  # carry pinned low => x_i == x_{i+1}
    clauses.append([x(1)])
    clauses.append([x(length)] if satisfiable else [-x(length)])
    return CnfFormula(2 * length - 1, clauses)


def random_parity(num_vars: int, num_constraints: int, arity: int = 3, seed: int = 0) -> CnfFormula:
    """Random XOR constraints of given arity; over-constrained => UNSAT.

    With num_constraints > num_vars the linear system over GF(2) is almost
    surely inconsistent, and resolution needs long proofs to show it.
    """
    if arity < 2:
        raise ValueError("arity must be >= 2")
    if num_vars < arity:
        raise ValueError("need at least `arity` variables")
    rng = random.Random(seed)
    clauses: list[list[int]] = []
    for _ in range(num_constraints):
        variables = rng.sample(range(1, num_vars + 1), arity)
        clauses.extend(_xor_clauses(variables, parity=rng.random() < 0.5))
    return CnfFormula(num_vars, clauses)
