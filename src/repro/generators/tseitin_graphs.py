"""Tseitin graph formulas — provably hard for resolution (Urquhart 1987).

Assign every vertex v a charge c(v) in GF(2) and every edge a Boolean
variable; constrain each vertex's incident edge variables to XOR to its
charge. The formula is satisfiable iff the total charge of every connected
component is even. Over expander graphs these formulas need exponentially
long resolution proofs — the theoretical ceiling behind the paper's
empirical longmult observation that XOR structure makes checking-relevant
proofs long.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.cnf import CnfFormula


def tseitin_formula(
    num_vertices: int,
    edges: Sequence[tuple[int, int]],
    charges: Sequence[bool],
) -> CnfFormula:
    """The Tseitin formula of a charged graph.

    Edge *i* (0-based) becomes variable *i+1*. Vertex constraints are
    expanded to CNF directly (2^(d-1) clauses for degree d — keep degrees
    small).
    """
    if len(charges) != num_vertices:
        raise ValueError("need exactly one charge per vertex")
    incident: dict[int, list[int]] = {v: [] for v in range(num_vertices)}
    for index, (u, v) in enumerate(edges):
        if not (0 <= u < num_vertices and 0 <= v < num_vertices) or u == v:
            raise ValueError(f"bad edge ({u}, {v})")
        incident[u].append(index + 1)
        incident[v].append(index + 1)

    clauses: list[list[int]] = []
    for vertex in range(num_vertices):
        variables = incident[vertex]
        degree = len(variables)
        if degree == 0:
            if charges[vertex]:
                clauses.append([])  # odd charge on an isolated vertex: UNSAT
            continue
        if degree > 12:
            raise ValueError(
                f"vertex {vertex} has degree {degree}; the direct CNF "
                "expansion would be huge"
            )
        for mask in range(1 << degree):
            ones = bin(mask).count("1")
            if (ones % 2 == 1) != charges[vertex]:
                clauses.append(
                    [
                        -variables[i] if (mask >> i) & 1 else variables[i]
                        for i in range(degree)
                    ]
                )
    return CnfFormula(len(edges), clauses)


def is_satisfiable_charge(
    num_vertices: int, edges: Sequence[tuple[int, int]], charges: Sequence[bool]
) -> bool:
    """Ground truth by graph theory: every component's charge must be even."""
    parent = list(range(num_vertices))

    def find(v: int) -> int:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for u, v in edges:
        parent[find(u)] = find(v)
    component_charge: dict[int, int] = {}
    for vertex in range(num_vertices):
        root = find(vertex)
        component_charge[root] = component_charge.get(root, 0) ^ int(charges[vertex])
    return all(charge == 0 for charge in component_charge.values())


def tseitin_random_regular(
    num_vertices: int, degree: int = 3, seed: int = 0, satisfiable: bool = False
) -> CnfFormula:
    """Tseitin formula over a random ``degree``-regular graph.

    Charges are random with the total parity fixed to make the instance
    UNSAT (default) or SAT. Random regular graphs are expanders with high
    probability — the hard case for resolution.
    """
    import networkx as nx

    if num_vertices * degree % 2:
        raise ValueError("num_vertices * degree must be even")
    graph = nx.random_regular_graph(degree, num_vertices, seed=seed)
    edges = [tuple(sorted(edge)) for edge in graph.edges()]
    rng = random.Random(seed + 1)
    charges = [rng.random() < 0.5 for _ in range(num_vertices)]
    # Random regular graphs on these sizes are connected w.h.p.; fix total
    # parity by flipping one charge if needed.
    total_odd = sum(charges) % 2 == 1
    want_odd = not satisfiable
    if total_odd != want_odd:
        charges[0] = not charges[0]
    return tseitin_formula(num_vertices, edges, charges)
