"""Core extraction: one-shot and iterate-to-fixed-point."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checker.depth_first import DepthFirstChecker
from repro.cnf import CnfFormula
from repro.solver import SolverConfig, Solver
from repro.trace import InMemoryTraceWriter


@dataclass
class CoreResult:
    """An unsatisfiable core, as clause IDs of the *input* formula."""

    core_clause_ids: set[int]
    num_clauses: int
    num_variables: int
    solver_conflicts: int
    checker_built_pct: float

    @classmethod
    def empty(cls) -> "CoreResult":  # pragma: no cover - convenience
        return cls(set(), 0, 0, 0, 0.0)


@dataclass
class CoreIterationResult:
    """Table 3 for one instance: per-iteration core sizes.

    ``iterations[0]`` describes the input formula itself (clauses /
    used-variables); entry ``i`` (i >= 1) is the core after ``i``
    solve->check->extract rounds. ``reached_fixed_point`` is True when the
    final round returned every clause it was given — from then on the core
    cannot shrink.
    """

    iterations: list[tuple[int, int]] = field(default_factory=list)  # (clauses, vars)
    reached_fixed_point: bool = False
    final_core_ids: set[int] = field(default_factory=set)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations) - 1

    @property
    def first_iteration(self) -> tuple[int, int]:
        return self.iterations[1] if len(self.iterations) > 1 else self.iterations[0]

    @property
    def final(self) -> tuple[int, int]:
        return self.iterations[-1]


def extract_core(
    formula: CnfFormula,
    config: SolverConfig | None = None,
) -> CoreResult:
    """Solve an UNSAT formula and return the proof's unsatisfiable core.

    Raises ``ValueError`` if the formula turns out satisfiable, and
    re-raises the checker failure if the proof does not verify (the core is
    only trustworthy when the proof is).
    """
    writer = InMemoryTraceWriter()
    result = Solver(formula, config=config, trace_writer=writer).solve()
    if not result.is_unsat:
        raise ValueError(f"core extraction needs an UNSAT formula, solver said {result.status}")
    report = DepthFirstChecker(formula, writer.to_trace()).check()
    report.raise_if_failed()
    assert report.original_core is not None
    variables = {
        abs(lit)
        for cid in report.original_core
        for lit in formula[cid].literals
    }
    return CoreResult(
        core_clause_ids=set(report.original_core),
        num_clauses=len(report.original_core),
        num_variables=len(variables),
        solver_conflicts=result.stats.conflicts,
        checker_built_pct=report.built_pct,
    )


def minimal_core(
    formula: CnfFormula,
    config: SolverConfig | None = None,
    start_from: set[int] | None = None,
) -> set[int]:
    """A *minimal* unsatisfiable subformula (MUS) by deletion testing.

    The paper's §4 fixed-point iteration shrinks the core as far as
    proof-based extraction can; this goes the rest of the way (the
    Bruni/Sassano-style guarantee the paper cites as [16]): drop each
    clause whose removal leaves the rest unsatisfiable. Every "still
    UNSAT" answer along the way is proof-checked (via
    :func:`extract_core`), and the checked cores double as an
    accelerator — clauses outside a returned core are discarded wholesale.

    Returns clause IDs of the input formula. Quadratic in SAT calls in the
    worst case; intended for the post-`iterate_core` residue.
    """
    if start_from is None:
        start_from = iterate_core(formula, config=config).final_core_ids
    working = sorted(start_from)
    necessary: set[int] = set()  # proven: removal makes the rest SAT

    while True:
        candidates = [cid for cid in working if cid not in necessary]
        if not candidates:
            return set(working)
        candidate = candidates[0]
        trial_ids = [cid for cid in working if cid != candidate]
        sub = formula.restrict_to(trial_ids)
        writer = InMemoryTraceWriter()
        result = Solver(sub, config=config, trace_writer=writer).solve()
        if not result.is_unsat:
            # Necessity is monotone under shrinking, so this never needs
            # re-testing as `working` gets smaller.
            necessary.add(candidate)
            continue
        report = DepthFirstChecker(sub, writer.to_trace()).check()
        report.raise_if_failed()
        assert report.original_core is not None
        working = sorted(trial_ids[cid - 1] for cid in report.original_core)


def iterate_core(
    formula: CnfFormula,
    max_iterations: int = 30,
    config: SolverConfig | None = None,
) -> CoreIterationResult:
    """Iterate solve->check->extract up to ``max_iterations`` times (§4).

    Stops early at a fixed point (the core stops shrinking). Core IDs are
    reported in terms of the *input* formula's clause numbering throughout.
    """
    outcome = CoreIterationResult()
    current_ids = sorted(range(1, formula.num_clauses + 1))
    outcome.iterations.append((formula.num_clauses, len(formula.used_variables())))

    for _ in range(max_iterations):
        sub = formula.restrict_to(current_ids)
        core = extract_core(sub, config=config)
        # restrict_to renumbers 1..k in ascending original-ID order: map back.
        core_in_input_ids = sorted(current_ids[cid - 1] for cid in core.core_clause_ids)
        outcome.iterations.append((core.num_clauses, core.num_variables))
        if len(core_in_input_ids) == len(current_ids):
            outcome.reached_fixed_point = True
            current_ids = core_in_input_ids
            break
        current_ids = core_in_input_ids

    outcome.final_core_ids = set(current_ids)
    return outcome
