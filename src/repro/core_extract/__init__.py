"""Unsatisfiable-core extraction (§4 of the paper, Table 3).

The depth-first checker's byproduct — the set of original clauses the proof
touches — is an unsatisfiable core. Feeding the core back to the solver and
re-extracting shrinks it further; iterating reaches a fixed point where
every clause participates in the proof.

Applications named by the paper: explaining infeasible AI-planning
schedules, pinpointing un-routable FPGA channels, debugging Alloy models.
"""

from repro.core_extract.extract import (
    CoreResult,
    CoreIterationResult,
    extract_core,
    iterate_core,
    minimal_core,
)

__all__ = [
    "CoreResult",
    "CoreIterationResult",
    "extract_core",
    "iterate_core",
    "minimal_core",
]
