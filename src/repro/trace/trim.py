"""Trace trimming: keep only the clauses a proof actually needs.

The depth-first checker "can tell what clauses are needed for this proof
of unsatisfiability" (§3.2). Trimming materializes that — but the *set* of
needed clauses is a purely structural fact, so it is computed by the
static derivation-graph analyzer (:mod:`repro.analysis.graph`) without
replaying a single resolution. The result drops every learned-clause
record outside the backward-reachable cone of the final conflict, yielding
a smaller trace that still checks with every strategy (clause IDs are
preserved, so resolve-source references stay valid). This is the ancestor
of drat-trim's core extraction.

Pass ``verify=True`` to additionally run the depth-first checker over the
input first — then a trace that is structurally sound but semantically
wrong (a broken resolution chain) is rejected before trimming, exactly as
the pre-analyzer implementation behaved.

Deletion records ride along: a ``ClauseDeletion`` survives trimming iff
its target clause does, and its stream position (anchored to the last
preceding learned record) is re-keyed to the nearest kept anchor so the
interleaving stays faithful.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.cnf import CnfFormula
from repro.trace.records import Trace, TraceError


@dataclass
class TrimResult:
    """A trimmed trace plus before/after accounting."""

    trace: Trace
    kept_learned: int
    dropped_learned: int
    original_core: set[int]
    kept_deletions: int = 0
    dropped_deletions: int = 0

    @property
    def kept_fraction(self) -> float:
        total = self.kept_learned + self.dropped_learned
        return self.kept_learned / total if total else 1.0


def trim_trace(formula: CnfFormula, trace: Trace, verify: bool = False) -> TrimResult:
    """Return a copy of ``trace`` containing only the needed clauses.

    The needed set is the static backward-reachable cone over ALL proof
    roots (first final conflict plus every level-0 antecedent) — a
    superset of what a depth-first derivation touches, and exactly what
    keeps the trimmed trace valid for every checker: the level-0 trail is
    preserved verbatim, so each of its antecedent references must stay
    resolvable.

    Raises :class:`TraceError` if the trace is structurally broken or does
    not claim UNSAT — a trimmed invalid proof would be meaningless. With
    ``verify=True`` the depth-first checker replays the proof first, so a
    semantically wrong trace raises its :class:`CheckFailure` too.
    """
    # Imported here: repro.checker / repro.analysis depend on repro.trace
    # at import time.
    from repro.analysis.graph import build_graph

    report = None
    if verify:
        from repro.checker.depth_first import DepthFirstChecker

        checker = DepthFirstChecker(formula, trace)
        report = checker.check()
        report.raise_if_failed()
        assert report.original_core is not None

    graph = build_graph(trace)
    if graph.violations:
        raise TraceError(
            f"cannot trim a structurally broken trace: {graph.violations[0]}"
        )
    if graph.status != "UNSAT":
        raise TraceError(f"trace does not claim UNSAT (status {graph.status!r})")
    if not graph.final_conflicts:
        raise TraceError("trace has no final conflicting clause")
    if formula.num_clauses != trace.header.num_original_clauses:
        raise TraceError(
            "formula / trace disagree on the number of original clauses"
        )

    num_original = trace.header.num_original_clauses
    cone = graph.cone()
    needed = {cid for cid in cone if cid > num_original}

    trimmed = Trace(trace.header)
    for cid, record in trace.learned.items():
        if cid in needed:
            trimmed.learned[cid] = record
    trimmed.level_zero = list(trace.level_zero)
    trimmed.final_conflicts = [trace.final_conflicts[0]]
    trimmed.status = trace.status

    # Re-anchor surviving deletions. A deletion is kept iff the clause it
    # deletes is kept; its anchor (last learned cid recorded before it)
    # moves to the greatest *kept* learned cid not exceeding the original
    # anchor, or 0 when every earlier learned record was dropped.
    kept_sorted = sorted(trimmed.learned)
    kept_deletions = dropped_deletions = 0
    for anchor, cids in trace.deletions.items():
        if anchor and anchor not in trimmed.learned:
            index = bisect.bisect_right(kept_sorted, anchor)
            anchor = kept_sorted[index - 1] if index else 0
        for cid in cids:
            if cid in trimmed.learned:
                trimmed.deletions.setdefault(anchor, []).append(cid)
                kept_deletions += 1
            else:
                dropped_deletions += 1

    if report is not None:
        original_core = set(report.original_core)
    else:
        original_core = set(graph.original_core())
    return TrimResult(
        trace=trimmed,
        kept_learned=len(trimmed.learned),
        dropped_learned=trace.num_learned - len(trimmed.learned),
        original_core=original_core,
        kept_deletions=kept_deletions,
        dropped_deletions=dropped_deletions,
    )


def write_trimmed(
    formula: CnfFormula,
    trace: Trace,
    path,
    fmt: str = "ascii",
    verify: bool = False,
) -> TrimResult:
    """Trim and write the result to ``path`` in the requested format."""
    from repro.trace.io import open_trace_writer

    result = trim_trace(formula, trace, verify=verify)
    writer = open_trace_writer(path, fmt)
    trimmed = result.trace
    writer.header(trimmed.header.num_vars, trimmed.header.num_original_clauses)
    for dcid in trimmed.deletions.get(0, ()):
        writer.clause_deletion(dcid)
    for record in trimmed.learned.values():
        writer.learned_clause(record.cid, record.sources)
        for dcid in trimmed.deletions.get(record.cid, ()):
            writer.clause_deletion(dcid)
    for entry in trimmed.level_zero:
        writer.level_zero(entry.var, entry.value, entry.antecedent)
    for cid in trimmed.final_conflicts:
        writer.final_conflict(cid)
    writer.result(trimmed.status)
    writer.close()
    return result
