"""Trace trimming: keep only the clauses a proof actually needs.

The depth-first checker "can tell what clauses are needed for this proof
of unsatisfiability" (§3.2). Trimming materializes that: it drops every
learned-clause record the empty-clause derivation never touches, yielding
a smaller trace that still checks with every strategy (clause IDs are
preserved, so resolve-source references stay valid). This is the ancestor
of drat-trim's core extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnf import CnfFormula
from repro.trace.records import Trace


@dataclass
class TrimResult:
    """A trimmed trace plus before/after accounting."""

    trace: Trace
    kept_learned: int
    dropped_learned: int
    original_core: set[int]

    @property
    def kept_fraction(self) -> float:
        total = self.kept_learned + self.dropped_learned
        return self.kept_learned / total if total else 1.0


def trim_trace(formula: CnfFormula, trace: Trace) -> TrimResult:
    """Verify ``trace`` and return a copy containing only needed clauses.

    Raises the checker's failure if the input trace does not constitute a
    valid proof — a trimmed invalid proof would be meaningless.
    """
    # Imported here: repro.checker depends on repro.trace at import time.
    from repro.checker.depth_first import DepthFirstChecker

    checker = DepthFirstChecker(formula, trace)
    report = checker.check()
    report.raise_if_failed()
    assert report.learned_used is not None and report.original_core is not None

    # Keep the transitive closure over ALL proof roots (final conflict plus
    # every level-0 antecedent). This is a superset of what the DF
    # derivation touched, and it is exactly what keeps the trimmed trace
    # valid for every checker: the level-0 trail is preserved verbatim, so
    # each of its antecedent references must stay resolvable.
    num_original = trace.header.num_original_clauses
    roots = [trace.final_conflicts[0]] + [e.antecedent for e in trace.level_zero]
    needed: set[int] = set()
    stack = [cid for cid in roots if cid > num_original]
    while stack:
        cid = stack.pop()
        if cid in needed:
            continue
        needed.add(cid)
        for source in trace.learned[cid].sources:
            if source > num_original and source not in needed:
                stack.append(source)

    trimmed = Trace(trace.header)
    for cid, record in trace.learned.items():
        if cid in needed:
            trimmed.learned[cid] = record
    trimmed.level_zero = list(trace.level_zero)
    trimmed.final_conflicts = [trace.final_conflicts[0]]
    trimmed.status = trace.status
    return TrimResult(
        trace=trimmed,
        kept_learned=len(trimmed.learned),
        dropped_learned=trace.num_learned - len(trimmed.learned),
        original_core=set(report.original_core),
    )


def write_trimmed(formula: CnfFormula, trace: Trace, path, fmt: str = "ascii") -> TrimResult:
    """Trim and write the result to ``path`` in the requested format."""
    from repro.trace.io import open_trace_writer

    result = trim_trace(formula, trace)
    writer = open_trace_writer(path, fmt)
    writer.header(result.trace.header.num_vars, result.trace.header.num_original_clauses)
    for record in result.trace.learned.values():
        writer.learned_clause(record.cid, record.sources)
    for entry in result.trace.level_zero:
        writer.level_zero(entry.var, entry.value, entry.antecedent)
    for cid in result.trace.final_conflicts:
        writer.final_conflict(cid)
    writer.result(result.trace.status)
    writer.close()
    return result
