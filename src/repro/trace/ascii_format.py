"""Human-readable ASCII trace format.

Line-oriented, one record per line:

    T <num_vars> <num_original_clauses>     header
    CL <cid> <src1> <src2> ...              learned clause + resolve sources
    D <cid>                                 advisory clause deletion
    V <var> <0|1> <antecedent_cid>          level-0 trail entry
    CONF <cid>                              final conflicting clause
    R SAT|UNSAT                             solver claim

The paper notes this style of format favours debuggability over space; see
``binary_format`` for the compact encoding.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterator

from repro.trace.records import (
    ClauseDeletion,
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    Trace,
    TraceError,
    TraceHeader,
    TraceRecord,
    TraceResult,
    assemble_trace,
)


class AsciiTraceWriter:
    """Streams trace records to a text file as they are produced."""

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._handle: IO[str] = open(self._path, "w", encoding="ascii")
        self._closed = False

    def header(self, num_vars: int, num_original_clauses: int) -> None:
        self._handle.write(f"T {num_vars} {num_original_clauses}\n")

    def learned_clause(self, cid: int, sources: list[int] | tuple[int, ...]) -> None:
        self._handle.write(f"CL {cid} " + " ".join(map(str, sources)) + "\n")

    def clause_deletion(self, cid: int) -> None:
        self._handle.write(f"D {cid}\n")

    def level_zero(self, var: int, value: bool, antecedent: int) -> None:
        self._handle.write(f"V {var} {1 if value else 0} {antecedent}\n")

    def final_conflict(self, cid: int) -> None:
        self._handle.write(f"CONF {cid}\n")

    def result(self, status: str) -> None:
        self._handle.write(f"R {status}\n")

    def close(self) -> None:
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "AsciiTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_ascii_records(path: str | Path) -> Iterator[TraceRecord]:
    """Stream records from an ASCII trace file (constant memory)."""
    with open(path, "r", encoding="ascii") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            tag = fields[0]
            try:
                if tag == "T":
                    yield TraceHeader(int(fields[1]), int(fields[2]))
                elif tag == "CL":
                    yield LearnedClause(int(fields[1]), tuple(map(int, fields[2:])))
                elif tag == "D":
                    yield ClauseDeletion(int(fields[1]))
                elif tag == "V":
                    yield LevelZeroAssignment(
                        int(fields[1]), fields[2] == "1", int(fields[3])
                    )
                elif tag == "CONF":
                    yield FinalConflict(int(fields[1]))
                elif tag == "R":
                    yield TraceResult(fields[1])
                else:
                    raise TraceError(f"line {lineno}: unknown record tag {tag!r}")
            except (IndexError, ValueError) as exc:
                raise TraceError(f"line {lineno}: malformed record {line!r}") from exc


def read_ascii_trace(path: str | Path) -> Trace:
    """Load a full ASCII trace into memory."""
    return assemble_trace(iter_ascii_records(path))
