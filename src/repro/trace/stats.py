"""Trace analytics: what is actually inside a resolution trace.

Useful when tuning the trace format (the paper's §4 compaction remark) or
diagnosing why a checker run is slow: the distribution of resolve-chain
lengths tells you how much re-resolution work the checker faces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.trace.io import iter_trace_records
from repro.trace.records import (
    ClauseDeletion,
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    TraceHeader,
    TraceResult,
)


@dataclass
class TraceStatistics:
    """Aggregate numbers for one trace."""

    num_vars: int = 0
    num_original_clauses: int = 0
    num_learned: int = 0
    total_sources: int = 0
    max_sources: int = 0
    chain_length_histogram: dict[int, int] = field(default_factory=dict)
    level_zero_entries: int = 0
    final_conflicts: int = 0
    deletions: int = 0
    status: str = "UNKNOWN"

    @property
    def mean_sources(self) -> float:
        if self.num_learned == 0:
            return 0.0
        return self.total_sources / self.num_learned

    @property
    def total_resolutions(self) -> int:
        """Resolutions the checker must perform to rebuild every clause."""
        return self.total_sources - self.num_learned if self.num_learned else 0

    def summary(self) -> str:
        lines = [
            f"variables          : {self.num_vars}",
            f"original clauses   : {self.num_original_clauses}",
            f"learned clauses    : {self.num_learned}",
            f"resolve sources    : {self.total_sources} "
            f"(mean {self.mean_sources:.2f}, max {self.max_sources})",
            f"resolutions to replay: {self.total_resolutions}",
            f"level-0 trail      : {self.level_zero_entries} entries",
            f"final conflicts    : {self.final_conflicts}",
            f"deletions          : {self.deletions}",
            f"claimed result     : {self.status}",
        ]
        if self.chain_length_histogram:
            lines.append("chain length histogram:")
            for length in sorted(self.chain_length_histogram):
                count = self.chain_length_histogram[length]
                lines.append(f"  {length:4d} sources: {count}")
        return "\n".join(lines)


def analyze_trace(path: str | Path) -> TraceStatistics:
    """Stream a trace file and accumulate statistics (constant memory)."""
    stats = TraceStatistics()
    for record in iter_trace_records(path):
        if isinstance(record, TraceHeader):
            stats.num_vars = record.num_vars
            stats.num_original_clauses = record.num_original_clauses
        elif isinstance(record, LearnedClause):
            stats.num_learned += 1
            count = len(record.sources)
            stats.total_sources += count
            if count > stats.max_sources:
                stats.max_sources = count
            stats.chain_length_histogram[count] = (
                stats.chain_length_histogram.get(count, 0) + 1
            )
        elif isinstance(record, ClauseDeletion):
            stats.deletions += 1
        elif isinstance(record, LevelZeroAssignment):
            stats.level_zero_entries += 1
        elif isinstance(record, FinalConflict):
            stats.final_conflicts += 1
        elif isinstance(record, TraceResult):
            stats.status = record.status
    return stats
