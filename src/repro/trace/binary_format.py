"""Compact binary trace format.

Implements the paper's remark that switching from ASCII to a binary
encoding buys a 2-3x size reduction and faster parsing. Layout:

    magic  b"RTB1"
    records, each:  1 tag byte + LEB128 varint payload

Clause IDs inside a ``CL`` record are delta-encoded against the learned
clause's own ID (sources are always smaller than the learned ID), which
keeps most varints short on real traces.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterator

from repro.trace.records import (
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    Trace,
    TraceError,
    TraceHeader,
    TraceRecord,
    TraceResult,
    assemble_trace,
)

MAGIC = b"RTB1"

_TAG_HEADER = 0x01
_TAG_LEARNED = 0x02
_TAG_LEVEL_ZERO = 0x03
_TAG_FINAL_CONFLICT = 0x04
_TAG_RESULT_SAT = 0x05
_TAG_RESULT_UNSAT = 0x06
_TAG_RESULT_UNKNOWN = 0x07  # added after v1; old readers never see it from old files

_RESULT_TAGS = {
    "SAT": _TAG_RESULT_SAT,
    "UNSAT": _TAG_RESULT_UNSAT,
    "UNKNOWN": _TAG_RESULT_UNKNOWN,
}


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(read: "_ByteReader") -> int:
    """Decode one LEB128 varint from a byte reader."""
    shift = 0
    result = 0
    while True:
        byte = read.next_byte()
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 63:
            raise TraceError("varint too long")


class _ByteReader:
    """Buffered byte-at-a-time reader over a binary stream."""

    def __init__(self, handle: IO[bytes], chunk_size: int = 1 << 16):
        self._handle = handle
        self._chunk_size = chunk_size
        self._buffer = b""
        self._pos = 0

    def next_byte(self) -> int:
        if self._pos >= len(self._buffer):
            self._buffer = self._handle.read(self._chunk_size)
            self._pos = 0
            if not self._buffer:
                raise TraceError("unexpected end of binary trace")
        byte = self._buffer[self._pos]
        self._pos += 1
        return byte

    def at_eof(self) -> bool:
        if self._pos < len(self._buffer):
            return False
        self._buffer = self._handle.read(self._chunk_size)
        self._pos = 0
        return not self._buffer


class BinaryTraceWriter:
    """Streams trace records to a compact binary file."""

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._handle: IO[bytes] = open(self._path, "wb")
        self._handle.write(MAGIC)
        self._closed = False

    def header(self, num_vars: int, num_original_clauses: int) -> None:
        self._handle.write(
            bytes([_TAG_HEADER])
            + encode_varint(num_vars)
            + encode_varint(num_original_clauses)
        )

    def learned_clause(self, cid: int, sources: list[int] | tuple[int, ...]) -> None:
        parts = [bytes([_TAG_LEARNED]), encode_varint(cid), encode_varint(len(sources))]
        for src in sources:
            # Sources always precede the learned clause, so cid - src > 0.
            delta = cid - src
            if delta <= 0:
                raise TraceError(
                    f"learned clause {cid} lists source {src} with id >= its own"
                )
            parts.append(encode_varint(delta))
        self._handle.write(b"".join(parts))

    def level_zero(self, var: int, value: bool, antecedent: int) -> None:
        self._handle.write(
            bytes([_TAG_LEVEL_ZERO])
            + encode_varint(var * 2 + (1 if value else 0))
            + encode_varint(antecedent)
        )

    def final_conflict(self, cid: int) -> None:
        self._handle.write(bytes([_TAG_FINAL_CONFLICT]) + encode_varint(cid))

    def result(self, status: str) -> None:
        tag = _RESULT_TAGS.get(status)
        if tag is None:
            raise TraceError(
                f"cannot encode result status {status!r}; "
                f"expected one of {sorted(_RESULT_TAGS)}"
            )
        self._handle.write(bytes([tag]))

    def close(self) -> None:
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_binary_records(path: str | Path) -> Iterator[TraceRecord]:
    """Stream records from a binary trace file (constant memory)."""
    with open(path, "rb") as handle:
        if handle.read(len(MAGIC)) != MAGIC:
            raise TraceError(f"{path}: not a binary trace (bad magic)")
        reader = _ByteReader(handle)
        while not reader.at_eof():
            tag = reader.next_byte()
            if tag == _TAG_HEADER:
                yield TraceHeader(decode_varint(reader), decode_varint(reader))
            elif tag == _TAG_LEARNED:
                cid = decode_varint(reader)
                count = decode_varint(reader)
                sources = tuple(cid - decode_varint(reader) for _ in range(count))
                yield LearnedClause(cid, sources)
            elif tag == _TAG_LEVEL_ZERO:
                packed = decode_varint(reader)
                yield LevelZeroAssignment(packed >> 1, bool(packed & 1), decode_varint(reader))
            elif tag == _TAG_FINAL_CONFLICT:
                yield FinalConflict(decode_varint(reader))
            elif tag == _TAG_RESULT_SAT:
                yield TraceResult("SAT")
            elif tag == _TAG_RESULT_UNSAT:
                yield TraceResult("UNSAT")
            elif tag == _TAG_RESULT_UNKNOWN:
                yield TraceResult("UNKNOWN")
            else:
                raise TraceError(f"unknown binary record tag {tag:#x}")


def read_binary_trace(path: str | Path) -> Trace:
    """Load a full binary trace into memory."""
    return assemble_trace(iter_binary_records(path))
