"""Compact binary trace format.

Implements the paper's remark that switching from ASCII to a binary
encoding buys a 2-3x size reduction and faster parsing. Layout:

    magic  b"RTB1"
    records, each:  1 tag byte + LEB128 varint payload

Clause IDs inside a ``CL`` record are delta-encoded against the learned
clause's own ID (sources are always smaller than the learned ID), which
keeps most varints short on real traces.
"""

from __future__ import annotations

import mmap
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from repro.trace.records import (
    ClauseDeletion,
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    Trace,
    TraceError,
    TraceHeader,
    TraceRecord,
    TraceResult,
    assemble_trace,
)

MAGIC = b"RTB1"

_TAG_HEADER = 0x01
_TAG_LEARNED = 0x02
_TAG_LEVEL_ZERO = 0x03
_TAG_FINAL_CONFLICT = 0x04
_TAG_RESULT_SAT = 0x05
_TAG_RESULT_UNSAT = 0x06
_TAG_RESULT_UNKNOWN = 0x07  # added after v1; old readers never see it from old files
_TAG_DELETION = 0x08  # advisory clause deletion; added with the graph analyzer

_RESULT_TAGS = {
    "SAT": _TAG_RESULT_SAT,
    "UNSAT": _TAG_RESULT_UNSAT,
    "UNKNOWN": _TAG_RESULT_UNKNOWN,
}


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(read: "_ByteReader") -> int:
    """Decode one LEB128 varint from a byte reader."""
    shift = 0
    result = 0
    while True:
        byte = read.next_byte()
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 63:
            raise TraceError("varint too long")


class _ByteReader:
    """Buffered byte-at-a-time reader over a binary stream."""

    def __init__(self, handle: IO[bytes], chunk_size: int = 1 << 16):
        self._handle = handle
        self._chunk_size = chunk_size
        self._buffer = b""
        self._pos = 0

    def next_byte(self) -> int:
        if self._pos >= len(self._buffer):
            self._buffer = self._handle.read(self._chunk_size)
            self._pos = 0
            if not self._buffer:
                raise TraceError("unexpected end of binary trace")
        byte = self._buffer[self._pos]
        self._pos += 1
        return byte

    def at_eof(self) -> bool:
        if self._pos < len(self._buffer):
            return False
        self._buffer = self._handle.read(self._chunk_size)
        self._pos = 0
        return not self._buffer


class BinaryTraceWriter:
    """Streams trace records to a compact binary file."""

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._handle: IO[bytes] = open(self._path, "wb")
        self._handle.write(MAGIC)
        self._closed = False

    def header(self, num_vars: int, num_original_clauses: int) -> None:
        self._handle.write(
            bytes([_TAG_HEADER])
            + encode_varint(num_vars)
            + encode_varint(num_original_clauses)
        )

    def learned_clause(self, cid: int, sources: list[int] | tuple[int, ...]) -> None:
        parts = [bytes([_TAG_LEARNED]), encode_varint(cid), encode_varint(len(sources))]
        for src in sources:
            # Sources always precede the learned clause, so cid - src > 0.
            delta = cid - src
            if delta <= 0:
                raise TraceError(
                    f"learned clause {cid} lists source {src} with id >= its own"
                )
            parts.append(encode_varint(delta))
        self._handle.write(b"".join(parts))

    def clause_deletion(self, cid: int) -> None:
        self._handle.write(bytes([_TAG_DELETION]) + encode_varint(cid))

    def level_zero(self, var: int, value: bool, antecedent: int) -> None:
        self._handle.write(
            bytes([_TAG_LEVEL_ZERO])
            + encode_varint(var * 2 + (1 if value else 0))
            + encode_varint(antecedent)
        )

    def final_conflict(self, cid: int) -> None:
        self._handle.write(bytes([_TAG_FINAL_CONFLICT]) + encode_varint(cid))

    def result(self, status: str) -> None:
        tag = _RESULT_TAGS.get(status)
        if tag is None:
            raise TraceError(
                f"cannot encode result status {status!r}; "
                f"expected one of {sorted(_RESULT_TAGS)}"
            )
        self._handle.write(bytes([tag]))

    def close(self) -> None:
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_binary_records_unbatched(path: str | Path) -> Iterator[TraceRecord]:
    """Stream records from a binary trace file, one byte call at a time.

    The original decoder: every byte goes through a ``next_byte()`` method
    call. Kept as the reference implementation (and for the benchmark's
    before/after comparison); :func:`iter_binary_records` batches instead.
    """
    with open(path, "rb") as handle:
        if handle.read(len(MAGIC)) != MAGIC:
            raise TraceError(f"{path}: not a binary trace (bad magic)")
        reader = _ByteReader(handle)
        while not reader.at_eof():
            tag = reader.next_byte()
            if tag == _TAG_HEADER:
                yield TraceHeader(decode_varint(reader), decode_varint(reader))
            elif tag == _TAG_LEARNED:
                cid = decode_varint(reader)
                count = decode_varint(reader)
                sources = tuple(cid - decode_varint(reader) for _ in range(count))
                yield LearnedClause(cid, sources)
            elif tag == _TAG_LEVEL_ZERO:
                packed = decode_varint(reader)
                yield LevelZeroAssignment(packed >> 1, bool(packed & 1), decode_varint(reader))
            elif tag == _TAG_FINAL_CONFLICT:
                yield FinalConflict(decode_varint(reader))
            elif tag == _TAG_DELETION:
                yield ClauseDeletion(decode_varint(reader))
            elif tag == _TAG_RESULT_SAT:
                yield TraceResult("SAT")
            elif tag == _TAG_RESULT_UNSAT:
                yield TraceResult("UNSAT")
            elif tag == _TAG_RESULT_UNKNOWN:
                yield TraceResult("UNKNOWN")
            else:
                raise TraceError(f"unknown binary record tag {tag:#x}")


DEFAULT_CHUNK_SIZE = 1 << 18

# Module-level decoder selector so benchmarks can compare the legacy and
# batched paths through the exact same call sites (checkers only ever call
# iter_binary_records / iter_trace_records).
_DECODER_MODE = "batched"


@contextmanager
def decoder_mode(mode: str) -> Iterator[None]:
    """Temporarily force the binary decoder ("batched" or "legacy")."""
    global _DECODER_MODE
    if mode not in ("batched", "legacy"):
        raise ValueError(f"unknown decoder mode {mode!r}")
    previous = _DECODER_MODE
    _DECODER_MODE = mode
    try:
        yield
    finally:
        _DECODER_MODE = previous


def _decode_batched(
    path: str | Path,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    raw_learned: bool = False,
) -> Iterator[TraceRecord | tuple[int, list[int]]]:
    """Batched decoder: inline varint parsing over large buffered chunks.

    Reads the file in ``chunk_size`` blocks and decodes records with
    direct ``buffer[pos]`` indexing — no per-byte method calls. Records
    may straddle a chunk boundary; decoding past the end of the buffer
    raises ``IndexError``, at which point we rewind to the start of the
    torn record, splice in the next chunk, and retry. A record therefore
    decodes at most twice, and the common case is a single pass over each
    chunk.

    With ``raw_learned`` the dominant record type is yielded as a plain
    ``(cid, sources)`` tuple instead of a :class:`LearnedClause` — frozen
    dataclass construction costs more than decoding the record does, and
    a checker hot loop needs only the two fields.
    """
    with open(path, "rb") as handle:
        if handle.read(len(MAGIC)) != MAGIC:
            raise TraceError(f"{path}: not a binary trace (bad magic)")
        buffer = handle.read(chunk_size)
        pos = 0
        exhausted = not buffer
        while True:
            if pos >= len(buffer):
                if exhausted:
                    return
                buffer = handle.read(chunk_size)
                pos = 0
                if not buffer:
                    return
                exhausted = len(buffer) < chunk_size
            record_start = pos
            try:
                tag = buffer[pos]
                pos += 1
                if tag == _TAG_LEARNED:
                    # Inline fast path for the dominant record type: the
                    # varint loops are unrolled in place — no function
                    # calls per byte or per varint.
                    cid = buffer[pos]
                    pos += 1
                    if cid & 0x80:
                        cid &= 0x7F
                        shift = 7
                        while True:
                            byte = buffer[pos]
                            pos += 1
                            cid |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 63:
                                raise TraceError("varint too long")
                    count = buffer[pos]
                    pos += 1
                    if count & 0x80:
                        count &= 0x7F
                        shift = 7
                        while True:
                            byte = buffer[pos]
                            pos += 1
                            count |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 63:
                                raise TraceError("varint too long")
                    sources = []
                    append = sources.append
                    for _ in range(count):
                        delta = buffer[pos]
                        pos += 1
                        if delta & 0x80:
                            delta &= 0x7F
                            shift = 7
                            while True:
                                byte = buffer[pos]
                                pos += 1
                                delta |= (byte & 0x7F) << shift
                                if not byte & 0x80:
                                    break
                                shift += 7
                                if shift > 63:
                                    raise TraceError("varint too long")
                        append(cid - delta)
                    if raw_learned:
                        yield cid, sources
                    else:
                        yield LearnedClause(cid, tuple(sources))
                elif tag == _TAG_HEADER:
                    num_vars, pos = _varint_at(buffer, pos)
                    num_clauses, pos = _varint_at(buffer, pos)
                    yield TraceHeader(num_vars, num_clauses)
                elif tag == _TAG_LEVEL_ZERO:
                    packed, pos = _varint_at(buffer, pos)
                    antecedent, pos = _varint_at(buffer, pos)
                    yield LevelZeroAssignment(packed >> 1, bool(packed & 1), antecedent)
                elif tag == _TAG_FINAL_CONFLICT:
                    cid, pos = _varint_at(buffer, pos)
                    yield FinalConflict(cid)
                elif tag == _TAG_DELETION:
                    cid, pos = _varint_at(buffer, pos)
                    yield ClauseDeletion(cid)
                elif tag == _TAG_RESULT_SAT:
                    yield TraceResult("SAT")
                elif tag == _TAG_RESULT_UNSAT:
                    yield TraceResult("UNSAT")
                elif tag == _TAG_RESULT_UNKNOWN:
                    yield TraceResult("UNKNOWN")
                else:
                    raise TraceError(f"unknown binary record tag {tag:#x}")
            except IndexError:
                # Torn record at the chunk boundary: keep its prefix,
                # append the next chunk, decode it again from the top.
                if exhausted:
                    raise TraceError("unexpected end of binary trace") from None
                tail = handle.read(chunk_size)
                if not tail:
                    raise TraceError("unexpected end of binary trace") from None
                exhausted = len(tail) < chunk_size
                buffer = buffer[record_start:] + tail
                pos = 0


def scan_binary_learned(
    path: str | Path, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> tuple[list[tuple[int, int]], int, int, dict[int, int]]:
    """One low-level pass over a binary trace: extent plus source-use counts.

    The breadth-first checker's first two passes (find the clause-ID
    extent; count how often each clause is used as a resolve source) need
    only this arithmetic, not the record objects — so this scan decodes
    the varints in place and never constructs a record. Returns
    ``(headers, max_learned_cid, num_learned, counts)`` where ``headers``
    is every header's ``(num_vars, num_original_clauses)`` in stream
    order and ``counts`` maps a clause ID to the number of times it is
    referenced (learned-clause sources, level-zero antecedents and final
    conflicts — the same references the checker's counting pass charges).

    Raises :class:`TraceError` on a malformed or torn trace, exactly like
    the record decoders.
    """
    headers: list[tuple[int, int]] = []
    max_cid = 0
    num_learned = 0
    counts: dict[int, int] = {}
    counts_get = counts.get
    with open(path, "rb") as handle:
        if handle.read(len(MAGIC)) != MAGIC:
            raise TraceError(f"{path}: not a binary trace (bad magic)")
        buffer = handle.read(chunk_size)
        pos = 0
        exhausted = not buffer
        while True:
            if pos >= len(buffer):
                if exhausted:
                    return headers, max_cid, num_learned, counts
                buffer = handle.read(chunk_size)
                pos = 0
                if not buffer:
                    return headers, max_cid, num_learned, counts
                exhausted = len(buffer) < chunk_size
            record_start = pos
            try:
                tag = buffer[pos]
                pos += 1
                if tag == _TAG_LEARNED:
                    cid = buffer[pos]
                    pos += 1
                    if cid & 0x80:
                        cid &= 0x7F
                        shift = 7
                        while True:
                            byte = buffer[pos]
                            pos += 1
                            cid |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 63:
                                raise TraceError("varint too long")
                    count = buffer[pos]
                    pos += 1
                    if count & 0x80:
                        count &= 0x7F
                        shift = 7
                        while True:
                            byte = buffer[pos]
                            pos += 1
                            count |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 63:
                                raise TraceError("varint too long")
                    for _ in range(count):
                        delta = buffer[pos]
                        pos += 1
                        if delta & 0x80:
                            delta &= 0x7F
                            shift = 7
                            while True:
                                byte = buffer[pos]
                                pos += 1
                                delta |= (byte & 0x7F) << shift
                                if not byte & 0x80:
                                    break
                                shift += 7
                                if shift > 63:
                                    raise TraceError("varint too long")
                        src = cid - delta
                        counts[src] = counts_get(src, 0) + 1
                    num_learned += 1
                    if cid > max_cid:
                        max_cid = cid
                elif tag == _TAG_HEADER:
                    num_vars, pos = _varint_at(buffer, pos)
                    num_clauses, pos = _varint_at(buffer, pos)
                    headers.append((num_vars, num_clauses))
                elif tag == _TAG_LEVEL_ZERO:
                    _, pos = _varint_at(buffer, pos)
                    antecedent, pos = _varint_at(buffer, pos)
                    counts[antecedent] = counts_get(antecedent, 0) + 1
                elif tag == _TAG_FINAL_CONFLICT:
                    cid, pos = _varint_at(buffer, pos)
                    counts[cid] = counts_get(cid, 0) + 1
                elif tag == _TAG_DELETION:
                    # Advisory only: deletions never contribute use counts.
                    _, pos = _varint_at(buffer, pos)
                elif tag in (_TAG_RESULT_SAT, _TAG_RESULT_UNSAT, _TAG_RESULT_UNKNOWN):
                    pass
                else:
                    raise TraceError(f"unknown binary record tag {tag:#x}")
            except IndexError:
                if exhausted:
                    raise TraceError("unexpected end of binary trace") from None
                tail = handle.read(chunk_size)
                if not tail:
                    raise TraceError("unexpected end of binary trace") from None
                # The torn record is about to be re-parsed from scratch, so
                # any sources the learned-clause branch already counted
                # must be rolled back first. Mirroring the forward parse
                # over the same (truncated) bytes decrements exactly the
                # deltas that decoded completely before the tear. Tears
                # happen at most once per chunk, so this stays off the
                # hot path; only the learned branch has mid-record side
                # effects (the other branches commit after a full parse).
                if buffer[record_start] == _TAG_LEARNED:
                    try:
                        rpos = record_start + 1
                        rcid, rpos = _varint_at(buffer, rpos)
                        rcount, rpos = _varint_at(buffer, rpos)
                        for _ in range(rcount):
                            delta, rpos = _varint_at(buffer, rpos)
                            torn_src = rcid - delta
                            remaining = counts[torn_src] - 1
                            if remaining:
                                counts[torn_src] = remaining
                            else:
                                del counts[torn_src]
                    except IndexError:
                        pass
                exhausted = len(tail) < chunk_size
                buffer = buffer[record_start:] + tail
                pos = 0


def iter_binary_records_raw(
    path: str | Path, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[TraceRecord | tuple[int, list[int]]]:
    """Batched record stream with learned clauses as ``(cid, sources)``.

    The breadth-first checking pass runs on this: learned-clause records —
    the overwhelming majority — arrive as bare tuples, every other record
    as its normal record object.
    """
    return _decode_batched(path, chunk_size, raw_learned=True)


def active_decoder_mode() -> str:
    """The currently selected binary decoder ("batched" or "legacy")."""
    return _DECODER_MODE


def _varint_at(buffer: bytes, pos: int) -> tuple[int, int]:
    """Decode one LEB128 varint at ``buffer[pos]``; returns (value, pos)."""
    byte = buffer[pos]
    pos += 1
    if not byte & 0x80:
        return byte, pos
    return _varint_tail(buffer, pos, byte)


def _varint_tail(buffer: bytes, pos: int, first: int) -> tuple[int, int]:
    """Finish a multi-byte varint whose first byte was ``first``."""
    result = first & 0x7F
    shift = 7
    while True:
        byte = buffer[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise TraceError("varint too long")


def iter_binary_records(
    path: str | Path, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[TraceRecord]:
    """Stream records from a binary trace file (constant memory).

    Decodes in buffered batches by default; :func:`decoder_mode` can force
    the byte-at-a-time legacy path for comparison.
    """
    if _DECODER_MODE == "legacy":
        return iter_binary_records_unbatched(path)
    return _decode_batched(path, chunk_size)


def read_binary_trace(path: str | Path) -> Trace:
    """Load a full binary trace into memory."""
    return assemble_trace(iter_binary_records(path))


# -- mmap zero-copy decoding ---------------------------------------------------
#
# The chunked decoders above copy the file into Python bytes objects and
# splice torn records across chunk boundaries. Mapping the file instead
# gives one contiguous read-only buffer: records decode with direct
# ``view[pos]`` indexing against the page cache, no copies and no tears,
# and a checker can hold a byte *cursor* into the proof — the foundation
# of the shifting-window checker (:mod:`repro.checker.streaming`).


class MappedBinaryTrace:
    """A zero-copy ``mmap`` view of a binary trace file.

    ``view`` is a :class:`memoryview` over the whole mapping; record
    payloads start at ``payload_start`` (past the magic). Decoding works
    on ``view`` slices without materializing the file — resident memory
    is whatever pages the OS keeps cached, not the trace size.
    """

    __slots__ = ("path", "_file", "_map", "view", "size", "payload_start")

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file: IO[bytes] | None = open(self.path, "rb")
        try:
            self._map: mmap.mmap | None = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError) as exc:
            self._file.close()
            self._file = None
            self._map = None
            raise TraceError(f"{path}: cannot map binary trace ({exc})") from None
        self.view: memoryview | None = memoryview(self._map)
        self.size = len(self.view)
        if bytes(self.view[: len(MAGIC)]) != MAGIC:
            self.close()
            raise TraceError(f"{path}: not a binary trace (bad magic)")
        self.payload_start = len(MAGIC)

    def close(self) -> None:
        if self.view is not None:
            self.view.release()
            self.view = None
        if self._map is not None:
            self._map.close()
            self._map = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "MappedBinaryTrace":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def decode_mapped_batch(
    view: memoryview,
    pos: int,
    max_records: int,
    raw_learned: bool = True,
) -> tuple[list, int]:
    """Decode up to ``max_records`` records from a mapped trace at ``pos``.

    Returns ``(items, new_pos)``; an empty ``items`` means end of trace.
    The buffer is the whole mapping, so — unlike the chunked decoders —
    there are no torn records to rewind: running off the end of the view
    is simply a truncated trace (:class:`TraceError`). With
    ``raw_learned`` the dominant record type comes back as a bare
    ``(cid, sources)`` tuple, exactly like
    :func:`iter_binary_records_raw`.
    """
    items: list = []
    append = items.append
    end = len(view)
    remaining = max_records
    try:
        while remaining > 0 and pos < end:
            tag = view[pos]
            pos += 1
            if tag == _TAG_LEARNED:
                cid = view[pos]
                pos += 1
                if cid & 0x80:
                    cid &= 0x7F
                    shift = 7
                    while True:
                        byte = view[pos]
                        pos += 1
                        cid |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                        if shift > 63:
                            raise TraceError("varint too long")
                count = view[pos]
                pos += 1
                if count & 0x80:
                    count &= 0x7F
                    shift = 7
                    while True:
                        byte = view[pos]
                        pos += 1
                        count |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                        if shift > 63:
                            raise TraceError("varint too long")
                sources = []
                src_append = sources.append
                for _ in range(count):
                    delta = view[pos]
                    pos += 1
                    if delta & 0x80:
                        delta &= 0x7F
                        shift = 7
                        while True:
                            byte = view[pos]
                            pos += 1
                            delta |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 63:
                                raise TraceError("varint too long")
                    src_append(cid - delta)
                if raw_learned:
                    append((cid, sources))
                else:
                    append(LearnedClause(cid, tuple(sources)))
            elif tag == _TAG_HEADER:
                num_vars, pos = _varint_at(view, pos)
                num_clauses, pos = _varint_at(view, pos)
                append(TraceHeader(num_vars, num_clauses))
            elif tag == _TAG_LEVEL_ZERO:
                packed, pos = _varint_at(view, pos)
                antecedent, pos = _varint_at(view, pos)
                append(LevelZeroAssignment(packed >> 1, bool(packed & 1), antecedent))
            elif tag == _TAG_FINAL_CONFLICT:
                cid, pos = _varint_at(view, pos)
                append(FinalConflict(cid))
            elif tag == _TAG_DELETION:
                cid, pos = _varint_at(view, pos)
                append(ClauseDeletion(cid))
            elif tag == _TAG_RESULT_SAT:
                append(TraceResult("SAT"))
            elif tag == _TAG_RESULT_UNSAT:
                append(TraceResult("UNSAT"))
            elif tag == _TAG_RESULT_UNKNOWN:
                append(TraceResult("UNKNOWN"))
            else:
                raise TraceError(f"unknown binary record tag {tag:#x}")
            remaining -= 1
    except IndexError:
        raise TraceError("unexpected end of binary trace") from None
    return items, pos


def scan_mapped_learned(
    view: memoryview,
    count_range: tuple[int, int] | None = None,
    track_last_use: bool = False,
) -> tuple[list[tuple[int, int]], int, int, dict[int, int], dict[int, int]]:
    """Extent + use counts in one zero-copy pass over a mapped trace.

    The mmap sibling of :func:`scan_binary_learned`: decodes varints in
    place off the view, never constructs record objects, and — because
    the buffer is the whole file — needs no torn-record rollback at all.
    Returns ``(headers, max_learned_cid, num_learned, counts, last_use)``.

    ``count_range`` restricts ``counts`` to clause IDs in ``[low, high)``
    (the chunked-counting mode). ``last_use`` maps each referenced clause
    ID to the stream position (a running record ordinal) of its *last*
    reference — the retirement signal the shifting-window checker orders
    its evictions by; empty unless ``track_last_use``.
    """
    headers: list[tuple[int, int]] = []
    max_cid = 0
    num_learned = 0
    counts: dict[int, int] = {}
    counts_get = counts.get
    last_use: dict[int, int] = {}
    low, high = count_range if count_range is not None else (0, 1 << 62)
    pos = len(MAGIC)
    end = len(view)
    position = 0  # running record ordinal, the last_use clock
    try:
        while pos < end:
            tag = view[pos]
            pos += 1
            position += 1
            if tag == _TAG_LEARNED:
                cid = view[pos]
                pos += 1
                if cid & 0x80:
                    cid &= 0x7F
                    shift = 7
                    while True:
                        byte = view[pos]
                        pos += 1
                        cid |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                        if shift > 63:
                            raise TraceError("varint too long")
                count = view[pos]
                pos += 1
                if count & 0x80:
                    count &= 0x7F
                    shift = 7
                    while True:
                        byte = view[pos]
                        pos += 1
                        count |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                        if shift > 63:
                            raise TraceError("varint too long")
                for _ in range(count):
                    delta = view[pos]
                    pos += 1
                    if delta & 0x80:
                        delta &= 0x7F
                        shift = 7
                        while True:
                            byte = view[pos]
                            pos += 1
                            delta |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 63:
                                raise TraceError("varint too long")
                    src = cid - delta
                    if low <= src < high:
                        counts[src] = counts_get(src, 0) + 1
                    if track_last_use:
                        last_use[src] = position
                num_learned += 1
                if cid > max_cid:
                    max_cid = cid
            elif tag == _TAG_HEADER:
                num_vars, pos = _varint_at(view, pos)
                num_clauses, pos = _varint_at(view, pos)
                headers.append((num_vars, num_clauses))
            elif tag == _TAG_LEVEL_ZERO:
                _, pos = _varint_at(view, pos)
                antecedent, pos = _varint_at(view, pos)
                if low <= antecedent < high:
                    counts[antecedent] = counts_get(antecedent, 0) + 1
                if track_last_use:
                    last_use[antecedent] = position
            elif tag == _TAG_FINAL_CONFLICT:
                cid, pos = _varint_at(view, pos)
                if low <= cid < high:
                    counts[cid] = counts_get(cid, 0) + 1
                if track_last_use:
                    last_use[cid] = position
            elif tag == _TAG_DELETION:
                # Advisory only: deletions never contribute use counts.
                _, pos = _varint_at(view, pos)
            elif tag in (_TAG_RESULT_SAT, _TAG_RESULT_UNSAT, _TAG_RESULT_UNKNOWN):
                pass
            else:
                raise TraceError(f"unknown binary record tag {tag:#x}")
    except IndexError:
        raise TraceError("unexpected end of binary trace") from None
    return headers, max_cid, num_learned, counts, last_use
