"""Resolution traces: the solver -> checker interface of the paper (§3.1).

A trace records exactly the three things the paper requires:

1. For each learned clause: its ID and the IDs of its *resolve sources* —
   the conflicting clause followed by the antecedent clauses, in the order
   they were resolved during conflict analysis.
2. The ID of the final conflicting clause (the clause found conflicting at
   decision level 0).
3. The decision-level-0 trail: every variable assigned at level 0, its
   value, its antecedent clause ID, in chronological order.

Two wire formats are provided: a human-readable ASCII format and a compact
varint binary format (the paper remarks a 2-3x compaction is easy to get).
"""

from repro.trace.records import (
    TraceHeader,
    LearnedClause,
    LevelZeroAssignment,
    FinalConflict,
    TraceResult,
    ClauseDeletion,
    Trace,
    TraceError,
)
from repro.trace.ascii_format import AsciiTraceWriter, read_ascii_trace, iter_ascii_records
from repro.trace.binary_format import BinaryTraceWriter, read_binary_trace, iter_binary_records
from repro.trace.io import (
    open_trace_writer,
    load_trace,
    iter_trace_records,
    InMemoryTraceWriter,
)
from repro.trace.fingerprint import sha256_file, sha256_text, trace_content_hash
from repro.trace.stats import TraceStatistics, analyze_trace
from repro.trace.trim import TrimResult, trim_trace, write_trimmed
from repro.trace.windows import (
    WindowSpec,
    WindowPlan,
    plan_windows,
    iter_window_records,
)

__all__ = [
    "TraceHeader",
    "LearnedClause",
    "LevelZeroAssignment",
    "FinalConflict",
    "TraceResult",
    "ClauseDeletion",
    "Trace",
    "TraceError",
    "AsciiTraceWriter",
    "read_ascii_trace",
    "iter_ascii_records",
    "BinaryTraceWriter",
    "read_binary_trace",
    "iter_binary_records",
    "open_trace_writer",
    "load_trace",
    "iter_trace_records",
    "InMemoryTraceWriter",
    "sha256_file",
    "sha256_text",
    "trace_content_hash",
    "TraceStatistics",
    "analyze_trace",
    "TrimResult",
    "trim_trace",
    "write_trimmed",
    "WindowSpec",
    "WindowPlan",
    "plan_windows",
    "iter_window_records",
]
