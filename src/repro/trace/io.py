"""Format-dispatching trace I/O plus an in-memory writer for tests."""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Protocol

from repro.trace.ascii_format import AsciiTraceWriter, iter_ascii_records
from repro.trace.binary_format import MAGIC, BinaryTraceWriter, iter_binary_records
from repro.trace.records import Trace, TraceRecord, assemble_trace


class TraceWriter(Protocol):
    """What the solver needs from a trace sink (§3.1 modifications 1-3)."""

    def header(self, num_vars: int, num_original_clauses: int) -> None: ...

    def learned_clause(self, cid: int, sources: list[int] | tuple[int, ...]) -> None: ...

    def clause_deletion(self, cid: int) -> None: ...

    def level_zero(self, var: int, value: bool, antecedent: int) -> None: ...

    def final_conflict(self, cid: int) -> None: ...

    def result(self, status: str) -> None: ...

    def close(self) -> None: ...


def open_trace_writer(path: str | Path, fmt: str = "ascii") -> AsciiTraceWriter | BinaryTraceWriter:
    """Open a trace writer of the requested format ("ascii" or "binary")."""
    if fmt == "ascii":
        return AsciiTraceWriter(path)
    if fmt == "binary":
        return BinaryTraceWriter(path)
    raise ValueError(f"unknown trace format {fmt!r}")


def _sniff_format(path: str | Path) -> str:
    with open(path, "rb") as handle:
        return "binary" if handle.read(len(MAGIC)) == MAGIC else "ascii"


def iter_trace_records(path: str | Path) -> Iterator[TraceRecord]:
    """Stream records from a trace file, auto-detecting the format."""
    if _sniff_format(path) == "binary":
        return iter_binary_records(path)
    return iter_ascii_records(path)


def load_trace(path: str | Path) -> Trace:
    """Load a full trace into memory, auto-detecting the format."""
    return assemble_trace(iter_trace_records(path))


class InMemoryTraceWriter:
    """Collects trace records in memory; doubles as a loaded Trace source.

    Useful in tests and for the depth-first checker when solver and checker
    run in the same process (no round-trip through the filesystem).
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self.closed = False

    def header(self, num_vars: int, num_original_clauses: int) -> None:
        from repro.trace.records import TraceHeader

        self.records.append(TraceHeader(num_vars, num_original_clauses))

    def learned_clause(self, cid: int, sources: list[int] | tuple[int, ...]) -> None:
        from repro.trace.records import LearnedClause

        self.records.append(LearnedClause(cid, tuple(sources)))

    def clause_deletion(self, cid: int) -> None:
        from repro.trace.records import ClauseDeletion

        self.records.append(ClauseDeletion(cid))

    def level_zero(self, var: int, value: bool, antecedent: int) -> None:
        from repro.trace.records import LevelZeroAssignment

        self.records.append(LevelZeroAssignment(var, value, antecedent))

    def final_conflict(self, cid: int) -> None:
        from repro.trace.records import FinalConflict

        self.records.append(FinalConflict(cid))

    def result(self, status: str) -> None:
        from repro.trace.records import TraceResult

        self.records.append(TraceResult(status))

    def close(self) -> None:
        self.closed = True

    def to_trace(self) -> Trace:
        """Assemble the collected records into a Trace."""
        return assemble_trace(iter(self.records))
