"""Clause-ID windowing of resolution traces.

Shared between :mod:`repro.trace` (slicing a trace into contiguous
clause-ID ranges) and :mod:`repro.checker.parallel` (verifying those
ranges concurrently). The design follows the window-shifting idea for
proof verification: a resolution proof ordered by clause ID can be split
into contiguous windows, and each window's resolutions only ever look
*backwards* — at original clauses, at clauses inside the window, or at
*interface clauses* learned in an earlier window.

A :class:`WindowPlan` partitions the learned records into windows of
(roughly) equal record count, which balances replay work far better than
equal ID spans when clause IDs are sparse.

Two consumption modes exist on top of a plan:

* :func:`iter_windowed_records` streams the trace **once** and yields
  each window's learned records in order — the fix for the quadratic
  pattern of calling :func:`iter_window_records` per window, which
  restarts decoding from record 0 every time.
* :class:`ShiftingWindow` is the mutable cursor the streaming checker
  (:mod:`repro.checker.streaming`) drives while it advances over an
  mmap'd trace: per-window counters plus a bounded stats log.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.trace.io import iter_trace_records
from repro.trace.records import LearnedClause, Trace, TraceRecord


@dataclass(frozen=True)
class WindowSpec:
    """One contiguous clause-ID window ``[lo, hi)`` over learned clauses."""

    index: int
    lo: int  # first clause ID belonging to this window (inclusive)
    hi: int  # one past the last clause ID belonging to this window
    num_records: int  # learned records inside the window

    def contains(self, cid: int) -> bool:
        return self.lo <= cid < self.hi


@dataclass(frozen=True)
class WindowPlan:
    """A complete partition of a trace's learned clause IDs into windows."""

    num_original: int
    windows: tuple[WindowSpec, ...]

    def __len__(self) -> int:
        return len(self.windows)

    def window_of(self, cid: int) -> WindowSpec:
        """The window owning learned clause ``cid`` (bisect on lower bounds)."""
        if cid <= self.num_original:
            raise ValueError(f"clause {cid} is an original clause, not windowed")
        lows = [w.lo for w in self.windows]
        pos = bisect_right(lows, cid) - 1
        if pos < 0 or not self.windows[pos].contains(cid):
            raise ValueError(f"clause {cid} falls outside every window")
        return self.windows[pos]


def plan_windows(
    learned_cids: Iterable[int],
    num_original: int,
    window_size: int | None = None,
    num_windows: int | None = None,
) -> WindowPlan:
    """Partition ``learned_cids`` (ascending) into contiguous-ID windows.

    ``window_size`` bounds the learned-record count per window;
    ``num_windows`` instead asks for a fixed number of (nearly) equal
    chunks. Exactly one may be given; with neither, everything lands in a
    single window.
    """
    if window_size is not None and num_windows is not None:
        raise ValueError("give window_size or num_windows, not both")
    cids = list(learned_cids)
    if not cids:
        return WindowPlan(num_original, ())
    if window_size is None:
        chunks = max(1, num_windows or 1)
        window_size = -(-len(cids) // chunks)  # ceil division
    if window_size < 1:
        raise ValueError(f"window_size must be positive, got {window_size}")

    windows: list[WindowSpec] = []
    for start in range(0, len(cids), window_size):
        chunk = cids[start : start + window_size]
        lo = chunk[0] if not windows else windows[-1].hi
        windows.append(
            WindowSpec(index=len(windows), lo=lo, hi=chunk[-1] + 1, num_records=len(chunk))
        )
    # The first window also owns any gap down to the first learned ID.
    first = windows[0]
    windows[0] = WindowSpec(first.index, num_original + 1, first.hi, first.num_records)
    return WindowPlan(num_original, tuple(windows))


def _open_records(
    source: str | Path | Trace | Iterable[TraceRecord],
) -> Iterable[TraceRecord]:
    if isinstance(source, Trace):
        return source.records()
    if isinstance(source, (str, Path)):
        return iter_trace_records(source)
    return source


def iter_window_records(
    source: str | Path | Trace | Iterable[TraceRecord], lo: int, hi: int
) -> Iterator[LearnedClause]:
    """Stream just the learned records whose IDs fall in ``[lo, hi)``.

    Accepts a trace file path, an in-memory :class:`Trace`, or any record
    iterable; non-learned records and out-of-window learned records are
    skipped (constant memory for file sources).

    One call is one decode pass over the *whole* trace — so calling this
    per window of a plan decodes the trace once per window (quadratic in
    the window count). Iterate a plan with :func:`iter_windowed_records`
    instead, which makes a single pass.
    """
    for record in _open_records(source):
        if isinstance(record, LearnedClause) and lo <= record.cid < hi:
            yield record


def iter_windowed_records(
    source: str | Path | Trace | Iterable[TraceRecord], plan: WindowPlan
) -> Iterator[tuple[WindowSpec, list[LearnedClause]]]:
    """Yield ``(window, learned_records)`` for every window — in ONE pass.

    Streams the trace exactly once and groups the learned records by the
    plan's contiguous clause-ID windows as they arrive. Windows are
    yielded in plan order; a window the stream has no records for yields
    an empty list. Learned records falling outside every window (only
    possible when the plan was built from a different trace) are ignored.
    Because the source is consumed exactly once, a one-shot record
    iterator (e.g. a generator) is a valid source — the regression tests
    rely on this to prove no second decode pass can happen.
    """
    windows = plan.windows
    if not windows:
        return
    current = 0
    batch: list[LearnedClause] = []
    for record in _open_records(source):
        if not isinstance(record, LearnedClause):
            continue
        cid = record.cid
        while current < len(windows) and cid >= windows[current].hi:
            yield windows[current], batch
            batch = []
            current += 1
        if current >= len(windows):
            return
        if cid >= windows[current].lo:
            batch.append(record)
    while current < len(windows):
        yield windows[current], batch
        batch = []
        current += 1


class ShiftingWindow:
    """Bookkeeping for a bounded window advancing over a record stream.

    The streaming checker (:mod:`repro.checker.streaming`) decodes the
    trace in batches of ``window_records`` records; each batch is one
    window position. This cursor tracks where the window currently sits
    and keeps a bounded per-window stats log for the final report
    (``max_detail`` caps the log so a multi-GB trace cannot inflate its
    own verdict; totals keep accumulating regardless).
    """

    __slots__ = ("window_records", "index", "total_records", "entries", "_max_detail")

    DEFAULT_RECORDS = 4096

    def __init__(self, window_records: int | None = None, max_detail: int = 64):
        if window_records is not None and window_records < 1:
            raise ValueError(f"window_records must be positive, got {window_records}")
        self.window_records = window_records or self.DEFAULT_RECORDS
        self.index = 0
        self.total_records = 0
        self.entries: list[dict] = []
        self._max_detail = max_detail

    def advance(self, num_records: int, **stats) -> None:
        """Close the current window position after ``num_records`` records."""
        self.total_records += num_records
        if len(self.entries) < self._max_detail:
            entry = {"window": self.index, "records": num_records}
            entry.update(stats)
            self.entries.append(entry)
        self.index += 1
