"""Trace record types and the in-memory trace container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union


class TraceError(ValueError):
    """Raised on malformed or internally inconsistent traces."""


@dataclass(frozen=True)
class TraceHeader:
    """Leading record: instance dimensions agreed with the checker."""

    num_vars: int
    num_original_clauses: int


@dataclass(frozen=True)
class LearnedClause:
    """A learned clause: its ID plus resolve-source IDs in resolution order.

    ``sources[0]`` is the conflicting clause conflict analysis started from;
    each subsequent entry is the antecedent clause resolved in next. The
    learned clause's literals are deliberately *not* recorded — the checker
    must reconstruct them by resolution (that is the point of the check).
    """

    cid: int
    sources: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.sources) < 1:
            raise TraceError(f"learned clause {self.cid} has no resolve sources")


@dataclass(frozen=True)
class LevelZeroAssignment:
    """One entry of the decision-level-0 trail (chronological order)."""

    var: int
    value: bool
    antecedent: int  # clause ID; every level-0 variable has one


@dataclass(frozen=True)
class FinalConflict:
    """ID of the clause found conflicting at decision level 0."""

    cid: int


@dataclass(frozen=True)
class TraceResult:
    """The solver's claim ("UNSAT" is what the checkers validate)."""

    status: str  # "SAT" | "UNSAT"


@dataclass(frozen=True)
class ClauseDeletion:
    """Advisory record: the solver discarded clause ``cid`` at this point.

    Deletions never change what a resolution checker must replay (a source
    reference keeps a clause derivable regardless), so every checker treats
    them as no-ops. They exist for the static analyzer: rule T015 flags a
    clause referenced *after* its recorded deletion, which betrays a solver
    whose clause database and trace disagree.
    """

    cid: int


TraceRecord = Union[
    TraceHeader,
    LearnedClause,
    LevelZeroAssignment,
    FinalConflict,
    TraceResult,
    ClauseDeletion,
]


@dataclass
class Trace:
    """A fully materialized trace (what the depth-first checker loads)."""

    header: TraceHeader
    learned: dict[int, LearnedClause] = field(default_factory=dict)
    level_zero: list[LevelZeroAssignment] = field(default_factory=list)
    final_conflicts: list[int] = field(default_factory=list)
    status: str = "UNKNOWN"
    # Deletions keyed by the cid of the last learned clause recorded before
    # the deletion (0 when it precedes every learned clause). Learned IDs are
    # monotonic in valid traces, so this preserves the stream interleaving
    # through a records() round-trip.
    deletions: dict[int, list[int]] = field(default_factory=dict)

    @property
    def num_learned(self) -> int:
        return len(self.learned)

    @property
    def num_deletions(self) -> int:
        return sum(len(cids) for cids in self.deletions.values())

    def antecedent_of(self, var: int) -> int | None:
        for entry in self.level_zero:
            if entry.var == var:
                return entry.antecedent
        return None

    def records(self) -> Iterator[TraceRecord]:
        """Replay the trace as a stream of records (canonical order)."""
        yield self.header
        for dcid in self.deletions.get(0, ()):
            yield ClauseDeletion(dcid)
        for rec in self.learned.values():
            yield rec
            for dcid in self.deletions.get(rec.cid, ()):
                yield ClauseDeletion(dcid)
        for entry in self.level_zero:
            yield entry
        for cid in self.final_conflicts:
            yield FinalConflict(cid)
        yield TraceResult(self.status)


def assemble_trace(records: Iterator[TraceRecord] | list[TraceRecord]) -> Trace:
    """Build an in-memory Trace from a record stream, validating structure."""
    header: TraceHeader | None = None
    trace: Trace | None = None
    last_learned = 0
    for rec in records:
        if isinstance(rec, TraceHeader):
            if header is not None:
                raise TraceError("duplicate trace header")
            header = rec
            trace = Trace(header)
        elif trace is None:
            raise TraceError("trace record before header")
        elif isinstance(rec, LearnedClause):
            if rec.cid in trace.learned:
                raise TraceError(f"duplicate learned clause id {rec.cid}")
            if rec.cid <= header.num_original_clauses:
                raise TraceError(
                    f"learned clause id {rec.cid} collides with original clauses"
                )
            trace.learned[rec.cid] = rec
            last_learned = rec.cid
        elif isinstance(rec, ClauseDeletion):
            trace.deletions.setdefault(last_learned, []).append(rec.cid)
        elif isinstance(rec, LevelZeroAssignment):
            trace.level_zero.append(rec)
        elif isinstance(rec, FinalConflict):
            trace.final_conflicts.append(rec.cid)
        elif isinstance(rec, TraceResult):
            trace.status = rec.status
        else:  # pragma: no cover - defensive
            raise TraceError(f"unknown record type {type(rec).__name__}")
    if trace is None:
        raise TraceError("empty trace")
    return trace
