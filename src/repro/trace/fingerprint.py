"""Streaming content fingerprints for traces (and arbitrary files).

The verdict cache (:mod:`repro.service.cache`) and the breadth-first
checkpoint format both need to tie an artifact to one specific byte
content, not merely to its shape: two traces with the same clause counts
must never validate against each other's cached verdicts or checkpoints.

Everything here streams — a multi-gigabyte trace is hashed in fixed-size
chunks, never materialized. Trace *files* are hashed over their raw bytes
(the cheapest possible identity, and the one a service sees); in-memory
:class:`~repro.trace.records.Trace` objects are hashed over a canonical
record serialization, so the same logical trace hashes identically no
matter how it was assembled.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.trace.records import Trace

#: Read granularity for file hashing; large enough that syscall overhead
#: vanishes, small enough to stay cache-friendly.
_CHUNK_SIZE = 1 << 20


def sha256_file(path: str | Path, chunk_size: int = _CHUNK_SIZE) -> str:
    """Hex SHA-256 of a file's bytes, read in streaming chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def sha256_text(text: str) -> str:
    """Hex SHA-256 of a UTF-8 string (canonical serializations, options)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _hash_trace_object(trace: Trace) -> str:
    """Canonical-record hash of an in-memory trace.

    One tagged line per record, learned clauses in ascending clause-ID
    order: the hash depends only on the trace's logical content, not on
    insertion order or container identity.
    """
    digest = hashlib.sha256()
    feed = digest.update
    header = trace.header
    feed(f"H {header.num_vars} {header.num_original_clauses}\n".encode())
    for cid in sorted(trace.learned):
        sources = " ".join(map(str, trace.learned[cid].sources))
        feed(f"L {cid} {sources}\n".encode())
    # Deletions are advisory but still content: a trace that records them
    # is a different artifact from one that does not.
    for anchor in sorted(trace.deletions):
        for dcid in trace.deletions[anchor]:
            feed(f"D {anchor} {dcid}\n".encode())
    for entry in trace.level_zero:
        feed(f"Z {entry.var} {int(entry.value)} {entry.antecedent}\n".encode())
    for cid in trace.final_conflicts:
        feed(f"F {cid}\n".encode())
    feed(f"R {trace.status}\n".encode())
    return digest.hexdigest()


def trace_content_hash(source: str | Path | Trace) -> str:
    """Content fingerprint of a trace source.

    A path hashes the file's raw bytes (so an ASCII and a binary encoding
    of the same proof are — deliberately — different artifacts); a
    :class:`Trace` hashes its canonical record stream. Matching hashes
    mean "checking this source replays the exact same work".
    """
    if isinstance(source, Trace):
        return _hash_trace_object(source)
    return sha256_file(source)
