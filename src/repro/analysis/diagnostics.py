"""Structured diagnostics for the static trace analyzer.

A :class:`Diagnostic` is the analysis-side analogue of
:class:`repro.checker.errors.CheckFailure`: machine-readable first, with a
rule ID, a severity, the record index in the trace stream, and the clause
IDs involved — so a failing fault-injection test can assert *exactly* which
rule fired, and a human can jump straight to the offending record.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """How bad a finding is.

    * ``ERROR`` — the trace is structurally broken; no checker can replay it
      to a valid proof. Errors fail ``repro lint-trace`` and the checkers'
      ``precheck`` pass.
    * ``WARNING`` — suspicious but replayable; reported, never fatal unless
      ``--strict``.
    * ``INFO`` — observations (e.g. proof reachability percentage).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True, eq=False)
class Diagnostic:
    """One finding of one rule at one point in the record stream.

    ``record_index`` is the 0-based position of the offending record in the
    stream (``None`` for whole-trace findings emitted at finish time).
    ``cids`` lists the clause IDs involved, most specific first.
    """

    rule_id: str
    severity: Severity
    message: str
    record_index: int | None = None
    cids: tuple[int, ...] = ()
    context: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "record_index": self.record_index,
            "cids": list(self.cids),
            "context": dict(self.context),
        }

    def __str__(self) -> str:
        where = f" @record {self.record_index}" if self.record_index is not None else ""
        ids = f" (cids: {', '.join(map(str, self.cids))})" if self.cids else ""
        return f"{self.rule_id} {self.severity.value}{where}: {self.message}{ids}"


@dataclass
class AnalysisReport:
    """Outcome of one static analysis pass over a trace.

    ``ok`` means no error-severity diagnostics: the trace has a chance of
    replaying to a valid proof (the expensive checkers have the final word).
    ``reachable_learned`` / ``reachability_pct`` mirror the paper's Table 2
    "Built %" — the fraction of learned clauses on some path from the final
    conflict, computed here over the ID graph without any resolution.
    """

    source: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    records_scanned: int = 0
    num_learned: int = 0
    reachable_learned: int | None = None
    streaming: bool = False
    analysis_time: float = 0.0
    #: Graph-tier stats (``GraphStats.to_dict()`` + status/prunable flags)
    #: when the pass ran with ``graph=True``; ``None`` for stream-only runs.
    graph: dict[str, Any] | None = None

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was emitted."""
        return not self.errors

    @property
    def reachability_pct(self) -> float | None:
        if self.reachable_learned is None or self.num_learned == 0:
            return None
        return 100.0 * self.reachable_learned / self.num_learned

    def rule_ids(self) -> set[str]:
        """The distinct rule IDs that fired (any severity)."""
        return {d.rule_id for d in self.diagnostics}

    def summary(self) -> str:
        verdict = "clean" if self.ok else f"{len(self.errors)} error(s)"
        parts = [
            f"[lint] {verdict}, {len(self.warnings)} warning(s) | "
            f"{self.records_scanned} records, {self.num_learned} learned | "
            f"{self.analysis_time:.3f}s"
        ]
        if self.reachability_pct is not None:
            parts.append(
                f"[lint] proof reachability: {self.reachable_learned}/"
                f"{self.num_learned} learned clauses ({self.reachability_pct:.1f}%)"
            )
        if self.graph is not None:
            parts.append(
                f"[lint] graph: core {self.graph.get('core_learned')}"
                f"/{self.graph.get('num_learned')} learned, "
                f"depth {self.graph.get('depth')}, "
                f"width {self.graph.get('width')}, "
                f"prunable={self.graph.get('prunable')}"
            )
        return "\n".join(parts)

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": 1,
            "source": self.source,
            "ok": self.ok,
            "records_scanned": self.records_scanned,
            "num_learned": self.num_learned,
            "reachable_learned": self.reachable_learned,
            "reachability_pct": self.reachability_pct,
            "streaming": self.streaming,
            "analysis_time": self.analysis_time,
            "graph": self.graph,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
