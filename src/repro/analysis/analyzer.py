"""The streaming analysis engine: one pass, no resolution, no Trace.

``analyze_trace`` accepts an in-memory :class:`~repro.trace.records.Trace`,
a trace file path (ASCII or binary, auto-detected), or any iterable of
trace records. File sources are *streamed*: records flow straight from the
format iterator into the rules and are dropped — the full ``Trace`` is
never assembled, so the analyzer scales to traces the depth-first checker
memory-outs on (Table 2). The only per-clause state retained is the set of
defined IDs plus, when the reachability rule is enabled, the integer ID
graph (no literals, ever).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.rules import (
    RULE_REGISTRY,
    MalformedRecordRule,
    Rule,
    ScanState,
    default_rules,
    graph_rules,
)
from repro.trace.records import (
    ClauseDeletion,
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    Trace,
    TraceError,
    TraceHeader,
    TraceRecord,
    TraceResult,
)

TraceSource = Trace | str | Path | Iterable[TraceRecord]


def _resolve_rules(rules: Sequence[str] | None) -> list[type[Rule]]:
    if rules is None:
        return default_rules()
    selected: list[type[Rule]] = []
    for rule_id in rules:
        try:
            selected.append(RULE_REGISTRY[rule_id])
        except KeyError:
            raise ValueError(
                f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULE_REGISTRY))}"
            ) from None
    return selected


def _open_source(source: TraceSource) -> tuple[Iterator[TraceRecord], str, bool]:
    """Return (record iterator, label, streaming?) for any supported source."""
    if isinstance(source, Trace):
        return source.records(), "<in-memory trace>", False
    if isinstance(source, (str, Path)):
        from repro.trace.io import iter_trace_records

        return iter_trace_records(source), str(source), True
    return iter(source), "<record stream>", True


def analyze_trace(
    source: TraceSource,
    rules: Sequence[str] | None = None,
    compute_reachability: bool = True,
    graph: bool = False,
) -> AnalysisReport:
    """Lint a resolution trace in a single streaming pass.

    ``rules`` restricts the pass to the given rule IDs (default: all
    stream-tier rules). ``compute_reachability=False`` drops rules that
    need the ID graph, making the pass strictly O(#learned) memory for the
    defined-ID set and O(1) per record otherwise. ``graph=True`` enables
    the graph tier: the derivation DAG is assembled from the scan, the
    global rules (T013+) run over it, and the report carries its stats —
    this implies reachability.
    """
    start = time.perf_counter()
    rule_classes = _resolve_rules(rules)
    if graph and rules is None:
        rule_classes = rule_classes + graph_rules()
    if not compute_reachability and not graph:
        rule_classes = [cls for cls in rule_classes if not cls.needs_graph]

    diagnostics: list[Diagnostic] = []
    active = [cls(diagnostics.append) for cls in rule_classes]
    build_graph = graph or any(cls.graph_only for cls in rule_classes)
    keep_graph = build_graph or any(cls.needs_graph for cls in rule_classes)

    state = ScanState()
    if keep_graph:
        state.sources_by_cid = {}
    if build_graph:
        state.learned_index = {}
        state.last_use_index = {}

    records, label, streaming = _open_source(source)
    index = 0
    while True:
        try:
            record = next(records)
        except StopIteration:
            break
        except (TraceError, UnicodeDecodeError) as exc:
            # UnicodeDecodeError: non-ASCII bytes in a file sniffed as the
            # text format — the record stream is garbage, same as TraceError.
            MalformedRecordRule(diagnostics.append).parse_error(index, exc)
            break
        if isinstance(record, TraceHeader):
            for rule in active:
                rule.on_header(state, index, record)
            if state.header is None:
                state.header = record
                state.header_index = index
            else:
                state.extra_header_indices.append(index)
        elif isinstance(record, LearnedClause):
            if state.header is None:
                state.records_before_header += 1
            for rule in active:
                rule.on_learned(state, index, record)
            if record.cid not in state.defined:
                state.num_learned += 1
            else:
                state.duplicate_learned = True
            state.defined.add(record.cid)
            state.last_learned_cid = record.cid
            if state.sources_by_cid is not None:
                state.sources_by_cid[record.cid] = record.sources
            if state.learned_index is not None:
                state.learned_index.setdefault(record.cid, index)
            if state.last_use_index is not None:
                for source in record.sources:
                    state.last_use_index[source] = index
        elif isinstance(record, LevelZeroAssignment):
            if state.header is None:
                state.records_before_header += 1
            for rule in active:
                rule.on_level_zero(state, index, record)
            state.level_zero.append((index, record))
            if state.last_use_index is not None:
                state.last_use_index[record.antecedent] = index
        elif isinstance(record, FinalConflict):
            if state.header is None:
                state.records_before_header += 1
            for rule in active:
                rule.on_final_conflict(state, index, record)
            state.final_conflicts.append((index, record.cid))
            if state.last_use_index is not None:
                state.last_use_index[record.cid] = index
        elif isinstance(record, TraceResult):
            if state.header is None:
                state.records_before_header += 1
            for rule in active:
                rule.on_result(state, index, record)
            if state.status is None:
                state.status = record.status
            else:
                state.extra_result_indices.append(index)
        elif isinstance(record, ClauseDeletion):
            if state.header is None:
                state.records_before_header += 1
            for rule in active:
                rule.on_deletion(state, index, record)
            state.deletions.append((index, record.cid))
        else:  # pragma: no cover - defensive
            MalformedRecordRule(diagnostics.append).parse_error(
                index, TraceError(f"unknown record type {type(record).__name__}")
            )
        index += 1

    state.num_records = index
    if build_graph:
        from repro.analysis.graph import DerivationGraph

        state.graph = DerivationGraph.from_scan(state)

    for rule in active:
        rule.finish(state)

    diagnostics.sort(
        key=lambda d: (d.record_index is None, d.record_index or 0, d.rule_id)
    )
    graph_info: dict[str, Any] | None = None
    if state.graph is not None:
        graph_info = state.graph.stats().to_dict()
        graph_info["status"] = state.graph.status
        graph_info["prunable"] = state.graph.prune_plan() is not None
    return AnalysisReport(
        source=label,
        diagnostics=diagnostics,
        records_scanned=index,
        num_learned=state.num_learned,
        reachable_learned=state.reachable_learned,
        streaming=streaming,
        analysis_time=time.perf_counter() - start,
        graph=graph_info,
    )
