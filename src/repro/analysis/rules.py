"""The lint rule registry: structural invariants of a resolution trace.

Each rule is a small class with a stable ID (``T001`` …), a severity, and a
one-line rationale; the catalog is rendered into ``docs/static_analysis.md``.
Rules observe the record stream through event hooks and emit structured
:class:`~repro.analysis.diagnostics.Diagnostic` objects — they never build a
clause and never perform a resolution step, which is what makes the whole
pass a cheap single scan over the antecedent graph.

Shared bookkeeping (defined-ID set, trail, ID graph) lives in
:class:`ScanState`, maintained by the engine in ``analyzer.py``; rules only
read it. A rule that needs the full ID graph (reachability) sets
``needs_graph`` so the engine can skip graph retention when the rule is
disabled — that is what keeps streaming mode lean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, ClassVar

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.trace.records import (
    ClauseDeletion,
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    TraceHeader,
    TraceResult,
)

if TYPE_CHECKING:
    from repro.analysis.graph import DerivationGraph


@dataclass
class ScanState:
    """What the engine has seen so far; shared read-only by all rules."""

    header: TraceHeader | None = None
    header_index: int | None = None
    extra_header_indices: list[int] = field(default_factory=list)
    records_before_header: int = 0
    defined: set[int] = field(default_factory=set)
    last_learned_cid: int | None = None
    num_learned: int = 0
    sources_by_cid: dict[int, tuple[int, ...]] | None = None
    level_zero: list[tuple[int, LevelZeroAssignment]] = field(default_factory=list)
    final_conflicts: list[tuple[int, int]] = field(default_factory=list)
    status: str | None = None
    extra_result_indices: list[int] = field(default_factory=list)
    reachable_learned: int | None = None
    duplicate_learned: bool = False
    num_records: int = 0
    deletions: list[tuple[int, int]] = field(default_factory=list)
    # Detail maps, maintained only in graph mode (``None`` otherwise):
    learned_index: dict[int, int] | None = None
    last_use_index: dict[int, int] | None = None
    # The assembled DAG, attached by the engine before finish() in graph mode.
    graph: DerivationGraph | None = None

    @property
    def num_original(self) -> int | None:
        return None if self.header is None else self.header.num_original_clauses

    @property
    def num_vars(self) -> int | None:
        return None if self.header is None else self.header.num_vars

    def is_defined(self, cid: int) -> bool:
        """Whether ``cid`` names an original clause or an already-seen learned one."""
        num_original = self.num_original or 0
        return 1 <= cid <= num_original or cid in self.defined


Emit = Callable[[Diagnostic], None]


class Rule:
    """Base class: a single structural invariant over the record stream."""

    rule_id: ClassVar[str]
    name: ClassVar[str]
    severity: ClassVar[Severity]
    rationale: ClassVar[str]
    needs_graph: ClassVar[bool] = False
    # Graph-tier rules (T013+) read the assembled DerivationGraph and only
    # run when the caller opts in (``analyze_trace(graph=True)`` / explicit
    # selection) — keeping the default pass and its verdicts unchanged.
    graph_only: ClassVar[bool] = False

    def __init__(self, emit: Emit) -> None:
        self._emit = emit

    def report(
        self,
        message: str,
        index: int | None = None,
        cids: tuple[int, ...] = (),
        severity: Severity | None = None,
        **context: object,
    ) -> None:
        self._emit(
            Diagnostic(
                rule_id=self.rule_id,
                severity=severity or self.severity,
                message=message,
                record_index=index,
                cids=cids,
                context=dict(context),
            )
        )

    # Event hooks: the engine calls these BEFORE folding the record into the
    # shared state, so e.g. the duplicate-ID rule sees "defined before me".
    def on_header(self, state: ScanState, index: int, record: TraceHeader) -> None: ...

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None: ...

    def on_level_zero(
        self, state: ScanState, index: int, record: LevelZeroAssignment
    ) -> None: ...

    def on_final_conflict(
        self, state: ScanState, index: int, record: FinalConflict
    ) -> None: ...

    def on_result(self, state: ScanState, index: int, record: TraceResult) -> None: ...

    def on_deletion(
        self, state: ScanState, index: int, record: ClauseDeletion
    ) -> None: ...

    def finish(self, state: ScanState) -> None: ...


RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    if cls.rule_id in RULE_REGISTRY:  # pragma: no cover - defensive
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def default_rules() -> list[type[Rule]]:
    """All stream-tier rules (graph-tier excluded), in rule-ID order."""
    return [
        RULE_REGISTRY[rule_id]
        for rule_id in sorted(RULE_REGISTRY)
        if not RULE_REGISTRY[rule_id].graph_only
    ]


def graph_rules() -> list[type[Rule]]:
    """The graph-tier rules (T013+), in rule-ID order."""
    return [
        RULE_REGISTRY[rule_id]
        for rule_id in sorted(RULE_REGISTRY)
        if RULE_REGISTRY[rule_id].graph_only
    ]


@register_rule
class DanglingReferenceRule(Rule):
    """A record names a clause ID that is never defined: the checker would
    hit an unknown clause deep into the replay; catch it in the scan."""

    rule_id = "T001"
    name = "dangling-reference"
    severity = Severity.ERROR
    rationale = (
        "Every resolve source, level-0 antecedent, and final conflict must "
        "name an original clause or a previously recorded learned clause."
    )

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None:
        if state.num_original is None:
            return  # no header: T008 owns this failure mode
        for source in record.sources:
            if source >= record.cid:
                continue  # forward/self reference: T002's finding
            if not state.is_defined(source):
                self.report(
                    "learned clause resolves from a source ID that is not an "
                    "original clause and was never recorded before this point",
                    index=index,
                    cids=(record.cid, source),
                    source=source,
                )

    def finish(self, state: ScanState) -> None:
        if state.num_original is None:
            return
        for index, entry in state.level_zero:
            if not state.is_defined(entry.antecedent):
                self.report(
                    "level-0 assignment cites an antecedent clause ID that "
                    "is never defined in the trace",
                    index=index,
                    cids=(entry.antecedent,),
                    var=entry.var,
                )
        for index, cid in state.final_conflicts:
            if not state.is_defined(cid):
                self.report(
                    "final conflict points at a clause ID that is never "
                    "defined in the trace",
                    index=index,
                    cids=(cid,),
                )


@register_rule
class ForwardReferenceRule(Rule):
    """Sources must precede the clause they build: a source ID >= the learned
    ID breaks the DAG topological order the checkers rely on."""

    rule_id = "T002"
    name = "forward-reference"
    severity = Severity.ERROR
    rationale = (
        "Resolution proofs are DAGs ordered by clause ID; a self or forward "
        "reference can never be replayed (the paper's checkers reject it as "
        "a cyclic trace)."
    )

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None:
        for source in record.sources:
            if source >= record.cid:
                kind = "itself" if source == record.cid else "a later clause"
                self.report(
                    f"learned clause resolves from {kind}: source ID is not "
                    "smaller than its own ID",
                    index=index,
                    cids=(record.cid, source),
                    source=source,
                )


@register_rule
class DuplicateIdRule(Rule):
    """Each clause ID must be defined exactly once; redefinition makes every
    later reference ambiguous."""

    rule_id = "T003"
    name = "duplicate-id"
    severity = Severity.ERROR
    rationale = (
        "Clause IDs are the only link between trace records; a duplicated "
        "definition silently rebinds every subsequent reference."
    )

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None:
        num_original = state.num_original
        if num_original is not None and record.cid <= num_original:
            self.report(
                "learned clause ID collides with the original clause range",
                index=index,
                cids=(record.cid,),
                num_original=num_original,
            )
        elif record.cid in state.defined:
            self.report(
                "learned clause ID was already defined earlier in the trace",
                index=index,
                cids=(record.cid,),
            )


@register_rule
class VariableRangeRule(Rule):
    """Level-0 variables must fit the header's declared variable count."""

    rule_id = "T004"
    name = "variable-out-of-range"
    severity = Severity.ERROR
    rationale = (
        "The header fixes the instance dimensions the solver and checker "
        "agreed on; a trail variable outside [1, num_vars] cannot belong to "
        "the formula."
    )

    def on_level_zero(
        self, state: ScanState, index: int, record: LevelZeroAssignment
    ) -> None:
        if record.var < 1:
            self.report(
                "level-0 assignment names a non-positive variable",
                index=index,
                var=record.var,
            )
        elif state.num_vars is not None and record.var > state.num_vars:
            self.report(
                "level-0 assignment names a variable beyond the header's "
                "variable count",
                index=index,
                var=record.var,
                num_vars=state.num_vars,
            )


@register_rule
class ShortChainRule(Rule):
    """A resolve chain with fewer than two sources performs no resolution."""

    rule_id = "T005"
    name = "short-chain"
    severity = Severity.ERROR
    rationale = (
        "A learned clause is the result of >= 1 resolution, which consumes "
        ">= 2 sources; a shorter chain is a copy, not a derivation (the "
        "solver never records those)."
    )

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None:
        if len(record.sources) < 2:
            self.report(
                "resolve chain is too short to resolve (fewer than 2 sources)",
                index=index,
                cids=(record.cid,),
                num_sources=len(record.sources),
            )


@register_rule
class UnreachableClauseRule(Rule):
    """Learned clauses unreachable from the empty-clause derivation are dead
    proof weight — the paper's Table 2 shows only 19-90 % are ever needed."""

    rule_id = "T006"
    name = "unreachable-learned"
    severity = Severity.INFO
    rationale = (
        "Clauses off every path from the final conflict and the level-0 "
        "antecedents cost trace size and checker parsing time for nothing; "
        "repro-trim can drop them."
    )
    needs_graph = True

    def finish(self, state: ScanState) -> None:
        if (
            state.sources_by_cid is None
            or state.status != "UNSAT"
            or not state.final_conflicts
            or state.num_original is None
        ):
            return
        num_original = state.num_original
        roots = [cid for _, cid in state.final_conflicts]
        roots += [entry.antecedent for _, entry in state.level_zero]
        stack = [cid for cid in roots if cid > num_original]
        visited: set[int] = set()
        while stack:
            cid = stack.pop()
            if cid in visited:
                continue
            visited.add(cid)
            for source in state.sources_by_cid.get(cid, ()):
                if source > num_original and source not in visited:
                    stack.append(source)
        reachable = len(visited & state.defined)
        state.reachable_learned = reachable
        unreachable = state.num_learned - reachable
        if unreachable > 0 and state.num_learned > 0:
            pct = 100.0 * reachable / state.num_learned
            self.report(
                f"{unreachable} of {state.num_learned} learned clauses are "
                f"unreachable from the final conflict "
                f"(proof reachability {pct:.1f}%)",
                reachable=reachable,
                unreachable=unreachable,
                reachability_pct=round(pct, 1),
            )


@register_rule
class EmptyDerivationRule(Rule):
    """An UNSAT claim needs the raw material for an empty-clause derivation:
    at least one final conflicting clause."""

    rule_id = "T007"
    name = "missing-empty-derivation"
    severity = Severity.ERROR
    rationale = (
        "The checkers derive the empty clause starting from the final "
        "conflicting clause; an UNSAT trace without one (or with several) "
        "is missing its proof obligation."
    )

    def finish(self, state: ScanState) -> None:
        if state.status == "UNSAT":
            if not state.final_conflicts:
                self.report(
                    "trace claims UNSAT but records no final conflicting clause"
                )
            elif len(state.final_conflicts) > 1:
                self.report(
                    "trace records multiple final conflicting clauses; "
                    "checkers use only the first",
                    index=state.final_conflicts[1][0],
                    cids=tuple(cid for _, cid in state.final_conflicts),
                    severity=Severity.WARNING,
                )
        elif state.status == "SAT" and state.final_conflicts:
            self.report(
                "trace claims SAT yet records a final conflicting clause",
                index=state.final_conflicts[0][0],
                cids=(state.final_conflicts[0][1],),
                severity=Severity.WARNING,
            )


@register_rule
class HeaderRule(Rule):
    """Exactly one header, first, with sane dimensions."""

    rule_id = "T008"
    name = "bad-header"
    severity = Severity.ERROR
    rationale = (
        "Every downstream check is relative to the header's dimensions; "
        "without it (or with two of them) no record can be classified."
    )

    def on_header(self, state: ScanState, index: int, record: TraceHeader) -> None:
        if record.num_vars < 0 or record.num_original_clauses < 0:
            self.report(
                "header declares negative instance dimensions",
                index=index,
                num_vars=record.num_vars,
                num_original_clauses=record.num_original_clauses,
            )

    def finish(self, state: ScanState) -> None:
        if state.header is None:
            self.report("trace has no header record")
        if state.extra_header_indices:
            for index in state.extra_header_indices:
                self.report("duplicate trace header", index=index)
        if state.records_before_header:
            self.report(
                f"{state.records_before_header} record(s) appear before the header",
                index=0,
            )


@register_rule
class ResultRule(Rule):
    """The trace must end with the solver's claim — that claim is the thing
    being validated."""

    rule_id = "T009"
    name = "missing-result"
    severity = Severity.ERROR
    rationale = (
        "Without an R record there is no claim to check; an UNKNOWN claim "
        "is legal (budget exhausted) but leaves nothing for a checker to do."
    )

    def finish(self, state: ScanState) -> None:
        if state.status is None:
            self.report("trace has no result record")
        elif state.status not in ("SAT", "UNSAT", "UNKNOWN"):
            self.report(
                f"trace result {state.status!r} is not SAT, UNSAT, or UNKNOWN"
            )
        elif state.status == "UNKNOWN":
            self.report(
                "trace result is UNKNOWN: nothing for a checker to validate",
                severity=Severity.WARNING,
            )
        if state.extra_result_indices:
            self.report(
                "trace has multiple result records",
                index=state.extra_result_indices[0],
                severity=Severity.WARNING,
            )


@register_rule
class MonotonicIdRule(Rule):
    """Learned clause IDs must be recorded in strictly increasing order."""

    rule_id = "T010"
    name = "non-monotonic-id"
    severity = Severity.ERROR
    rationale = (
        "The breadth-first checker streams the trace in generation order and "
        "requires strictly increasing learned IDs; out-of-order definitions "
        "also defeat the binary format's delta encoding."
    )

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None:
        if (
            state.last_learned_cid is not None
            and record.cid <= state.last_learned_cid
            and record.cid not in state.defined  # exact duplicates are T003's
        ):
            self.report(
                "learned clause ID is not greater than the previously "
                "recorded one",
                index=index,
                cids=(record.cid,),
                previous=state.last_learned_cid,
            )


@register_rule
class TrailConsistencyRule(Rule):
    """The level-0 trail must assign each variable at most once."""

    rule_id = "T011"
    name = "inconsistent-trail"
    severity = Severity.ERROR
    rationale = (
        "A variable assigned both values at level 0 encodes a contradiction "
        "outside the resolution proof; a repeated identical assignment is "
        "redundant but harmless."
    )

    def finish(self, state: ScanState) -> None:
        seen: dict[int, tuple[int, bool]] = {}
        for index, entry in state.level_zero:
            previous = seen.get(entry.var)
            if previous is None:
                seen[entry.var] = (index, entry.value)
            elif previous[1] != entry.value:
                self.report(
                    "variable is assigned both values on the level-0 trail",
                    index=index,
                    var=entry.var,
                    first_record=previous[0],
                )
            else:
                self.report(
                    "variable is assigned twice (same value) on the level-0 trail",
                    index=index,
                    var=entry.var,
                    first_record=previous[0],
                    severity=Severity.WARNING,
                )


@register_rule
class MalformedRecordRule(Rule):
    """The trace file itself must parse; a torn or garbled record ends the
    analysis with a precise position instead of a stack trace."""

    rule_id = "T012"
    name = "malformed-record"
    severity = Severity.ERROR
    rationale = (
        "Truncated files and corrupted records are the cheapest faults to "
        "catch; the analyzer reports them as diagnostics rather than "
        "crashing the way a checker's parser would."
    )

    # No stream hooks: the engine emits through this rule when the record
    # iterator itself raises a TraceError.
    def parse_error(self, index: int, error: Exception) -> None:
        self.report(f"trace stream is malformed: {error}", index=index)


# -- graph-tier rules (T013+): run only with ``analyze_trace(graph=True)`` --


@register_rule
class DeadLemmaRule(Rule):
    """Per-lemma version of T006: name the learned clauses the proof never
    uses, so a trim (or a prune plan) can be sanity-checked by eye."""

    rule_id = "T013"
    name = "dead-lemma"
    severity = Severity.INFO
    rationale = (
        "A learned clause outside the backward-reachable cone of the final "
        "conflict is pure trace weight: every checker can skip it without "
        "affecting the verdict, and repro-trim drops it."
    )
    needs_graph = True
    graph_only = True

    #: Individual findings are capped; the remainder is summarized.
    max_individual: ClassVar[int] = 25

    def finish(self, state: ScanState) -> None:
        graph = state.graph
        if graph is None or state.status != "UNSAT" or not graph.final_conflicts:
            return
        cone = graph.cone()
        dead = [cid for cid in graph.sources_by_cid if cid not in cone]
        for cid in dead[: self.max_individual]:
            self.report(
                "learned clause is dead: no path from the final conflict or "
                "the level-0 trail reaches it",
                index=graph.learned_index.get(cid),
                cids=(cid,),
            )
        if len(dead) > self.max_individual:
            self.report(
                f"{len(dead) - self.max_individual} more dead lemmas "
                f"(first {self.max_individual} reported individually)",
                dead_total=len(dead),
            )


@register_rule
class DependencyCycleRule(Rule):
    """An explicit cycle in the derivation DAG: stronger than T002's local
    forward-reference finding, because it proves no replay order exists."""

    rule_id = "T014"
    name = "dependency-cycle"
    severity = Severity.ERROR
    rationale = (
        "A resolution derivation is a DAG; clauses that (transitively) "
        "resolve from themselves can never be built in any order, so the "
        "trace encodes no proof at all."
    )
    needs_graph = True
    graph_only = True

    def finish(self, state: ScanState) -> None:
        graph = state.graph
        if graph is None:
            return
        cycle = graph.find_cycle()
        if cycle:
            self.report(
                f"learned clauses form a dependency cycle of length {len(cycle)}",
                index=graph.learned_index.get(cycle[0]),
                cids=tuple(cycle),
                cycle_length=len(cycle),
            )


@register_rule
class UseAfterDeletionRule(Rule):
    """A clause referenced after its deletion record: the trace contradicts
    its own clause-lifetime claims."""

    rule_id = "T015"
    name = "use-after-deletion"
    severity = Severity.ERROR
    rationale = (
        "Deletion records are advisory, but a solver that resolves with a "
        "clause it claims to have deleted has a clause-database bug (the "
        "paper: antecedents of assigned variables must always be kept)."
    )
    needs_graph = True
    graph_only = True

    def finish(self, state: ScanState) -> None:
        graph = state.graph
        if graph is None:
            return
        first_deleted: dict[int, int] = {}
        for del_index, cid in graph.deletions:
            previous = first_deleted.get(cid)
            if previous is not None:
                self.report(
                    "clause is deleted twice",
                    index=del_index,
                    cids=(cid,),
                    first_deletion=previous,
                    severity=Severity.WARNING,
                )
                continue
            first_deleted[cid] = del_index
            if 1 <= cid <= graph.num_original:
                self.report(
                    "deletion record targets an original clause",
                    index=del_index,
                    cids=(cid,),
                    severity=Severity.WARNING,
                )
            elif cid not in graph.sources_by_cid:
                self.report(
                    "deletion record targets a clause ID that is never defined",
                    index=del_index,
                    cids=(cid,),
                    severity=Severity.WARNING,
                )
            elif graph.learned_index.get(cid, -1) > del_index:
                self.report(
                    "clause is deleted before it is defined",
                    index=del_index,
                    cids=(cid,),
                    severity=Severity.WARNING,
                )
            last_use = graph.last_use_index.get(cid)
            if last_use is not None and last_use > del_index:
                self.report(
                    "clause is used after its deletion record",
                    index=last_use,
                    cids=(cid,),
                    deleted_at=del_index,
                )


@register_rule
class RedundantDerivationRule(Rule):
    """Two learned clauses with identical resolve chains: the second
    derivation re-does work the checker already paid for."""

    rule_id = "T016"
    name = "redundant-derivation"
    severity = Severity.WARNING
    rationale = (
        "Identical source chains resolve to identical clauses; re-deriving "
        "one doubles the checker's resolution work for zero proof content."
    )
    needs_graph = True
    graph_only = True

    max_individual: ClassVar[int] = 25

    def finish(self, state: ScanState) -> None:
        graph = state.graph
        if graph is None:
            return
        duplicates = graph.redundant_derivations()
        for cid, earlier in duplicates[: self.max_individual]:
            self.report(
                "learned clause re-derives an identical resolve chain",
                index=graph.learned_index.get(cid),
                cids=(cid, earlier),
                first_derivation=earlier,
            )
        if len(duplicates) > self.max_individual:
            self.report(
                f"{len(duplicates) - self.max_individual} more redundant "
                f"derivations (first {self.max_individual} reported)",
                duplicate_total=len(duplicates),
            )


@register_rule
class SuspiciousCoreRule(Rule):
    """An UNSAT proof whose cone touches zero original clauses refutes
    nothing about the input formula."""

    rule_id = "T017"
    name = "suspicious-core-shape"
    severity = Severity.WARNING
    rationale = (
        "A refutation must ultimately rest on the input clauses; a cone "
        "that never reaches the original range means the trace was built "
        "against a different formula (or fabricated from thin air)."
    )
    needs_graph = True
    graph_only = True

    def finish(self, state: ScanState) -> None:
        graph = state.graph
        if graph is None or state.status != "UNSAT" or not graph.final_conflicts:
            return
        if not graph.original_core():
            self.report(
                "proof cone touches zero original clauses: the refutation "
                "does not depend on the input formula",
                cids=tuple(cid for _, cid in graph.final_conflicts[:1]),
            )
