"""The lint rule registry: structural invariants of a resolution trace.

Each rule is a small class with a stable ID (``T001`` …), a severity, and a
one-line rationale; the catalog is rendered into ``docs/static_analysis.md``.
Rules observe the record stream through event hooks and emit structured
:class:`~repro.analysis.diagnostics.Diagnostic` objects — they never build a
clause and never perform a resolution step, which is what makes the whole
pass a cheap single scan over the antecedent graph.

Shared bookkeeping (defined-ID set, trail, ID graph) lives in
:class:`ScanState`, maintained by the engine in ``analyzer.py``; rules only
read it. A rule that needs the full ID graph (reachability) sets
``needs_graph`` so the engine can skip graph retention when the rule is
disabled — that is what keeps streaming mode lean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.trace.records import (
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    TraceHeader,
    TraceResult,
)


@dataclass
class ScanState:
    """What the engine has seen so far; shared read-only by all rules."""

    header: TraceHeader | None = None
    header_index: int | None = None
    extra_header_indices: list[int] = field(default_factory=list)
    records_before_header: int = 0
    defined: set[int] = field(default_factory=set)
    last_learned_cid: int | None = None
    num_learned: int = 0
    sources_by_cid: dict[int, tuple[int, ...]] | None = None
    level_zero: list[tuple[int, LevelZeroAssignment]] = field(default_factory=list)
    final_conflicts: list[tuple[int, int]] = field(default_factory=list)
    status: str | None = None
    extra_result_indices: list[int] = field(default_factory=list)
    reachable_learned: int | None = None

    @property
    def num_original(self) -> int | None:
        return None if self.header is None else self.header.num_original_clauses

    @property
    def num_vars(self) -> int | None:
        return None if self.header is None else self.header.num_vars

    def is_defined(self, cid: int) -> bool:
        """Whether ``cid`` names an original clause or an already-seen learned one."""
        num_original = self.num_original or 0
        return 1 <= cid <= num_original or cid in self.defined


Emit = Callable[[Diagnostic], None]


class Rule:
    """Base class: a single structural invariant over the record stream."""

    rule_id: ClassVar[str]
    name: ClassVar[str]
    severity: ClassVar[Severity]
    rationale: ClassVar[str]
    needs_graph: ClassVar[bool] = False

    def __init__(self, emit: Emit):
        self._emit = emit

    def report(
        self,
        message: str,
        index: int | None = None,
        cids: tuple[int, ...] = (),
        severity: Severity | None = None,
        **context: object,
    ) -> None:
        self._emit(
            Diagnostic(
                rule_id=self.rule_id,
                severity=severity or self.severity,
                message=message,
                record_index=index,
                cids=cids,
                context=dict(context),
            )
        )

    # Event hooks: the engine calls these BEFORE folding the record into the
    # shared state, so e.g. the duplicate-ID rule sees "defined before me".
    def on_header(self, state: ScanState, index: int, record: TraceHeader) -> None: ...

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None: ...

    def on_level_zero(
        self, state: ScanState, index: int, record: LevelZeroAssignment
    ) -> None: ...

    def on_final_conflict(
        self, state: ScanState, index: int, record: FinalConflict
    ) -> None: ...

    def on_result(self, state: ScanState, index: int, record: TraceResult) -> None: ...

    def finish(self, state: ScanState) -> None: ...


RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    if cls.rule_id in RULE_REGISTRY:  # pragma: no cover - defensive
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def default_rules() -> list[type[Rule]]:
    """All registered rules, in rule-ID order."""
    return [RULE_REGISTRY[rule_id] for rule_id in sorted(RULE_REGISTRY)]


@register_rule
class DanglingReferenceRule(Rule):
    """A record names a clause ID that is never defined: the checker would
    hit an unknown clause deep into the replay; catch it in the scan."""

    rule_id = "T001"
    name = "dangling-reference"
    severity = Severity.ERROR
    rationale = (
        "Every resolve source, level-0 antecedent, and final conflict must "
        "name an original clause or a previously recorded learned clause."
    )

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None:
        if state.num_original is None:
            return  # no header: T008 owns this failure mode
        for source in record.sources:
            if source >= record.cid:
                continue  # forward/self reference: T002's finding
            if not state.is_defined(source):
                self.report(
                    "learned clause resolves from a source ID that is not an "
                    "original clause and was never recorded before this point",
                    index=index,
                    cids=(record.cid, source),
                    source=source,
                )

    def finish(self, state: ScanState) -> None:
        if state.num_original is None:
            return
        for index, entry in state.level_zero:
            if not state.is_defined(entry.antecedent):
                self.report(
                    "level-0 assignment cites an antecedent clause ID that "
                    "is never defined in the trace",
                    index=index,
                    cids=(entry.antecedent,),
                    var=entry.var,
                )
        for index, cid in state.final_conflicts:
            if not state.is_defined(cid):
                self.report(
                    "final conflict points at a clause ID that is never "
                    "defined in the trace",
                    index=index,
                    cids=(cid,),
                )


@register_rule
class ForwardReferenceRule(Rule):
    """Sources must precede the clause they build: a source ID >= the learned
    ID breaks the DAG topological order the checkers rely on."""

    rule_id = "T002"
    name = "forward-reference"
    severity = Severity.ERROR
    rationale = (
        "Resolution proofs are DAGs ordered by clause ID; a self or forward "
        "reference can never be replayed (the paper's checkers reject it as "
        "a cyclic trace)."
    )

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None:
        for source in record.sources:
            if source >= record.cid:
                kind = "itself" if source == record.cid else "a later clause"
                self.report(
                    f"learned clause resolves from {kind}: source ID is not "
                    "smaller than its own ID",
                    index=index,
                    cids=(record.cid, source),
                    source=source,
                )


@register_rule
class DuplicateIdRule(Rule):
    """Each clause ID must be defined exactly once; redefinition makes every
    later reference ambiguous."""

    rule_id = "T003"
    name = "duplicate-id"
    severity = Severity.ERROR
    rationale = (
        "Clause IDs are the only link between trace records; a duplicated "
        "definition silently rebinds every subsequent reference."
    )

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None:
        num_original = state.num_original
        if num_original is not None and record.cid <= num_original:
            self.report(
                "learned clause ID collides with the original clause range",
                index=index,
                cids=(record.cid,),
                num_original=num_original,
            )
        elif record.cid in state.defined:
            self.report(
                "learned clause ID was already defined earlier in the trace",
                index=index,
                cids=(record.cid,),
            )


@register_rule
class VariableRangeRule(Rule):
    """Level-0 variables must fit the header's declared variable count."""

    rule_id = "T004"
    name = "variable-out-of-range"
    severity = Severity.ERROR
    rationale = (
        "The header fixes the instance dimensions the solver and checker "
        "agreed on; a trail variable outside [1, num_vars] cannot belong to "
        "the formula."
    )

    def on_level_zero(
        self, state: ScanState, index: int, record: LevelZeroAssignment
    ) -> None:
        if record.var < 1:
            self.report(
                "level-0 assignment names a non-positive variable",
                index=index,
                var=record.var,
            )
        elif state.num_vars is not None and record.var > state.num_vars:
            self.report(
                "level-0 assignment names a variable beyond the header's "
                "variable count",
                index=index,
                var=record.var,
                num_vars=state.num_vars,
            )


@register_rule
class ShortChainRule(Rule):
    """A resolve chain with fewer than two sources performs no resolution."""

    rule_id = "T005"
    name = "short-chain"
    severity = Severity.ERROR
    rationale = (
        "A learned clause is the result of >= 1 resolution, which consumes "
        ">= 2 sources; a shorter chain is a copy, not a derivation (the "
        "solver never records those)."
    )

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None:
        if len(record.sources) < 2:
            self.report(
                "resolve chain is too short to resolve (fewer than 2 sources)",
                index=index,
                cids=(record.cid,),
                num_sources=len(record.sources),
            )


@register_rule
class UnreachableClauseRule(Rule):
    """Learned clauses unreachable from the empty-clause derivation are dead
    proof weight — the paper's Table 2 shows only 19-90 % are ever needed."""

    rule_id = "T006"
    name = "unreachable-learned"
    severity = Severity.INFO
    rationale = (
        "Clauses off every path from the final conflict and the level-0 "
        "antecedents cost trace size and checker parsing time for nothing; "
        "repro-trim can drop them."
    )
    needs_graph = True

    def finish(self, state: ScanState) -> None:
        if (
            state.sources_by_cid is None
            or state.status != "UNSAT"
            or not state.final_conflicts
            or state.num_original is None
        ):
            return
        num_original = state.num_original
        roots = [cid for _, cid in state.final_conflicts]
        roots += [entry.antecedent for _, entry in state.level_zero]
        stack = [cid for cid in roots if cid > num_original]
        visited: set[int] = set()
        while stack:
            cid = stack.pop()
            if cid in visited:
                continue
            visited.add(cid)
            for source in state.sources_by_cid.get(cid, ()):
                if source > num_original and source not in visited:
                    stack.append(source)
        reachable = len(visited & state.defined)
        state.reachable_learned = reachable
        unreachable = state.num_learned - reachable
        if unreachable > 0 and state.num_learned > 0:
            pct = 100.0 * reachable / state.num_learned
            self.report(
                f"{unreachable} of {state.num_learned} learned clauses are "
                f"unreachable from the final conflict "
                f"(proof reachability {pct:.1f}%)",
                reachable=reachable,
                unreachable=unreachable,
                reachability_pct=round(pct, 1),
            )


@register_rule
class EmptyDerivationRule(Rule):
    """An UNSAT claim needs the raw material for an empty-clause derivation:
    at least one final conflicting clause."""

    rule_id = "T007"
    name = "missing-empty-derivation"
    severity = Severity.ERROR
    rationale = (
        "The checkers derive the empty clause starting from the final "
        "conflicting clause; an UNSAT trace without one (or with several) "
        "is missing its proof obligation."
    )

    def finish(self, state: ScanState) -> None:
        if state.status == "UNSAT":
            if not state.final_conflicts:
                self.report(
                    "trace claims UNSAT but records no final conflicting clause"
                )
            elif len(state.final_conflicts) > 1:
                self.report(
                    "trace records multiple final conflicting clauses; "
                    "checkers use only the first",
                    index=state.final_conflicts[1][0],
                    cids=tuple(cid for _, cid in state.final_conflicts),
                    severity=Severity.WARNING,
                )
        elif state.status == "SAT" and state.final_conflicts:
            self.report(
                "trace claims SAT yet records a final conflicting clause",
                index=state.final_conflicts[0][0],
                cids=(state.final_conflicts[0][1],),
                severity=Severity.WARNING,
            )


@register_rule
class HeaderRule(Rule):
    """Exactly one header, first, with sane dimensions."""

    rule_id = "T008"
    name = "bad-header"
    severity = Severity.ERROR
    rationale = (
        "Every downstream check is relative to the header's dimensions; "
        "without it (or with two of them) no record can be classified."
    )

    def on_header(self, state: ScanState, index: int, record: TraceHeader) -> None:
        if record.num_vars < 0 or record.num_original_clauses < 0:
            self.report(
                "header declares negative instance dimensions",
                index=index,
                num_vars=record.num_vars,
                num_original_clauses=record.num_original_clauses,
            )

    def finish(self, state: ScanState) -> None:
        if state.header is None:
            self.report("trace has no header record")
        if state.extra_header_indices:
            for index in state.extra_header_indices:
                self.report("duplicate trace header", index=index)
        if state.records_before_header:
            self.report(
                f"{state.records_before_header} record(s) appear before the header",
                index=0,
            )


@register_rule
class ResultRule(Rule):
    """The trace must end with the solver's claim — that claim is the thing
    being validated."""

    rule_id = "T009"
    name = "missing-result"
    severity = Severity.ERROR
    rationale = (
        "Without an R record there is no claim to check; an UNKNOWN claim "
        "is legal (budget exhausted) but leaves nothing for a checker to do."
    )

    def finish(self, state: ScanState) -> None:
        if state.status is None:
            self.report("trace has no result record")
        elif state.status not in ("SAT", "UNSAT", "UNKNOWN"):
            self.report(
                f"trace result {state.status!r} is not SAT, UNSAT, or UNKNOWN"
            )
        elif state.status == "UNKNOWN":
            self.report(
                "trace result is UNKNOWN: nothing for a checker to validate",
                severity=Severity.WARNING,
            )
        if state.extra_result_indices:
            self.report(
                "trace has multiple result records",
                index=state.extra_result_indices[0],
                severity=Severity.WARNING,
            )


@register_rule
class MonotonicIdRule(Rule):
    """Learned clause IDs must be recorded in strictly increasing order."""

    rule_id = "T010"
    name = "non-monotonic-id"
    severity = Severity.ERROR
    rationale = (
        "The breadth-first checker streams the trace in generation order and "
        "requires strictly increasing learned IDs; out-of-order definitions "
        "also defeat the binary format's delta encoding."
    )

    def on_learned(self, state: ScanState, index: int, record: LearnedClause) -> None:
        if (
            state.last_learned_cid is not None
            and record.cid <= state.last_learned_cid
            and record.cid not in state.defined  # exact duplicates are T003's
        ):
            self.report(
                "learned clause ID is not greater than the previously "
                "recorded one",
                index=index,
                cids=(record.cid,),
                previous=state.last_learned_cid,
            )


@register_rule
class TrailConsistencyRule(Rule):
    """The level-0 trail must assign each variable at most once."""

    rule_id = "T011"
    name = "inconsistent-trail"
    severity = Severity.ERROR
    rationale = (
        "A variable assigned both values at level 0 encodes a contradiction "
        "outside the resolution proof; a repeated identical assignment is "
        "redundant but harmless."
    )

    def finish(self, state: ScanState) -> None:
        seen: dict[int, tuple[int, bool]] = {}
        for index, entry in state.level_zero:
            previous = seen.get(entry.var)
            if previous is None:
                seen[entry.var] = (index, entry.value)
            elif previous[1] != entry.value:
                self.report(
                    "variable is assigned both values on the level-0 trail",
                    index=index,
                    var=entry.var,
                    first_record=previous[0],
                )
            else:
                self.report(
                    "variable is assigned twice (same value) on the level-0 trail",
                    index=index,
                    var=entry.var,
                    first_record=previous[0],
                    severity=Severity.WARNING,
                )


@register_rule
class MalformedRecordRule(Rule):
    """The trace file itself must parse; a torn or garbled record ends the
    analysis with a precise position instead of a stack trace."""

    rule_id = "T012"
    name = "malformed-record"
    severity = Severity.ERROR
    rationale = (
        "Truncated files and corrupted records are the cheapest faults to "
        "catch; the analyzer reports them as diagnostics rather than "
        "crashing the way a checker's parser would."
    )

    # No stream hooks: the engine emits through this rule when the record
    # iterator itself raises a TraceError.
    def parse_error(self, index: int, error: Exception) -> None:
        self.report(f"trace stream is malformed: {error}", index=index)
