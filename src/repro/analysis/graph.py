"""Static derivation-DAG analysis: backward reachability without resolution.

The depth-first checker discovers "what clauses are needed for this proof"
(§3.2) as a side effect of replaying it. This module computes the same
knowledge *statically*: one streaming pass over any trace source collects
the integer clause-ID graph (never a literal), and a backward walk from the
final conflict plus the level-0 antecedents yields the proof cone — the
learned clauses a checker must actually build. Everything else is dead
weight, and "Efficient Certified Resolution Proof Checking" shows skipping
it is often the single biggest win available.

Two consumers sit on top:

* :class:`PrunePlan` — a precomputed skip set (plus breadth-first-exact use
  counts) that every checking strategy accepts via ``prune_plan=`` to avoid
  building unreachable learned clauses.
* The global lint rules T013–T017 and the ``repro analyze`` CLI, which read
  a :class:`DerivationGraph` assembled by the analysis engine.

A plan is only produced for traces whose ID graph is structurally clean
(no dangling/forward/duplicate references, monotonic IDs, single header,
an UNSAT claim with a final conflict). Anything else returns ``None`` and
the checkers run unpruned — so pruning can never change the verdict on a
trace the linter would reject, and a resolution-level fault inside the
cone is still replayed and still fails.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from repro.trace.records import (
    ClauseDeletion,
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    Trace,
    TraceError,
    TraceHeader,
    TraceRecord,
    TraceResult,
)

if TYPE_CHECKING:
    from repro.analysis.rules import ScanState
    from repro.trace.windows import WindowPlan

TraceSource = Trace | str | Path | Iterable[TraceRecord]

#: Cap on recorded structural violations; one is enough to veto pruning,
#: a handful is enough for diagnostics.
_MAX_VIOLATIONS = 20


@dataclass(frozen=True)
class GraphStats:
    """Aggregate shape of one derivation DAG (all pure graph arithmetic)."""

    num_records: int
    num_learned: int
    num_deletions: int
    core_learned: int
    dead_learned: int
    dead_fraction: float
    core_original: int
    depth: int
    width: int

    def to_dict(self) -> dict[str, int | float]:
        return {
            "num_records": self.num_records,
            "num_learned": self.num_learned,
            "num_deletions": self.num_deletions,
            "core_learned": self.core_learned,
            "dead_learned": self.dead_learned,
            "dead_fraction": round(self.dead_fraction, 4),
            "core_original": self.core_original,
            "depth": self.depth,
            "width": self.width,
        }

    def summary(self) -> str:
        return (
            f"core {self.core_learned}/{self.num_learned} learned "
            f"({100.0 * (1.0 - self.dead_fraction):.1f}% live, "
            f"{self.dead_learned} dead) | "
            f"{self.core_original} original clauses touched | "
            f"DAG depth {self.depth}, width {self.width} | "
            f"{self.num_deletions} deletions"
        )


@dataclass(frozen=True)
class PrunePlan:
    """A checkable skip set: which learned clauses a checker may not build.

    ``keep``/``skip`` partition the trace's learned clause IDs into the
    backward-reachable cone and the dead remainder. ``needed_counts`` are
    breadth-first-exact use counts restricted to the cone (references made
    by kept clauses, level-0 antecedents, and final-conflict records), so
    the BF checker can skip its counting pre-pass entirely.
    ``skip_ordinals`` are the 0-based positions of skipped clauses among
    the trace's learned records, for proof formats (DRUP) that identify
    lemmas by position rather than by ID.
    """

    num_vars: int
    num_original: int
    max_cid: int
    total_learned: int
    keep: frozenset[int]
    skip: frozenset[int]
    needed_counts: Mapping[int, int]
    skip_ordinals: frozenset[int]

    @property
    def dead_fraction(self) -> float:
        if self.total_learned == 0:
            return 0.0
        return len(self.skip) / self.total_learned

    def digest(self) -> str:
        """Content fingerprint of the plan (checkpoint compatibility)."""
        digest = hashlib.sha256()
        digest.update(
            f"{self.num_original} {self.max_cid} {self.total_learned}\n".encode()
        )
        for cid in sorted(self.skip):
            digest.update(f"{cid}\n".encode())
        return digest.hexdigest()

    def window_counts(self, window_plan: "WindowPlan") -> list[dict[str, int]]:
        """Kept/skipped learned-clause counts per trace window.

        Windows partition the learned-ID range (``repro.trace.windows``);
        this reports how much of each window survives pruning — the
        parallel checker's per-window work estimate.
        """
        summary = [
            {"window": spec.index, "kept": 0, "skipped": 0}
            for spec in window_plan.windows
        ]
        for cid in self.keep:
            summary[window_plan.window_of(cid).index]["kept"] += 1
        for cid in self.skip:
            summary[window_plan.window_of(cid).index]["skipped"] += 1
        return summary

    def to_dict(self) -> dict[str, int | float]:
        return {
            "total_learned": self.total_learned,
            "kept": len(self.keep),
            "skipped": len(self.skip),
            "dead_fraction": round(self.dead_fraction, 4),
        }


class DerivationGraph:
    """The clause dependency graph of one trace, IDs only.

    Built either directly from a trace source (:meth:`stream` — a single
    streaming pass holding nothing but the ID graph) or from the analysis
    engine's scan state (:meth:`from_scan`). All derived quantities — the
    proof cone, the original-clause core, DAG depth/width, cycles, the
    prune plan — are pure graph computations over the collected IDs.
    """

    def __init__(
        self,
        num_vars: int,
        num_original: int,
        sources_by_cid: dict[int, tuple[int, ...]],
        learned_index: dict[int, int],
        level_zero_refs: list[tuple[int, int]],
        final_conflicts: list[tuple[int, int]],
        deletions: list[tuple[int, int]],
        last_use_index: dict[int, int],
        status: str | None,
        num_records: int,
        violations: list[str],
    ) -> None:
        self.num_vars = num_vars
        self.num_original = num_original
        #: learned cid -> resolve-source tuple, in stream order.
        self.sources_by_cid = sources_by_cid
        #: learned cid -> record index of its definition.
        self.learned_index = learned_index
        #: (record index, antecedent cid) per level-0 trail entry.
        self.level_zero_refs = level_zero_refs
        #: (record index, cid) per final-conflict record.
        self.final_conflicts = final_conflicts
        #: (record index, cid) per deletion record, in stream order.
        self.deletions = deletions
        #: cid -> record index of its last reference (source/antecedent/conflict).
        self.last_use_index = last_use_index
        self.status = status
        self.num_records = num_records
        #: Structural defects that make pruning unsafe (empty = clean DAG).
        self.violations = violations
        self._cone: frozenset[int] | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def stream(
        cls, source: TraceSource, track_indices: bool = True
    ) -> "DerivationGraph":
        """Build the graph in one streaming pass over any trace source.

        ``track_indices=False`` skips the per-reference bookkeeping
        (``learned_index``/``last_use_index``) that only the graph-tier
        lint rules read — the prune-plan path uses it to keep the
        analyzer pass a small fraction of the check it shrinks.
        """
        records = _open_records_raw(source)
        num_vars = 0
        num_original = 0
        saw_header = False
        sources_by_cid: dict[int, tuple[int, ...]] = {}
        learned_index: dict[int, int] = {}
        level_zero_refs: list[tuple[int, int]] = []
        final_conflicts: list[tuple[int, int]] = []
        deletions: list[tuple[int, int]] = []
        last_use_index: dict[int, int] = {}
        status: str | None = None
        violations: list[str] = []
        last_cid = 0
        index = 0

        def violate(message: str) -> None:
            if len(violations) < _MAX_VIOLATIONS:
                violations.append(message)

        while True:
            try:
                record = next(records)
            except StopIteration:
                break
            except (TraceError, UnicodeDecodeError) as exc:
                violate(f"parse error at record {index}: {exc}")
                break
            # Learned clauses may arrive as bare (cid, sources) tuples from
            # the raw binary decoder — the hot path, dispatched first.
            rec_type = type(record)
            if rec_type is tuple or rec_type is LearnedClause:
                if rec_type is tuple:
                    cid, raw_sources = record
                    sources: tuple[int, ...] = tuple(raw_sources)
                else:
                    cid = record.cid
                    sources = record.sources
                if not saw_header:
                    violate(f"learned clause before header at record {index}")
                if cid in sources_by_cid or (saw_header and cid <= num_original):
                    violate(f"duplicate or colliding clause id {cid}")
                elif cid <= last_cid:
                    violate(f"non-monotonic clause id {cid} after {last_cid}")
                if len(sources) < 2:
                    violate(f"clause {cid} has a short resolve chain")
                if track_indices:
                    for source in sources:
                        if source >= cid:
                            violate(f"clause {cid} references forward id {source}")
                        elif source > num_original and source not in sources_by_cid:
                            violate(f"clause {cid} references undefined id {source}")
                        elif source < 1:
                            violate(f"clause {cid} references non-positive id {source}")
                        last_use_index[source] = index
                    learned_index.setdefault(cid, index)
                else:
                    # Same validation, minus the per-reference index stores
                    # (duplicated so the hot loop stays branch-free inside).
                    for source in sources:
                        if source >= cid:
                            violate(f"clause {cid} references forward id {source}")
                        elif source > num_original and source not in sources_by_cid:
                            violate(f"clause {cid} references undefined id {source}")
                        elif source < 1:
                            violate(f"clause {cid} references non-positive id {source}")
                sources_by_cid[cid] = sources
                if cid > last_cid:
                    last_cid = cid
            elif isinstance(record, TraceHeader):
                if saw_header:
                    violate(f"duplicate header at record {index}")
                else:
                    saw_header = True
                    num_vars = record.num_vars
                    num_original = record.num_original_clauses
                    if num_vars < 0 or num_original < 0:
                        violate("header declares negative dimensions")
            elif isinstance(record, LevelZeroAssignment):
                level_zero_refs.append((index, record.antecedent))
                last_use_index[record.antecedent] = index
            elif isinstance(record, FinalConflict):
                final_conflicts.append((index, record.cid))
                last_use_index[record.cid] = index
            elif isinstance(record, TraceResult):
                if status is not None:
                    violate(f"duplicate result record at record {index}")
                else:
                    status = record.status
            elif isinstance(record, ClauseDeletion):
                deletions.append((index, record.cid))
            index += 1

        if not saw_header:
            violations.insert(0, "trace has no header")
        for _ref_index, antecedent in level_zero_refs:
            if not _is_defined(antecedent, num_original, sources_by_cid):
                violate(f"level-0 antecedent {antecedent} is undefined")
        for _ref_index, cid in final_conflicts:
            if not _is_defined(cid, num_original, sources_by_cid):
                violate(f"final conflict {cid} is undefined")

        return cls(
            num_vars=num_vars,
            num_original=num_original,
            sources_by_cid=sources_by_cid,
            learned_index=learned_index,
            level_zero_refs=level_zero_refs,
            final_conflicts=final_conflicts,
            deletions=deletions,
            last_use_index=last_use_index,
            status=status,
            num_records=index,
            violations=violations,
        )

    @classmethod
    def from_scan(cls, state: "ScanState") -> "DerivationGraph":
        """Assemble a graph from the analysis engine's scan state.

        The engine's rules (T001–T012) own structural diagnostics, so the
        violations list here records only what vetoes pruning — derived
        from the same state the rules see.
        """
        sources_by_cid = dict(state.sources_by_cid or {})
        num_original = state.num_original or 0
        violations: list[str] = []
        if state.header is None:
            violations.append("trace has no header")
        if state.extra_header_indices:
            violations.append("duplicate header")
        if state.records_before_header:
            violations.append("records before header")
        last_cid = 0
        for cid, sources in sources_by_cid.items():
            if cid <= last_cid or cid <= num_original:
                violations.append(f"non-monotonic or colliding clause id {cid}")
            last_cid = max(last_cid, cid)
            if len(sources) < 2:
                violations.append(f"clause {cid} has a short resolve chain")
            for source in sources:
                if source >= cid or source < 1:
                    violations.append(f"clause {cid} references invalid id {source}")
                elif source > num_original and source not in sources_by_cid:
                    violations.append(f"clause {cid} references undefined id {source}")
        if state.duplicate_learned:
            violations.append("duplicate learned clause id")
        for _index, entry in state.level_zero:
            if not _is_defined(entry.antecedent, num_original, sources_by_cid):
                violations.append(f"level-0 antecedent {entry.antecedent} is undefined")
        for _index, cid in state.final_conflicts:
            if not _is_defined(cid, num_original, sources_by_cid):
                violations.append(f"final conflict {cid} is undefined")
        return cls(
            num_vars=state.num_vars or 0,
            num_original=num_original,
            sources_by_cid=sources_by_cid,
            learned_index=dict(state.learned_index or {}),
            level_zero_refs=[
                (index, entry.antecedent) for index, entry in state.level_zero
            ],
            final_conflicts=list(state.final_conflicts),
            deletions=list(state.deletions),
            last_use_index=dict(state.last_use_index or {}),
            status=state.status,
            num_records=state.num_records,
            violations=violations[:_MAX_VIOLATIONS],
        )

    # -- graph computations ------------------------------------------------

    @property
    def num_learned(self) -> int:
        return len(self.sources_by_cid)

    def roots(self) -> list[int]:
        """The cone's roots: first final conflict + every level-0 antecedent.

        This matches what every checker replays: the empty-clause
        derivation starts from the first final conflict and resolves
        against the level-0 antecedents.
        """
        roots = [cid for _index, cid in self.final_conflicts[:1]]
        roots.extend(antecedent for _index, antecedent in self.level_zero_refs)
        return roots

    def closure(self, roots: Iterable[int]) -> set[int]:
        """Learned clause IDs backward-reachable from ``roots``."""
        num_original = self.num_original
        sources_by_cid = self.sources_by_cid
        stack = [cid for cid in roots if cid > num_original]
        visited: set[int] = set()
        while stack:
            cid = stack.pop()
            if cid in visited:
                continue
            visited.add(cid)
            for source in sources_by_cid.get(cid, ()):
                if source > num_original and source not in visited:
                    stack.append(source)
        return visited

    def cone(self) -> frozenset[int]:
        """The proof cone: learned IDs reachable from :meth:`roots` (cached)."""
        if self._cone is None:
            self._cone = frozenset(self.closure(self.roots()))
        return self._cone

    def original_core(self) -> frozenset[int]:
        """Original clause IDs the proof cone touches."""
        num_original = self.num_original
        core: set[int] = set()
        for cid in self.roots():
            if 1 <= cid <= num_original:
                core.add(cid)
        for cid in self.cone():
            for source in self.sources_by_cid.get(cid, ()):
                if 1 <= source <= num_original:
                    core.add(source)
        return frozenset(core)

    def find_cycle(self) -> list[int] | None:
        """A dependency cycle among learned clauses, or ``None``.

        Monotonic-ID traces are trivially acyclic; this exists for traces
        with forward references, where a genuine cycle means no replay
        order exists at all (stronger than T002's local finding).
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[int, int] = {}
        parent: dict[int, int] = {}
        sources_by_cid = self.sources_by_cid
        for start in sources_by_cid:
            if color.get(start, WHITE) != WHITE:
                continue
            stack: list[tuple[int, Iterator[int]]] = [
                (start, iter(sources_by_cid[start]))
            ]
            color[start] = GRAY
            while stack:
                cid, edges = stack[-1]
                advanced = False
                for source in edges:
                    if source not in sources_by_cid:
                        continue
                    state = color.get(source, WHITE)
                    if state == GRAY:
                        # Unwind the gray path into an explicit cycle.
                        cycle = [source, cid]
                        node = cid
                        while node != source and node in parent:
                            node = parent[node]
                            if node != source:
                                cycle.append(node)
                        cycle.reverse()
                        return cycle
                    if state == WHITE:
                        color[source] = GRAY
                        parent[source] = cid
                        stack.append((source, iter(sources_by_cid[source])))
                        advanced = True
                        break
                if not advanced:
                    color[cid] = BLACK
                    stack.pop()
        return None

    def redundant_derivations(self) -> list[tuple[int, int]]:
        """Learned clauses re-deriving an identical resolve chain.

        Identical source tuples resolve to identical clauses, so the later
        derivation is pure waste. Returns ``(duplicate_cid, first_cid)``
        pairs in stream order.
        """
        first_by_chain: dict[tuple[int, ...], int] = {}
        duplicates: list[tuple[int, int]] = []
        for cid, sources in self.sources_by_cid.items():
            earlier = first_by_chain.setdefault(sources, cid)
            if earlier != cid:
                duplicates.append((cid, earlier))
        return duplicates

    def stats(self) -> GraphStats:
        """Depth, width, core/dead split — the `repro analyze` numbers."""
        cone = self.cone()
        core_learned = len(cone & self.sources_by_cid.keys())
        dead_learned = self.num_learned - core_learned
        depth = 0
        width = 0
        if cone and not self.violations:
            # Stream order is a topological order on a clean DAG.
            num_original = self.num_original
            depth_of: dict[int, int] = {}
            level_width: dict[int, int] = {}
            for cid, sources in self.sources_by_cid.items():
                if cid not in cone:
                    continue
                best = 0
                for source in sources:
                    if source > num_original:
                        source_depth = depth_of.get(source, 0)
                        if source_depth > best:
                            best = source_depth
                depth_of[cid] = best + 1
                level_width[best + 1] = level_width.get(best + 1, 0) + 1
            if depth_of:
                depth = max(depth_of.values())
                width = max(level_width.values())
        dead_fraction = dead_learned / self.num_learned if self.num_learned else 0.0
        return GraphStats(
            num_records=self.num_records,
            num_learned=self.num_learned,
            num_deletions=len(self.deletions),
            core_learned=core_learned,
            dead_learned=dead_learned,
            dead_fraction=dead_fraction,
            core_original=len(self.original_core()),
            depth=depth,
            width=width,
        )

    # -- pruning -----------------------------------------------------------

    def prune_plan(self) -> PrunePlan | None:
        """Build a prune plan, or ``None`` when pruning would be unsafe.

        Requires a structurally clean DAG claiming UNSAT with a final
        conflict — anything else must be checked unpruned so the verdict
        cannot change.
        """
        if self.violations or self.status != "UNSAT" or not self.final_conflicts:
            return None
        cone = self.cone()
        keep = frozenset(cone & self.sources_by_cid.keys())
        skip = frozenset(self.sources_by_cid.keys() - keep)
        num_original = self.num_original
        needed_counts: dict[int, int] = {}
        for cid in keep:
            for source in self.sources_by_cid[cid]:
                if source > num_original:
                    needed_counts[source] = needed_counts.get(source, 0) + 1
        for _index, antecedent in self.level_zero_refs:
            if antecedent > num_original:
                needed_counts[antecedent] = needed_counts.get(antecedent, 0) + 1
        for _index, cid in self.final_conflicts:
            if cid > num_original and cid in keep:
                needed_counts[cid] = needed_counts.get(cid, 0) + 1
        skip_ordinals = frozenset(
            ordinal
            for ordinal, cid in enumerate(self.sources_by_cid)
            if cid in skip
        )
        max_cid = max(self.sources_by_cid, default=0)
        return PrunePlan(
            num_vars=self.num_vars,
            num_original=num_original,
            max_cid=max(max_cid, num_original),
            total_learned=self.num_learned,
            keep=keep,
            skip=skip,
            needed_counts=needed_counts,
            skip_ordinals=skip_ordinals,
        )


def build_graph(source: TraceSource) -> DerivationGraph:
    """Stream ``source`` once and return its :class:`DerivationGraph`."""
    return DerivationGraph.stream(source)


def compute_prune_plan(source: TraceSource) -> PrunePlan | None:
    """The one-call front door: analyze ``source``, return a plan or ``None``.

    ``None`` means "check this unpruned": the trace is structurally
    suspect, claims something other than UNSAT, or cannot be parsed.
    Never raises.
    """
    try:
        graph = DerivationGraph.stream(source, track_indices=False)
    except TraceError:
        return None
    return graph.prune_plan()


def _is_defined(
    cid: int, num_original: int, sources_by_cid: Mapping[int, Sequence[int]]
) -> bool:
    return 1 <= cid <= num_original or cid in sources_by_cid


def _open_records(source: TraceSource) -> tuple[Iterator[TraceRecord], str]:
    if isinstance(source, Trace):
        return source.records(), "<in-memory trace>"
    if isinstance(source, (str, Path)):
        from repro.trace.io import iter_trace_records

        return iter_trace_records(source), str(source)
    return iter(source), "<record stream>"


def _open_records_raw(
    source: TraceSource,
) -> Iterator[TraceRecord | tuple[int, list[int]]]:
    """Like :func:`_open_records`, but learned clauses may arrive as bare
    ``(cid, sources)`` tuples when the source is a binary trace file —
    the same raw decode the breadth-first checking pass runs on, which
    keeps the graph pass a small fraction of the check it prunes."""
    if isinstance(source, (str, Path)):
        from repro.trace.binary_format import iter_binary_records_raw
        from repro.trace.io import _sniff_format

        if _sniff_format(source) == "binary":
            return iter_binary_records_raw(source)
    records, _label = _open_records(source)
    return records
