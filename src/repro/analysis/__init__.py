"""Static analysis of resolution traces: lint without replaying resolution.

The depth-first and breadth-first checkers (§3) only discover a malformed
trace *while* replaying resolution — an O(proof-size x clause-width) job
whose diagnostics point far from the root cause. This package validates the
trace's *structure* in a single streaming pass over the antecedent graph:
dangling references, broken DAG order, duplicate IDs, out-of-range
variables, chains too short to resolve, dead proof weight, and missing
empty-clause derivations are all caught before (or instead of) the
expensive semantic replay.

Entry points:

* :func:`analyze_trace` — lint a ``Trace``, a trace file (ASCII or binary,
  streamed without materializing the ``Trace``), or a record iterable.
* ``precheck=True`` on any of the three checkers — fast-fail garbage before
  the replay (see :mod:`repro.checker.precheck`).
* ``repro lint-trace`` — the CLI face, with text and JSON output.
"""

from repro.analysis.analyzer import TraceSource, analyze_trace
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.graph import (
    DerivationGraph,
    GraphStats,
    PrunePlan,
    build_graph,
    compute_prune_plan,
)
from repro.analysis.rules import (
    RULE_REGISTRY,
    Rule,
    ScanState,
    default_rules,
    graph_rules,
    register_rule,
)

__all__ = [
    "analyze_trace",
    "TraceSource",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "DerivationGraph",
    "GraphStats",
    "PrunePlan",
    "build_graph",
    "compute_prune_plan",
    "RULE_REGISTRY",
    "Rule",
    "ScanState",
    "default_rules",
    "graph_rules",
    "register_rule",
]
