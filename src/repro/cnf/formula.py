"""CNF formulas: an ordered collection of clauses with agreed-upon IDs."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.cnf.clause import Clause


class CnfFormula:
    """A CNF formula whose clauses carry the IDs the checker will use.

    Original clauses receive IDs 1..m in order of appearance, matching the
    paper's requirement that "the original clauses have IDs that are agreed
    to by both the solver and the checker (e.g. the order of appearance in
    the formula)".
    """

    def __init__(self, num_vars: int, clauses: Iterable[Sequence[int]] = ()):
        if num_vars < 0:
            raise ValueError(f"num_vars must be non-negative, got {num_vars}")
        self.num_vars = num_vars
        self.clauses: list[Clause] = []
        for lits in clauses:
            self.add_clause(lits)

    def add_clause(self, literals: Sequence[int]) -> Clause:
        """Append a clause, growing ``num_vars`` if literals exceed it."""
        clause = Clause(len(self.clauses) + 1, literals)
        for lit in clause:
            var = abs(lit)
            if var > self.num_vars:
                self.num_vars = var
        self.clauses.append(clause)
        return clause

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __getitem__(self, cid: int) -> Clause:
        """Look up a clause by its 1-based ID."""
        if not 1 <= cid <= len(self.clauses):
            raise KeyError(f"no original clause with id {cid}")
        return self.clauses[cid - 1]

    def __repr__(self) -> str:
        return f"CnfFormula(vars={self.num_vars}, clauses={len(self.clauses)})"

    def used_variables(self) -> set[int]:
        """Variables that actually occur in some clause.

        The paper's Table 3 notes that the header's variable count can exceed
        the number of variables actually used; this gives the true count.
        """
        used: set[int] = set()
        for clause in self.clauses:
            used.update(clause.variables())
        return used

    def restrict_to(self, clause_ids: Iterable[int]) -> "CnfFormula":
        """Build a sub-formula from a subset of clause IDs (e.g. an unsat core).

        Clause IDs are re-assigned 1..k in ascending order of the original
        IDs; variables keep their original indices.
        """
        sub = CnfFormula(self.num_vars)
        for cid in sorted(set(clause_ids)):
            sub.add_clause(self[cid].literals)
        return sub

    def evaluate(self, model: dict[int, bool]) -> bool:
        """True iff ``model`` (variable -> value) satisfies every clause."""
        for clause in self.clauses:
            for lit in clause:
                value = model.get(abs(lit))
                if value is None:
                    continue
                if value == (lit > 0):
                    break
            else:
                return False
        return True
