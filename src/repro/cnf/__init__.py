"""CNF substrate: literals, clauses, formulas, DIMACS I/O, assignments.

Literals follow the DIMACS convention end-to-end: a literal is a nonzero
signed integer whose absolute value is the variable index (1-based) and whose
sign is the polarity. ``-3`` means "variable 3 is false".
"""

from repro.cnf.literals import (
    negate,
    variable_of,
    is_positive,
    literal,
    lit_to_str,
)
from repro.cnf.clause import Clause
from repro.cnf.formula import CnfFormula
from repro.cnf.assignment import Assignment, TRUE, FALSE, UNASSIGNED
from repro.cnf.dimacs import (
    parse_dimacs,
    parse_dimacs_file,
    write_dimacs,
    write_dimacs_file,
    DimacsError,
)

__all__ = [
    "negate",
    "variable_of",
    "is_positive",
    "literal",
    "lit_to_str",
    "Clause",
    "CnfFormula",
    "Assignment",
    "TRUE",
    "FALSE",
    "UNASSIGNED",
    "parse_dimacs",
    "parse_dimacs_file",
    "write_dimacs",
    "write_dimacs_file",
    "DimacsError",
]
