"""Literal helpers for the DIMACS signed-integer convention.

A literal is a nonzero int; ``abs(lit)`` is the 1-based variable index and
the sign is the polarity. These helpers exist mostly for readability — hot
loops in the solver inline the arithmetic.
"""

from __future__ import annotations


def negate(lit: int) -> int:
    """Return the complementary literal (x3 <-> -x3)."""
    return -lit


def variable_of(lit: int) -> int:
    """Return the (positive) variable index of a literal."""
    return lit if lit > 0 else -lit


def is_positive(lit: int) -> bool:
    """True when the literal is the positive phase of its variable."""
    return lit > 0


def literal(var: int, positive: bool) -> int:
    """Build a literal from a variable index and a polarity.

    Raises ValueError for non-positive variable indices, which would
    otherwise silently corrupt the sign convention.
    """
    if var <= 0:
        raise ValueError(f"variable index must be positive, got {var}")
    return var if positive else -var


def lit_to_str(lit: int) -> str:
    """Human-readable form, e.g. ``x3`` / ``~x3``."""
    if lit > 0:
        return f"x{lit}"
    return f"~x{-lit}"
