"""DIMACS CNF reader/writer.

Tolerant of the quirks found in real benchmark files: comments anywhere,
clauses spanning multiple lines, trailing ``%``/``0`` sections, and headers
that under- or over-declare the variable count (the paper's Table 3 notes
that declared and used variable counts differ in practice).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.cnf.formula import CnfFormula


class DimacsError(ValueError):
    """Raised on malformed DIMACS input."""


def parse_dimacs(text: str) -> CnfFormula:
    """Parse DIMACS CNF from a string."""
    return _parse(io.StringIO(text))


def parse_dimacs_file(path: str | Path) -> CnfFormula:
    """Parse DIMACS CNF from a file path."""
    with open(path, "r", encoding="ascii") as handle:
        return _parse(handle)


def _parse(stream: TextIO) -> CnfFormula:
    declared_vars = 0
    declared_clauses: int | None = None
    saw_header = False
    formula: CnfFormula | None = None
    current: list[int] = []

    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("%"):
            break  # some SATLIB files end with '%\n0'
        if line.startswith("p"):
            if saw_header:
                raise DimacsError(f"line {lineno}: duplicate header")
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise DimacsError(f"line {lineno}: bad header {line!r}")
            try:
                declared_vars = int(fields[2])
                declared_clauses = int(fields[3])
            except ValueError as exc:
                raise DimacsError(f"line {lineno}: bad header {line!r}") from exc
            if declared_vars < 0 or declared_clauses < 0:
                raise DimacsError(f"line {lineno}: negative counts in header")
            saw_header = True
            formula = CnfFormula(declared_vars)
            continue
        if not saw_header:
            raise DimacsError(f"line {lineno}: clause before 'p cnf' header")
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsError(f"line {lineno}: bad token {token!r}") from exc
            if lit == 0:
                assert formula is not None
                formula.add_clause(current)
                current = []
            else:
                current.append(lit)

    if not saw_header or formula is None:
        raise DimacsError("missing 'p cnf' header")
    if current:
        # Final clause without a terminating 0 — accept it, as many tools do.
        formula.add_clause(current)
    if declared_clauses is not None and formula.num_clauses != declared_clauses:
        raise DimacsError(
            f"header declares {declared_clauses} clauses, found {formula.num_clauses}"
        )
    return formula


def write_dimacs(formula: CnfFormula, comment: str | None = None) -> str:
    """Serialize a formula to DIMACS text."""
    parts: list[str] = []
    if comment:
        for line in comment.splitlines():
            parts.append(f"c {line}")
    parts.append(f"p cnf {formula.num_vars} {formula.num_clauses}")
    for clause in formula:
        parts.append(" ".join(str(lit) for lit in clause.literals) + " 0")
    return "\n".join(parts) + "\n"


def write_dimacs_file(formula: CnfFormula, path: str | Path, comment: str | None = None) -> None:
    """Write a formula to a DIMACS file."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(write_dimacs(formula, comment=comment))
