"""The assignment trail shared vocabulary of the solver.

Tracks, per variable: value, decision level, antecedent clause ID, and the
chronological position on the trail. The paper's invariant (§2.1) — "a
non-free, non-decision variable will always have an antecedent, and its
decision level will always equal the highest decision level of the other
variables in its antecedent clause" — is enforced by the solver and replayed
by the checkers via this record.
"""

from __future__ import annotations

TRUE = 1
FALSE = 0
UNASSIGNED = -1

NO_ANTECEDENT = 0  # decision variables and unassigned variables


class Assignment:
    """Trail-based variable assignment with decision levels and antecedents."""

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        n = num_vars + 1  # 1-based variable indexing
        self.values = [UNASSIGNED] * n
        self.levels = [-1] * n
        self.antecedents = [NO_ANTECEDENT] * n
        self.positions = [-1] * n  # index on the trail, for chronology
        self.trail: list[int] = []  # literals in assignment order
        self.level_limits: list[int] = []  # trail length at each decision

    # -- queries ---------------------------------------------------------

    @property
    def decision_level(self) -> int:
        return len(self.level_limits)

    def value_of_lit(self, lit: int) -> int:
        """TRUE/FALSE/UNASSIGNED status of a literal."""
        value = self.values[abs(lit)]
        if value == UNASSIGNED:
            return UNASSIGNED
        if lit > 0:
            return value
        return TRUE if value == FALSE else FALSE

    def is_assigned(self, var: int) -> bool:
        return self.values[var] != UNASSIGNED

    def num_assigned(self) -> int:
        return len(self.trail)

    def model(self) -> dict[int, bool]:
        """Variable -> bool for every assigned variable."""
        return {abs(lit): lit > 0 for lit in self.trail}

    # -- mutation --------------------------------------------------------

    def new_decision_level(self) -> int:
        self.level_limits.append(len(self.trail))
        return self.decision_level

    def assign(self, lit: int, antecedent: int = NO_ANTECEDENT) -> None:
        """Put a literal on the trail at the current decision level."""
        var = abs(lit)
        if self.values[var] != UNASSIGNED:
            raise ValueError(f"variable {var} is already assigned")
        self.values[var] = TRUE if lit > 0 else FALSE
        self.levels[var] = self.decision_level
        self.antecedents[var] = antecedent
        self.positions[var] = len(self.trail)
        self.trail.append(lit)

    def backtrack(self, level: int) -> None:
        """Undo all assignments above ``level`` (assertion-based backtracking)."""
        if level < 0 or level > self.decision_level:
            raise ValueError(f"cannot backtrack to level {level}")
        if level == self.decision_level:
            return
        keep = self.level_limits[level]
        for lit in self.trail[keep:]:
            var = abs(lit)
            self.values[var] = UNASSIGNED
            self.levels[var] = -1
            self.antecedents[var] = NO_ANTECEDENT
            self.positions[var] = -1
        del self.trail[keep:]
        del self.level_limits[level:]

    def grow(self, num_vars: int) -> None:
        """Extend capacity to ``num_vars`` (used when formulas grow)."""
        if num_vars <= self.num_vars:
            return
        extra = num_vars - self.num_vars
        self.values.extend([UNASSIGNED] * extra)
        self.levels.extend([-1] * extra)
        self.antecedents.extend([NO_ANTECEDENT] * extra)
        self.positions.extend([-1] * extra)
        self.num_vars = num_vars
