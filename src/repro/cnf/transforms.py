"""Satisfiability-preserving formula transformations.

Benchmark hygiene tools: shuffling variables, clauses, and polarities is
the standard way to measure a solver's sensitivity to accidental input
order (heuristic tie-breaking makes solvers notoriously order-sensitive),
and cleanup normalizations are handy before handing formulas around.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cnf.formula import CnfFormula


@dataclass
class VariableRenaming:
    """A bijective renaming: new_of[old] = new (1-based arrays)."""

    new_of: list[int]

    def apply_literal(self, lit: int) -> int:
        var = abs(lit)
        renamed = self.new_of[var]
        return renamed if lit > 0 else -renamed

    def translate_model(self, model: dict[int, bool]) -> dict[int, bool]:
        """Translate a model of the *renamed* formula back to the original."""
        return {old: model[self.new_of[old]] for old in range(1, len(self.new_of))}


def permute_variables(formula: CnfFormula, seed: int = 0) -> tuple[CnfFormula, VariableRenaming]:
    """Apply a random variable permutation; returns (formula, renaming)."""
    rng = random.Random(seed)
    order = list(range(1, formula.num_vars + 1))
    rng.shuffle(order)
    new_of = [0] * (formula.num_vars + 1)
    for new_index, old in enumerate(order, start=1):
        new_of[old] = new_index
    renaming = VariableRenaming(new_of)
    permuted = CnfFormula(formula.num_vars)
    for clause in formula:
        permuted.add_clause([renaming.apply_literal(lit) for lit in clause.literals])
    return permuted, renaming


def permute_clauses(formula: CnfFormula, seed: int = 0) -> tuple[CnfFormula, list[int]]:
    """Shuffle clause order; returns (formula, old_cid_of_new_position)."""
    rng = random.Random(seed)
    order = list(range(1, formula.num_clauses + 1))
    rng.shuffle(order)
    permuted = CnfFormula(formula.num_vars)
    for old_cid in order:
        permuted.add_clause(list(formula[old_cid].literals))
    return permuted, order


def flip_polarities(formula: CnfFormula, seed: int = 0) -> tuple[CnfFormula, set[int]]:
    """Negate a random subset of variables everywhere; returns the set.

    Satisfiability is preserved: flip the same variables in any model.
    """
    rng = random.Random(seed)
    flipped = {var for var in range(1, formula.num_vars + 1) if rng.random() < 0.5}
    transformed = CnfFormula(formula.num_vars)
    for clause in formula:
        transformed.add_clause(
            [-lit if abs(lit) in flipped else lit for lit in clause.literals]
        )
    return transformed, flipped


def scramble(formula: CnfFormula, seed: int = 0) -> CnfFormula:
    """All three shuffles composed — the standard benchmark scrambler."""
    permuted, _ = permute_variables(formula, seed=seed)
    flipped, _ = flip_polarities(permuted, seed=seed + 1)
    shuffled, _ = permute_clauses(flipped, seed=seed + 2)
    return shuffled


def remove_tautologies(formula: CnfFormula) -> CnfFormula:
    """Drop tautological clauses (and exact duplicate clauses)."""
    cleaned = CnfFormula(formula.num_vars)
    seen: set[frozenset[int]] = set()
    for clause in formula:
        if clause.is_tautology:
            continue
        key = frozenset(clause.literals)
        if key in seen:
            continue
        seen.add(key)
        cleaned.add_clause(list(clause.literals))
    return cleaned
