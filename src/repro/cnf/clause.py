"""Immutable clause objects with identity, as shared by solver and checkers.

The paper (§3.1) requires that the solver and the checker agree on clause
IDs: original clauses are numbered by their order of appearance in the
formula, learned clauses continue the numbering. ``Clause`` therefore
carries its ID alongside its literals.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Clause:
    """A disjunction of literals with a stable identity.

    Literals are stored deduplicated in a tuple; a clause containing both
    phases of some variable (a tautology) is representable but flagged, since
    tautologies can legitimately appear in inputs yet never in resolvents
    produced by conflict analysis.
    """

    __slots__ = ("cid", "literals", "learned")

    def __init__(self, cid: int, literals: Iterable[int], learned: bool = False):
        seen: dict[int, None] = {}
        for lit in literals:
            if lit == 0 or not isinstance(lit, int):
                raise ValueError(f"invalid literal {lit!r} in clause {cid}")
            seen.setdefault(lit, None)
        self.cid = cid
        self.literals: tuple[int, ...] = tuple(seen)
        self.learned = learned

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self) -> Iterator[int]:
        return iter(self.literals)

    def __contains__(self, lit: int) -> bool:
        return lit in self.literals

    def __eq__(self, other: object) -> bool:
        # The trace/checker contract is order-insensitive but duplicate-free:
        # ``literals`` is already deduplicated at construction, so the sorted
        # tuple is the canonical form (and what __hash__ must agree with).
        if not isinstance(other, Clause):
            return NotImplemented
        return self.cid == other.cid and sorted(self.literals) == sorted(other.literals)

    def __hash__(self) -> int:
        return hash((self.cid, tuple(sorted(self.literals))))

    def __repr__(self) -> str:
        kind = "L" if self.learned else "O"
        lits = " ".join(str(lit) for lit in self.literals)
        return f"Clause({kind}{self.cid}: {lits})"

    @property
    def is_empty(self) -> bool:
        """The empty clause — the root of an unsatisfiability proof."""
        return not self.literals

    @property
    def is_unit(self) -> bool:
        return len(self.literals) == 1

    @property
    def is_tautology(self) -> bool:
        lits = set(self.literals)
        return any(-lit in lits for lit in lits)

    def variables(self) -> set[int]:
        """Set of variable indices occurring in the clause."""
        return {abs(lit) for lit in self.literals}
