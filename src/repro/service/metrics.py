"""Service metrics: counters, gauges and bucketed histograms, no deps.

A long-lived checking service needs to say what its fleet is doing —
cache hit rates, queue depth, per-stage latency, how often the
degradation ladder fired — without pulling in a metrics client the
offline environment doesn't have. This is the minimal, thread-safe core
of one: three instrument types behind a registry, snapshotted to plain
JSON (``SERVICE_metrics.json``) that ``repro status --metrics`` renders.

Conventions: metric names are dotted paths (``cache.hits``,
``check.latency_s``); histograms carry fixed upper-bound buckets plus a
``+Inf`` overflow, cumulative style, so rates and quantile estimates can
be derived offline from any snapshot.
"""

from __future__ import annotations

import json
import os
import threading
from bisect import bisect_left

#: Default latency buckets (seconds): sub-millisecond cache hits through
#: multi-minute checks.
LATENCY_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0)


class Counter:
    """A monotonically increasing count (scheduler workers share these,
    so every update is taken under the instrument's own lock)."""

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go both ways (queue depth, workers busy)."""

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


class Histogram:
    """Observations binned into fixed upper-bound buckets.

    ``counts[i]`` is the number of observations ``<= bounds[i]``
    (non-cumulative per bin; the final bin is the ``+Inf`` overflow).
    ``sum`` and ``count`` make means and rates derivable from snapshots.
    """

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    def to_dict(self) -> dict:
        return {
            "buckets": {
                **{str(bound): count for bound, count in zip(self.bounds, self.counts)},
                "+Inf": self.counts[-1],
            },
            "sum": round(self.sum, 6),
            "count": self.count,
        }


class MetricsRegistry:
    """Owns every instrument; the single lock makes updates thread-safe.

    Instruments are created on first use (``registry.counter("cache.hits")``)
    so call sites never need registration boilerplate, and a snapshot
    always reflects whatever the service actually touched.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram(bounds))

    # -- convenience shorthands (the hot call sites) -------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A point-in-time JSON-ready view of every instrument."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: h.to_dict() for name, h in sorted(self._histograms.items())
                },
            }

    def write(self, path: str) -> None:
        """Atomically persist a snapshot (write-to-temp + rename).

        Metrics are observability, not state: the write is atomic (a
        reader never sees a torn snapshot) but deliberately *not* fsynced
        — losing the last snapshot to a power cut costs nothing, and the
        daemon writes these on a hot loop. This asymmetry with the journal
        and cache writers is the audited, intended outcome.
        """
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)


def render_snapshot(snapshot: dict) -> str:
    """Human-oriented rendering of a snapshot (``repro status --metrics``)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        lines += [f"  {name:<32} {value}" for name, value in counters.items()]
    if gauges:
        lines.append("gauges:")
        lines += [f"  {name:<32} {value:g}" for name, value in gauges.items()]
    if histograms:
        lines.append("histograms:")
        for name, data in histograms.items():
            count = data["count"]
            mean = data["sum"] / count if count else 0.0
            lines.append(f"  {name:<32} count={count} mean={mean:.4f}s")
            for bound, bucket_count in data["buckets"].items():
                if bucket_count:
                    lines.append(f"    <= {bound:<8} {bucket_count}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def load_snapshot(path: str) -> dict:
    """Read a snapshot written by :meth:`MetricsRegistry.write`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
