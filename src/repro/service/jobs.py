"""The durable job store: a JSONL journal with crash-safe replay.

Every queue mutation is one appended JSON line — a ``submit`` carrying
the whole job, or a ``state`` transition (PENDING → RUNNING → DONE /
FAILED). The journal is the *only* source of truth: reopening it replays
every line in order and reconstructs the queue exactly, so a SIGKILLed
daemon loses nothing but its in-flight attempt. Jobs found RUNNING at
replay time are the crashed daemon's orphans; they are requeued to
PENDING (with the requeue journaled too), which is what makes
"every submitted job reaches a terminal state" survive any number of
crash/restart cycles without duplicating completed work.

A torn final line (the crash happened mid-append) is skipped, not fatal:
losing the very last transition is indistinguishable from crashing just
before it.
"""

from __future__ import annotations

import enum
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path


class JobState(enum.Enum):
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"


#: States no further transition can leave.
TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED})


@dataclass
class Job:
    """One unit of checking work: artifact paths plus supervisor options."""

    job_id: str
    formula: str
    trace: str
    options: dict = field(default_factory=dict)
    state: JobState = JobState.PENDING
    dedup_key: str | None = None
    submitted_at: float = 0.0
    attempts: int = 0  # times this job entered RUNNING
    worker: str | None = None
    result: dict | None = None  # DONE/FAILED summary (verdict, timing, …)

    def to_json(self) -> dict:
        payload = {
            "job_id": self.job_id,
            "formula": self.formula,
            "trace": self.trace,
            "options": self.options,
            "submitted_at": self.submitted_at,
        }
        if self.dedup_key:
            payload["dedup_key"] = self.dedup_key
        return payload


class JobStore:
    """Journal-backed queue; every method is safe to call from any thread."""

    def __init__(
        self,
        journal_path: str | Path,
        fsync: bool = False,
        readonly: bool = False,
    ) -> None:
        """``readonly=True`` replays the journal without touching it — what
        ``repro status`` / ``repro results`` use, so observing the queue
        never requeues a live daemon's RUNNING jobs."""
        self.journal_path = Path(journal_path)
        self.readonly = readonly
        if not readonly:
            self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._next_serial = 1
        self.requeued_on_replay = 0
        self.torn_lines = 0
        self._handle = None
        self._replay()
        if readonly:
            return
        self._handle = open(self.journal_path, "a", encoding="utf-8")
        # Orphans of a crashed run: a RUNNING job has no owner anymore.
        # Requeue them — and journal the requeue, so a second replay agrees.
        for job in self._jobs.values():
            if job.state is JobState.RUNNING:
                job.state = JobState.PENDING
                job.worker = None
                self.requeued_on_replay += 1
                self._append({"event": "requeue", "job_id": job.job_id, "t": time.time()})

    # -- journal plumbing ----------------------------------------------------

    def _append(self, payload: dict) -> None:
        if self._handle is None:
            raise RuntimeError("job store opened readonly")
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def _replay(self) -> None:
        if not self.journal_path.exists():
            return
        with open(self.journal_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    self.torn_lines += 1
                    continue
                self._apply(payload)

    def _apply(self, payload: dict) -> None:
        event = payload.get("event")
        if event == "submit":
            data = payload.get("job", {})
            job = Job(
                job_id=data["job_id"],
                formula=data["formula"],
                trace=data["trace"],
                options=data.get("options", {}),
                dedup_key=data.get("dedup_key"),
                submitted_at=data.get("submitted_at", 0.0),
            )
            self._jobs[job.job_id] = job
            serial = _serial_of(job.job_id)
            if serial is not None and serial >= self._next_serial:
                self._next_serial = serial + 1
        elif event == "state":
            job = self._jobs.get(payload.get("job_id", ""))
            if job is None:
                return
            try:
                job.state = JobState(payload["state"])
            except (KeyError, ValueError):
                return
            if job.state is JobState.RUNNING:
                job.attempts += 1
                job.worker = payload.get("worker")
            else:
                job.worker = None
            if "result" in payload:
                job.result = payload["result"]
        elif event == "requeue":
            job = self._jobs.get(payload.get("job_id", ""))
            if job is not None and job.state is JobState.RUNNING:
                job.state = JobState.PENDING
                job.worker = None

    # -- queue API -----------------------------------------------------------

    def submit(
        self,
        formula: str | Path,
        trace: str | Path,
        options: dict | None = None,
        dedup_key: str | None = None,
    ) -> Job:
        """Append a new PENDING job; returns the existing live job instead
        when ``dedup_key`` matches one that is not FAILED (identical work
        submitted twice runs once)."""
        with self._lock:
            if dedup_key is not None:
                for existing in self._jobs.values():
                    if existing.dedup_key == dedup_key and existing.state is not JobState.FAILED:
                        return existing
            job = Job(
                job_id=f"job-{self._next_serial:06d}",
                formula=str(formula),
                trace=str(trace),
                options=dict(options or {}),
                dedup_key=dedup_key,
                submitted_at=time.time(),
            )
            self._next_serial += 1
            self._jobs[job.job_id] = job
            self._append({"event": "submit", "job": job.to_json(), "t": job.submitted_at})
            return job

    def claim(self, worker: str) -> Job | None:
        """Move the oldest PENDING job to RUNNING for ``worker``."""
        with self._lock:
            for job in self._jobs.values():  # dict preserves submit order
                if job.state is JobState.PENDING:
                    job.state = JobState.RUNNING
                    job.worker = worker
                    job.attempts += 1
                    self._append(
                        {
                            "event": "state",
                            "job_id": job.job_id,
                            "state": "RUNNING",
                            "worker": worker,
                            "t": time.time(),
                        }
                    )
                    return job
            return None

    def finish(self, job: Job, result: dict | None = None) -> None:
        self._transition(job, JobState.DONE, result)

    def fail(self, job: Job, result: dict | None = None) -> None:
        self._transition(job, JobState.FAILED, result)

    def _transition(self, job: Job, state: JobState, result: dict | None) -> None:
        with self._lock:
            if job.state in TERMINAL_STATES:
                raise ValueError(f"{job.job_id} is already {job.state.value}")
            job.state = state
            job.worker = None
            job.result = result
            payload = {
                "event": "state",
                "job_id": job.job_id,
                "state": state.value,
                "t": time.time(),
            }
            if result is not None:
                payload["result"] = result
            self._append(payload)

    # -- introspection -------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        tally = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            tally[job.state.value] += 1
        return tally

    @property
    def queue_depth(self) -> int:
        return sum(
            1 for job in self._jobs.values() if job.state is JobState.PENDING
        )

    @property
    def all_terminal(self) -> bool:
        return all(job.state in TERMINAL_STATES for job in self._jobs.values())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _serial_of(job_id: str) -> int | None:
    """Extract N from ``job-N`` IDs so replay resumes the serial counter."""
    prefix, _, digits = job_id.partition("-")
    if prefix == "job" and digits.isdigit():
        return int(digits)
    return None
