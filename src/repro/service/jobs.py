"""The durable job store: a JSONL journal with crash-safe replay.

Every queue mutation is one appended JSON line — a ``submit`` carrying
the whole job, or a ``state`` transition (PENDING → RUNNING → DONE /
FAILED / DEAD). The journal is the *only* source of truth: reopening it
replays every line in order and reconstructs the queue exactly, so a
SIGKILLed daemon loses nothing but its in-flight attempt. Jobs found
RUNNING at replay time are the crashed daemon's orphans; they are
requeued to PENDING (with the requeue journaled too), which is what makes
"every submitted job reaches a terminal state" survive any number of
crash/restart cycles without duplicating completed work.

A torn final line (the crash happened mid-append) is skipped, not fatal:
losing the very last transition is indistinguishable from crashing just
before it. Replay is also defensive about journal *content*: a duplicate
terminal record for the same job applies last-writer-wins, and a stale
RUNNING or requeue line arriving after a terminal record is ignored —
a job that reached DONE stays DONE no matter what trails it. Idempotent
resubmission leans on exactly that invariant.

**Poison-job quarantine**: a job whose attempts keep crashing the worker
that runs it is parked in the DEAD state (the dead-letter queue) instead
of being requeued forever — ``max_job_attempts`` RUNNING entries is the
budget. A DEAD job keeps its full attempt history, gets a dead-letter
file under ``jobs/dead/`` for operators, and only leaves the state via
an explicit ``requeue`` (``repro requeue <job-id>``).

For scale-out, :class:`ShardedJobStore` splits the journal into
``num_shards`` independent JSONL files keyed by content fingerprint, so
two scheduler instances owning disjoint shards drain one logical queue
with no shared file and no cross-process locking.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults

#: Journal appends and replay are where durability lives; the dead-letter
#: file is the operator-facing artifact of quarantine.
FP_JOURNAL_APPEND = faults.register_fault_point(
    "jobs.journal.append", writes=True,
    doc="one JSONL line into the job journal (key = event name)",
)
FP_JOURNAL_REPLAY = faults.register_fault_point(
    "jobs.journal.replay",
    doc="journal replay at store open (before any line is applied)",
)
FP_DEAD_LETTER = faults.register_fault_point(
    "jobs.dead_letter.write", writes=True,
    doc="the dead-letter file written when a poison job is parked",
)


class JobState(enum.Enum):
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    #: Dead-lettered: crashed/timed out its worker too many times. Parked
    #: until an operator requeues it; never retried automatically.
    DEAD = "DEAD"


#: States no further transition can leave (DEAD *can* be left, but only
#: via an explicit requeue — it is settled, not active).
TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED})

#: States in which the queue owes the job no further work.
SETTLED_STATES = frozenset({JobState.DONE, JobState.FAILED, JobState.DEAD})

#: RUNNING entries a job may accumulate before quarantine parks it.
DEFAULT_MAX_JOB_ATTEMPTS = 3


def fsync_dir(path: str | Path) -> None:
    """Best-effort fsync of a directory, making a rename/creat durable.

    ``os.replace`` guarantees atomicity, not persistence — until the
    parent directory is synced, a power loss can forget the rename ever
    happened. Failure is swallowed: not every filesystem lets you open a
    directory, and durability hardening must never become a crash.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass
class Job:
    """One unit of checking work: artifact paths plus supervisor options."""

    job_id: str
    formula: str
    trace: str
    options: dict = field(default_factory=dict)
    state: JobState = JobState.PENDING
    dedup_key: str | None = None
    submitted_at: float = 0.0
    attempts: int = 0  # times this job entered RUNNING
    worker: str | None = None
    claimed_at: float = 0.0  # journal time of the latest RUNNING entry
    result: dict | None = None  # DONE/FAILED/DEAD summary (verdict, error, …)
    #: One entry per RUNNING attempt, error details merged in when the
    #: attempt ends badly — rebuilt from the journal on replay, so the
    #: history of a poison job survives any number of restarts.
    attempt_history: list[dict] = field(default_factory=list)

    def to_json(self) -> dict:
        payload = {
            "job_id": self.job_id,
            "formula": self.formula,
            "trace": self.trace,
            "options": self.options,
            "submitted_at": self.submitted_at,
        }
        if self.dedup_key:
            payload["dedup_key"] = self.dedup_key
        return payload


class JobStore:
    """Journal-backed queue; every method is safe to call from any thread."""

    def __init__(
        self,
        journal_path: str | Path,
        fsync: bool = False,
        readonly: bool = False,
        id_prefix: str = "",
        max_job_attempts: int = DEFAULT_MAX_JOB_ATTEMPTS,
        dead_letter_dir: str | Path | None = None,
    ) -> None:
        """``readonly=True`` replays the journal without touching it — what
        ``repro status`` / ``repro results`` use, so observing the queue
        never requeues a live daemon's RUNNING jobs. ``id_prefix`` namespaces
        job IDs (``job-s1-000001``) so shards never mint colliding IDs.
        ``max_job_attempts`` is the poison-job budget: an orphaned RUNNING
        job that already burned that many attempts is parked DEAD at replay
        instead of being requeued into another crash loop."""
        self.journal_path = Path(journal_path)
        self.readonly = readonly
        if not readonly:
            self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._next_serial = 1
        self._id_prefix = id_prefix
        self.max_job_attempts = max(1, max_job_attempts)
        self.dead_letter_dir = Path(dead_letter_dir) if dead_letter_dir else None
        self._listeners: list[Callable[[], None]] = []
        self.requeued_on_replay = 0
        self.parked_on_replay = 0
        self.torn_lines = 0
        self._handle = None
        self._replay()
        if readonly:
            return
        journal_existed = self.journal_path.exists()
        if journal_existed:
            self._terminate_torn_tail()
        self._handle = open(self.journal_path, "a", encoding="utf-8")
        if not journal_existed:
            # Make the journal's very existence durable: an empty file that
            # vanishes in a power loss silently forgets the whole queue.
            fsync_dir(self.journal_path.parent)
        # Orphans of a crashed run: a RUNNING job has no owner anymore.
        # Requeue them — and journal the requeue, so a second replay agrees.
        # A job that already burned its attempt budget is a poison job:
        # park it DEAD instead of feeding it back into the crash loop.
        for job in self._jobs.values():
            if job.state is JobState.RUNNING:
                if job.attempts >= self.max_job_attempts:
                    self._park_locked(
                        job,
                        {
                            "error": (
                                f"requeue budget exhausted: {job.attempts} "
                                f"attempt(s) ended in a crashed or killed worker"
                            )
                        },
                    )
                    self.parked_on_replay += 1
                else:
                    job.state = JobState.PENDING
                    job.worker = None
                    self.requeued_on_replay += 1
                    self._append(
                        {"event": "requeue", "job_id": job.job_id, "t": time.time()}
                    )

    # -- journal plumbing ----------------------------------------------------

    def _append(self, payload: dict) -> None:
        if self._handle is None:
            raise RuntimeError("job store opened readonly")
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        faults.fault_write(
            FP_JOURNAL_APPEND, self._handle, line + "\n", key=payload.get("event")
        )
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def _terminate_torn_tail(self) -> None:
        """Isolate a torn final line before appending after it.

        A crash mid-append can leave the journal without a trailing
        newline; blindly appending would glue the next record onto the
        torn tail, corrupting a *good* record to pay for a bad one. A
        single newline quarantines the tear as one undecodable line that
        replay already counts and skips.
        """
        try:
            with open(self.journal_path, "rb+") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
        except OSError:
            pass

    def _replay(self) -> None:
        if not self.journal_path.exists():
            return
        faults.fault_point(FP_JOURNAL_REPLAY)
        with open(self.journal_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    self.torn_lines += 1
                    continue
                self._apply(payload)

    def _apply(self, payload: dict) -> None:
        event = payload.get("event")
        if event == "submit":
            data = payload.get("job", {})
            job = Job(
                job_id=data["job_id"],
                formula=data["formula"],
                trace=data["trace"],
                options=data.get("options", {}),
                dedup_key=data.get("dedup_key"),
                submitted_at=data.get("submitted_at", 0.0),
            )
            self._jobs[job.job_id] = job
            serial = _serial_of(job.job_id)
            if serial is not None and serial >= self._next_serial:
                self._next_serial = serial + 1
        elif event == "state":
            job = self._jobs.get(payload.get("job_id", ""))
            if job is None:
                return
            try:
                state = JobState(payload["state"])
            except (KeyError, ValueError):
                return
            if state is JobState.RUNNING:
                if job.state in SETTLED_STATES:
                    # A stale RUNNING after a terminal record (duplicate
                    # delivery, interleaved writers): the verdict stands.
                    return
                job.state = state
                job.attempts += 1
                job.worker = payload.get("worker")
                job.claimed_at = payload.get("t", 0.0)
                job.attempt_history.append(
                    {
                        "attempt": job.attempts,
                        "worker": job.worker,
                        "t": job.claimed_at,
                    }
                )
            else:
                # Terminal records apply last-writer-wins — a duplicate
                # DONE, or a FAILED after a DONE, never corrupts replay.
                job.state = state
                job.worker = None
                if "result" in payload:
                    job.result = payload["result"]
                if state in (JobState.FAILED, JobState.DEAD):
                    error = (payload.get("result") or {}).get("error")
                    if error and job.attempt_history:
                        job.attempt_history[-1].setdefault("error", error)
        elif event == "requeue":
            job = self._jobs.get(payload.get("job_id", ""))
            if job is None:
                return
            if job.state is JobState.RUNNING or job.state in (
                JobState.DEAD,
                JobState.FAILED,
            ):
                # Orphan requeue (RUNNING) or operator requeue (DEAD /
                # FAILED). DONE is never requeued: completed work stays
                # completed even if a stale requeue line trails it.
                job.state = JobState.PENDING
                job.worker = None

    # -- queue API -----------------------------------------------------------

    def add_listener(self, callback: Callable[[], None]) -> None:
        """Register a wakeup hook fired (outside the store lock) after every
        submit — the event-driven scheduler's alternative to queue polling."""
        self._listeners.append(callback)

    def _notify(self) -> None:
        for callback in self._listeners:
            callback()

    def submit(
        self,
        formula: str | Path,
        trace: str | Path,
        options: dict | None = None,
        dedup_key: str | None = None,
    ) -> Job:
        """Append a new PENDING job; returns the existing job instead when
        ``dedup_key`` matches one that is not FAILED — identical work
        submitted twice runs once, and a resubmit of an in-flight,
        completed, or dead-lettered job is idempotent (a DEAD job needs an
        explicit requeue, not a shadow duplicate)."""
        with self._lock:
            if dedup_key is not None:
                for existing in self._jobs.values():
                    if existing.dedup_key == dedup_key and existing.state is not JobState.FAILED:
                        return existing
            job = Job(
                job_id=f"job-{self._id_prefix}{self._next_serial:06d}",
                formula=str(formula),
                trace=str(trace),
                options=dict(options or {}),
                dedup_key=dedup_key,
                submitted_at=time.time(),
            )
            self._next_serial += 1
            self._jobs[job.job_id] = job
            self._append({"event": "submit", "job": job.to_json(), "t": job.submitted_at})
        self._notify()
        return job

    def claim(self, worker: str) -> Job | None:
        """Move the oldest PENDING job to RUNNING for ``worker``."""
        with self._lock:
            for job in self._jobs.values():  # dict preserves submit order
                if job.state is JobState.PENDING:
                    job.state = JobState.RUNNING
                    job.worker = worker
                    job.attempts += 1
                    job.claimed_at = time.time()
                    job.attempt_history.append(
                        {"attempt": job.attempts, "worker": worker, "t": job.claimed_at}
                    )
                    self._append(
                        {
                            "event": "state",
                            "job_id": job.job_id,
                            "state": "RUNNING",
                            "worker": worker,
                            "t": job.claimed_at,
                        }
                    )
                    return job
            return None

    def finish(self, job: Job, result: dict | None = None) -> None:
        self._transition(job, JobState.DONE, result)

    def fail(self, job: Job, result: dict | None = None) -> None:
        self._transition(job, JobState.FAILED, result)

    def park(self, job: Job, result: dict | None = None) -> None:
        """Dead-letter ``job``: journal the DEAD state and write the
        operator-facing dead-letter file with the full attempt history."""
        with self._lock:
            self._park_locked(job, result)

    def _park_locked(self, job: Job, result: dict | None) -> None:
        if job.state in TERMINAL_STATES:
            raise ValueError(f"{job.job_id} is already {job.state.value}")
        error = (result or {}).get("error")
        if error and job.attempt_history:
            job.attempt_history[-1].setdefault("error", error)
        job.state = JobState.DEAD
        job.worker = None
        job.result = result
        payload = {
            "event": "state",
            "job_id": job.job_id,
            "state": "DEAD",
            "t": time.time(),
        }
        if result is not None:
            payload["result"] = result
        self._append(payload)
        self._write_dead_letter(job)

    def _write_dead_letter(self, job: Job) -> None:
        """Persist the quarantined job for operators (`repro status --dead`).

        Informational but precious: it carries the attempt history an
        operator needs before deciding to requeue. Atomic + fsynced, and
        never fatal — the journal already holds the authoritative state.
        """
        if self.dead_letter_dir is None:
            return
        try:
            self.dead_letter_dir.mkdir(parents=True, exist_ok=True)
            path = self.dead_letter_dir / f"{job.job_id}.json"
            tmp = f"{path}.tmp"
            payload = {
                "job": job.to_json(),
                "attempts": job.attempts,
                "attempt_history": job.attempt_history,
                "result": job.result,
                "parked_at": time.time(),
            }
            with open(tmp, "w", encoding="utf-8") as handle:
                faults.fault_write(
                    FP_DEAD_LETTER,
                    handle,
                    json.dumps(payload, indent=2, sort_keys=True) + "\n",
                )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            fsync_dir(self.dead_letter_dir)
        except OSError:
            pass

    def requeue(self, job_id: str) -> Job | None:
        """RUNNING/DEAD/FAILED → PENDING, journaled; ``None`` if the job is
        unknown or in a state requeueing makes no sense for (DONE stays
        DONE, PENDING is already queued). Requeueing a DEAD job resets
        nothing except the state — the attempt history stays, but the
        attempt budget applies to *future* crashes only (the operator
        asked for another round, so they get a full one)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state in (JobState.PENDING, JobState.DONE):
                return None
            was_dead = job.state is JobState.DEAD
            job.state = JobState.PENDING
            job.worker = None
            if was_dead:
                # A fresh budget for the operator-requested retry round.
                job.attempts = 0
            self._append({"event": "requeue", "job_id": job_id, "t": time.time()})
            if was_dead and self.dead_letter_dir is not None:
                try:
                    os.unlink(self.dead_letter_dir / f"{job_id}.json")
                except OSError:
                    pass
        self._notify()
        return job

    def _transition(self, job: Job, state: JobState, result: dict | None) -> None:
        with self._lock:
            if job.state in TERMINAL_STATES:
                raise ValueError(f"{job.job_id} is already {job.state.value}")
            if state is JobState.FAILED:
                error = (result or {}).get("error")
                if error and job.attempt_history:
                    job.attempt_history[-1].setdefault("error", error)
            job.state = state
            job.worker = None
            job.result = result
            payload = {
                "event": "state",
                "job_id": job.job_id,
                "state": state.value,
                "t": time.time(),
            }
            if result is not None:
                payload["result"] = result
            self._append(payload)

    # -- introspection -------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    def dead_jobs(self) -> list[Job]:
        return [job for job in self._jobs.values() if job.state is JobState.DEAD]

    def counts(self) -> dict[str, int]:
        tally = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            tally[job.state.value] += 1
        return tally

    @property
    def queue_depth(self) -> int:
        return sum(
            1 for job in self._jobs.values() if job.state is JobState.PENDING
        )

    @property
    def all_terminal(self) -> bool:
        return all(job.state in SETTLED_STATES for job in self._jobs.values())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _serial_of(job_id: str) -> int | None:
    """Extract N from ``job-N`` / ``job-sK-N`` IDs so replay resumes the
    serial counter (the shard prefix, when present, is ignored)."""
    if not job_id.startswith("job-"):
        return None
    digits = job_id.rsplit("-", 1)[-1]
    if digits.isdigit():
        return int(digits)
    return None


# -- sharding ------------------------------------------------------------------


def shard_of(key: str, num_shards: int) -> int:
    """Deterministically map a content key to a shard index.

    ``key`` is normally the hex ``job_key`` fingerprint; arbitrary strings
    are hashed first so routing never depends on key format.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if num_shards == 1:
        return 0
    try:
        bucket = int(key[:16], 16)
    except ValueError:
        bucket = int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")
    return bucket % num_shards


def shard_journal_name(shard: int, num_shards: int, basename: str = "journal") -> str:
    """Journal filename for one shard; the single-shard layout keeps the
    historical ``journal.jsonl`` name so existing spools stay readable."""
    if num_shards == 1:
        return f"{basename}.jsonl"
    return f"{basename}-{shard:02d}-of-{num_shards:02d}.jsonl"


def discover_shard_journals(root: str | Path, basename: str = "journal") -> list[Path]:
    """Every shard journal present under ``root``, single-file layout included."""
    root = Path(root)
    found = []
    single = root / f"{basename}.jsonl"
    if single.is_file():
        found.append(single)
    found.extend(sorted(root.glob(f"{basename}-??-of-??.jsonl")))
    return found


class ShardedJobStore:
    """N independent JSONL journals presenting one JobStore-shaped queue.

    Jobs are routed to ``shard_of(dedup_key)``; a store instance only opens
    the shards it *owns*, so two scheduler processes with disjoint ``owned``
    sets share a spool with zero write contention — each journal file has
    exactly one writer. ``num_shards=1`` degenerates to the classic single
    ``journal.jsonl`` (same file, same semantics).
    """

    def __init__(
        self,
        root: str | Path,
        num_shards: int = 1,
        owned: Iterable[int] | None = None,
        fsync: bool = False,
        readonly: bool = False,
        basename: str = "journal",
        max_job_attempts: int = DEFAULT_MAX_JOB_ATTEMPTS,
        dead_letter_dir: str | Path | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.root = Path(root)
        self.num_shards = num_shards
        self.owned = tuple(sorted(set(owned))) if owned is not None else tuple(range(num_shards))
        if not self.owned:
            raise ValueError("a store must own at least one shard")
        bad = [shard for shard in self.owned if not 0 <= shard < num_shards]
        if bad:
            raise ValueError(f"shard index out of range: {bad} (num_shards={num_shards})")
        self.readonly = readonly
        self.max_job_attempts = max(1, max_job_attempts)
        if dead_letter_dir is None:
            dead_letter_dir = self.root / "jobs" / "dead"
        self.dead_letter_dir = Path(dead_letter_dir)
        self._shards: dict[int, JobStore] = {}
        for shard in self.owned:
            prefix = f"s{shard}-" if num_shards > 1 else ""
            self._shards[shard] = JobStore(
                self.root / shard_journal_name(shard, num_shards, basename),
                fsync=fsync,
                readonly=readonly,
                id_prefix=prefix,
                max_job_attempts=max_job_attempts,
                dead_letter_dir=None if readonly else self.dead_letter_dir,
            )
        self._claim_rr = 0
        self._claim_lock = threading.Lock()

    # -- routing -------------------------------------------------------------

    def owns(self, key: str) -> bool:
        return shard_of(key, self.num_shards) in self._shards

    def shard_for(self, key: str) -> int:
        return shard_of(key, self.num_shards)

    @staticmethod
    def _fallback_key(formula: str | Path, trace: str | Path, options: dict | None) -> str:
        canonical = json.dumps(
            {"formula": str(formula), "trace": str(trace), "options": options or {}},
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- JobStore API --------------------------------------------------------

    def add_listener(self, callback: Callable[[], None]) -> None:
        for store in self._shards.values():
            store.add_listener(callback)

    def submit(
        self,
        formula: str | Path,
        trace: str | Path,
        options: dict | None = None,
        dedup_key: str | None = None,
    ) -> Job:
        key = dedup_key if dedup_key is not None else self._fallback_key(formula, trace, options)
        shard = shard_of(key, self.num_shards)
        store = self._shards.get(shard)
        if store is None:
            raise ValueError(
                f"job routes to shard {shard} which this store does not own "
                f"(owned: {list(self._shards)})"
            )
        return store.submit(formula, trace, options, dedup_key=dedup_key)

    def claim(self, worker: str) -> Job | None:
        """Claim from owned shards, rotating the starting shard for fairness."""
        with self._claim_lock:
            order = list(self._shards.values())
            start = self._claim_rr % len(order)
            self._claim_rr += 1
        for offset in range(len(order)):
            job = order[(start + offset) % len(order)].claim(worker)
            if job is not None:
                return job
        return None

    def finish(self, job: Job, result: dict | None = None) -> None:
        self._store_of(job).finish(job, result)

    def fail(self, job: Job, result: dict | None = None) -> None:
        self._store_of(job).fail(job, result)

    def park(self, job: Job, result: dict | None = None) -> None:
        self._store_of(job).park(job, result)

    def requeue(self, job_id: str) -> Job | None:
        for store in self._shards.values():
            if job_id in store._jobs:
                return store.requeue(job_id)
        return None

    def _store_of(self, job: Job) -> JobStore:
        for store in self._shards.values():
            if job.job_id in store._jobs:
                return store
        raise ValueError(f"{job.job_id} belongs to no owned shard")

    def get(self, job_id: str) -> Job | None:
        for store in self._shards.values():
            job = store.get(job_id)
            if job is not None:
                return job
        return None

    def jobs(self) -> list[Job]:
        merged = [job for store in self._shards.values() for job in store.jobs()]
        merged.sort(key=lambda job: (job.submitted_at, job.job_id))
        return merged

    def dead_jobs(self) -> list[Job]:
        merged = [job for store in self._shards.values() for job in store.dead_jobs()]
        merged.sort(key=lambda job: (job.submitted_at, job.job_id))
        return merged

    def counts(self) -> dict[str, int]:
        tally = {state.value: 0 for state in JobState}
        for store in self._shards.values():
            for state, count in store.counts().items():
                tally[state] += count
        return tally

    @property
    def queue_depth(self) -> int:
        return sum(store.queue_depth for store in self._shards.values())

    @property
    def all_terminal(self) -> bool:
        return all(store.all_terminal for store in self._shards.values())

    @property
    def requeued_on_replay(self) -> int:
        return sum(store.requeued_on_replay for store in self._shards.values())

    @property
    def parked_on_replay(self) -> int:
        return sum(store.parked_on_replay for store in self._shards.values())

    @property
    def torn_lines(self) -> int:
        return sum(store.torn_lines for store in self._shards.values())

    def close(self) -> None:
        for store in self._shards.values():
            store.close()

    def __enter__(self) -> "ShardedJobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
