"""The library front door: cache-aware checking for embedders.

``ServiceClient.check`` is :func:`repro.checker.supervised_check` with a
memory: fingerprint the inputs, consult the verdict cache, replay
resolution only on a miss, and persist the fresh verdict for next time.
The experiments harness routes through this, so re-running an ablation
suite re-checks nothing that already has a verdict.

What gets cached: verified reports, and failures that are *verdicts
about the proof* (a bad resolution is a bad resolution forever). Resource
failures — timeout, memory-out, worker-crash — depend on the machine and
the budgets of the moment, not on the content, so they are never cached;
DEGRADABLE_KINDS (the supervisor's own notion of "resource problem, not
proof problem") is exactly that set.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.checker.report import CheckReport
from repro.checker.supervisor import DEGRADABLE_KINDS, supervised_check
from repro.cnf import CnfFormula, parse_dimacs_file
from repro.trace.records import Trace

from repro.service.cache import VerdictCache
from repro.service.fingerprint import (
    fingerprint_formula,
    fingerprint_options,
    fingerprint_trace,
    job_key,
)
from repro.trace.fingerprint import sha256_file
from repro.service.metrics import MetricsRegistry


class ServiceClient:
    """Checks with a verdict cache in front of the supervisor.

    ``use_cache=False`` (the ``--no-cache`` escape hatch) skips both
    lookup and store; ``refresh=True`` (``--refresh``) skips the lookup
    but overwrites the entry, forcing one honest recomputation.
    """

    def __init__(
        self,
        cache: VerdictCache | None = None,
        metrics: MetricsRegistry | None = None,
        use_cache: bool = True,
        refresh: bool = False,
    ) -> None:
        if metrics is None:
            metrics = cache.metrics if cache is not None else MetricsRegistry()
        self.cache = cache
        self.metrics = metrics
        self.use_cache = use_cache and cache is not None
        self.refresh = refresh

    def check(
        self,
        formula: CnfFormula | str | Path,
        trace_source: str | Path | Trace,
        **options,
    ) -> CheckReport:
        """Supervised check with cache lookup/store around it.

        The formula is always fingerprinted from its parsed, canonical
        form — the same formula hits the same cache line whether it
        arrived as a DIMACS path or an in-memory object.
        """
        if not isinstance(formula, CnfFormula):
            formula = parse_dimacs_file(formula)

        started = time.perf_counter()
        fingerprint = self.fingerprint(formula, trace_source, options)

        cached = self.cache_lookup(fingerprint)
        if cached is not None:
            self.metrics.observe("check.latency_s", time.perf_counter() - started)
            return cached

        report = supervised_check(
            formula, trace_source, fingerprint=fingerprint, **options
        )
        self.metrics.observe("check.latency_s", time.perf_counter() - started)
        self.account(report)
        self.cache_store(fingerprint, report)
        return report

    # -- the pieces the scheduler composes itself ----------------------------

    def fingerprint(
        self,
        formula: CnfFormula | str | Path,
        trace_source: str | Path | Trace,
        options: dict,
    ) -> dict:
        """All four content digests for one prospective check.

        A parsed formula hashes canonically; a path hashes the file bytes
        (cheaper, and just as binding — the parse is deterministic).
        """
        started = time.perf_counter()
        if isinstance(formula, CnfFormula):
            formula_sha = fingerprint_formula(formula)
        else:
            formula_sha = sha256_file(formula)
        fingerprint = {
            "formula_sha256": formula_sha,
            "trace_sha256": fingerprint_trace(trace_source),
            "options_sha256": fingerprint_options(options),
        }
        fingerprint["key"] = job_key(
            fingerprint["formula_sha256"],
            fingerprint["trace_sha256"],
            fingerprint["options_sha256"],
        )
        self.metrics.observe("fingerprint.latency_s", time.perf_counter() - started)
        return fingerprint

    def cache_lookup(self, fingerprint: dict) -> CheckReport | None:
        """Cached verdict for ``fingerprint`` — honoring use_cache/refresh."""
        if not self.use_cache or self.refresh:
            return None
        assert self.cache is not None
        return self.cache.get(fingerprint)

    def cache_store(self, fingerprint: dict, report: CheckReport) -> None:
        """Persist a fresh verdict when it is content (not a resource blip)."""
        if self.use_cache and self._cacheable(report):
            assert self.cache is not None
            self.cache.put(fingerprint, report)

    def flush_cache(self) -> None:
        """Force any batched cache writes to disk (drain/shutdown path)."""
        if self.cache is not None:
            self.cache.flush()

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _cacheable(report: CheckReport) -> bool:
        if report.verified:
            return True
        return report.failure is not None and report.failure.kind not in DEGRADABLE_KINDS

    def account(self, report: CheckReport) -> None:
        """Fleet-level counters out of one report's self-description."""
        if report.prune is not None:
            self.metrics.inc("check.pruned")
            self.metrics.inc("check.pruned_lemmas", report.prune.get("skipped", 0))
        attempts = report.degradation or ()
        if len(attempts) > 1:
            self.metrics.inc("supervisor.degradations")
            self.metrics.inc("supervisor.ladder_rungs", len(attempts) - 1)
        for event in report.recovery or ():
            self.metrics.inc("worker.recovery_events")
            if event.get("event") in ("retry", "retries-exhausted"):
                self.metrics.inc("worker.crashes")
