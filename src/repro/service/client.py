"""The library front door: cache-aware checking for embedders.

``ServiceClient.check`` is :func:`repro.checker.supervised_check` with a
memory: fingerprint the inputs, consult the verdict cache, replay
resolution only on a miss, and persist the fresh verdict for next time.
The experiments harness routes through this, so re-running an ablation
suite re-checks nothing that already has a verdict.

What gets cached: verified reports, and failures that are *verdicts
about the proof* (a bad resolution is a bad resolution forever). Resource
failures — timeout, memory-out, worker-crash — depend on the machine and
the budgets of the moment, not on the content, so they are never cached;
DEGRADABLE_KINDS (the supervisor's own notion of "resource problem, not
proof problem") is exactly that set.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from pathlib import Path

from repro.checker.report import CheckReport
from repro.checker.supervisor import DEGRADABLE_KINDS, supervised_check
from repro.cnf import CnfFormula, parse_dimacs_file
from repro.trace.records import Trace

from repro.service.cache import VerdictCache
from repro.service.fingerprint import (
    fingerprint_formula,
    fingerprint_options,
    fingerprint_trace,
    job_key,
)
from repro.trace.fingerprint import sha256_file
from repro.service.metrics import MetricsRegistry


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient service operations.

    Delay before retry ``n`` (0-based) is ``base_delay_s * 2**n`` capped at
    ``max_delay_s``, stretched by up to ``jitter`` (a fraction) of random
    spread so a thundering herd of clients decorrelates. ``seed`` pins the
    jitter for deterministic tests; production leaves it ``None``.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.2
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def delays(self):
        """The sleep before each retry (``max_attempts - 1`` values)."""
        rng = random.Random(self.seed)
        for attempt in range(self.max_attempts - 1):
            delay = min(self.max_delay_s, self.base_delay_s * (2 ** attempt))
            yield delay * (1.0 + self.jitter * rng.random())


#: What a submission retry treats as transient. Everything else (a missing
#: artifact, a malformed option) is deterministic and retrying it is noise.
TRANSIENT_ERRORS = (OSError,)


def call_with_retries(
    operation,
    policy: RetryPolicy | None = None,
    retry_on: tuple = TRANSIENT_ERRORS,
    give_up_on: tuple = (),
    metrics: MetricsRegistry | None = None,
    sleep=time.sleep,
):
    """Run ``operation()`` under ``policy``; re-raise after the last attempt.

    ``give_up_on`` carves deterministic failures out of ``retry_on`` (e.g.
    ``FileNotFoundError`` out of ``OSError``) — those re-raise immediately.
    Only use this around operations that are idempotent or content-keyed —
    the service's submission path is (identical work dedups at ingest), so
    retrying an *ambiguous* failure can cost a duplicate job file but never
    a duplicate execution.
    """
    policy = policy or RetryPolicy()
    delays = list(policy.delays())
    attempt = 0
    while True:
        try:
            return operation()
        except retry_on as exc:
            if give_up_on and isinstance(exc, give_up_on):
                raise
            if attempt >= len(delays):
                raise
            if metrics is not None:
                metrics.inc("client.retries")
            sleep(delays[attempt])
            attempt += 1


class ServiceClient:
    """Checks with a verdict cache in front of the supervisor.

    ``use_cache=False`` (the ``--no-cache`` escape hatch) skips both
    lookup and store; ``refresh=True`` (``--refresh``) skips the lookup
    but overwrites the entry, forcing one honest recomputation.
    """

    def __init__(
        self,
        cache: VerdictCache | None = None,
        metrics: MetricsRegistry | None = None,
        use_cache: bool = True,
        refresh: bool = False,
        retry: RetryPolicy | None = None,
    ) -> None:
        if metrics is None:
            metrics = cache.metrics if cache is not None else MetricsRegistry()
        self.cache = cache
        self.metrics = metrics
        self.use_cache = use_cache and cache is not None
        self.refresh = refresh
        self.retry = retry or RetryPolicy()

    def submit(
        self,
        spool: str | Path,
        formula: str | Path,
        trace: str | Path,
        options: dict | None = None,
    ) -> Path:
        """Submit one job to a daemon spool, retrying transient failures.

        Retries (exponential backoff + jitter per :attr:`retry`) cover the
        IO-shaped failures of a busy spool — a full disk clearing, an NFS
        hiccup, a daemon mid-restart. Resubmission is **idempotent**: jobs
        are keyed by content fingerprint at ingest, so a retry after an
        ambiguous failure (the job file landed but the error surfaced
        anyway) dedups against the first copy instead of running twice;
        missing artifacts stay fatal on the first attempt.
        """
        from repro.service.daemon import submit_job

        return call_with_retries(
            lambda: submit_job(spool, formula, trace, options),
            policy=self.retry,
            give_up_on=(FileNotFoundError,),
            metrics=self.metrics,
        )

    def check(
        self,
        formula: CnfFormula | str | Path,
        trace_source: str | Path | Trace,
        **options,
    ) -> CheckReport:
        """Supervised check with cache lookup/store around it.

        The formula is always fingerprinted from its parsed, canonical
        form — the same formula hits the same cache line whether it
        arrived as a DIMACS path or an in-memory object.
        """
        if not isinstance(formula, CnfFormula):
            formula = parse_dimacs_file(formula)

        started = time.perf_counter()
        fingerprint = self.fingerprint(formula, trace_source, options)

        cached = self.cache_lookup(fingerprint)
        if cached is not None:
            self.metrics.observe("check.latency_s", time.perf_counter() - started)
            return cached

        report = supervised_check(
            formula, trace_source, fingerprint=fingerprint, **options
        )
        self.metrics.observe("check.latency_s", time.perf_counter() - started)
        self.account(report)
        self.cache_store(fingerprint, report)
        return report

    # -- the pieces the scheduler composes itself ----------------------------

    def fingerprint(
        self,
        formula: CnfFormula | str | Path,
        trace_source: str | Path | Trace,
        options: dict,
    ) -> dict:
        """All four content digests for one prospective check.

        A parsed formula hashes canonically; a path hashes the file bytes
        (cheaper, and just as binding — the parse is deterministic).
        """
        started = time.perf_counter()
        if isinstance(formula, CnfFormula):
            formula_sha = fingerprint_formula(formula)
        else:
            formula_sha = sha256_file(formula)
        fingerprint = {
            "formula_sha256": formula_sha,
            "trace_sha256": fingerprint_trace(trace_source),
            "options_sha256": fingerprint_options(options),
        }
        fingerprint["key"] = job_key(
            fingerprint["formula_sha256"],
            fingerprint["trace_sha256"],
            fingerprint["options_sha256"],
        )
        self.metrics.observe("fingerprint.latency_s", time.perf_counter() - started)
        return fingerprint

    def cache_lookup(self, fingerprint: dict) -> CheckReport | None:
        """Cached verdict for ``fingerprint`` — honoring use_cache/refresh."""
        if not self.use_cache or self.refresh:
            return None
        assert self.cache is not None
        return self.cache.get(fingerprint)

    def cache_store(self, fingerprint: dict, report: CheckReport) -> None:
        """Persist a fresh verdict when it is content (not a resource blip).

        A failed store (disk full, injected fault) is counted and swallowed:
        the verdict is already computed and the cache must never turn a
        successful check into a failure. Batched caches keep the entry
        buffered, so a later flush usually lands it anyway.
        """
        if self.use_cache and self._cacheable(report):
            assert self.cache is not None
            try:
                self.cache.put(fingerprint, report)
            except (OSError, RuntimeError):
                self.metrics.inc("cache.store_errors")

    def flush_cache(self) -> None:
        """Force any batched cache writes to disk (drain/shutdown path).

        Same contract as :meth:`cache_store`: errors are counted, never
        raised — entries stay buffered for the next attempt.
        """
        if self.cache is not None:
            try:
                self.cache.flush()
            except (OSError, RuntimeError):
                self.metrics.inc("cache.store_errors")

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _cacheable(report: CheckReport) -> bool:
        if report.verified:
            return True
        return report.failure is not None and report.failure.kind not in DEGRADABLE_KINDS

    def account(self, report: CheckReport) -> None:
        """Fleet-level counters out of one report's self-description."""
        if report.prune is not None:
            self.metrics.inc("check.pruned")
            self.metrics.inc("check.pruned_lemmas", report.prune.get("skipped", 0))
        attempts = report.degradation or ()
        if len(attempts) > 1:
            self.metrics.inc("supervisor.degradations")
            self.metrics.inc("supervisor.ladder_rungs", len(attempts) - 1)
        for event in report.recovery or ():
            self.metrics.inc("worker.recovery_events")
            if event.get("event") in ("retry", "retries-exhausted"):
                self.metrics.inc("worker.crashes")
