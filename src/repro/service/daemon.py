"""The spool-directory daemon behind ``repro serve`` / ``submit`` / ``status``.

A spool directory is the whole wire protocol — no broker, nothing the
offline environment lacks:

.. code-block:: text

    spool/
      incoming/              job files dropped by `repro submit` (atomic rename in)
      accepted/              job files after pickup (atomic rename out of incoming)
      journal.jsonl          the JobStore journal (single-shard source of truth)
      journal-KK-of-NN.jsonl sharded journals (multi-instance deployments)
      control-<pid>.sock     unix datagram wakeup socket, one per live daemon
      results/               per-job full CheckReport JSON + SERVICE_metrics.json
      cache/                 the verdict cache (shared across restarts)

``repro submit`` writes a job file into ``incoming/`` and then pings every
``control-*.sock`` it can see — a serving daemon wakes *immediately*
instead of on its next poll tick, so submit→verdict latency is bounded by
the check, not by ``poll_interval`` (which survives purely as the fallback
for submitters that cannot reach a socket). The daemon's ingest renames
the file into ``accepted/`` (rename is the commit point — two daemons can
share a spool without double-ingesting), journals it as PENDING, and the
scheduler's pre-forked pool takes it from there.

Sharded deployments give each daemon instance disjoint ``--own`` shards:
jobs route to ``shard_of(content key)``, an instance only ingests and
drains what it owns, and every journal file keeps exactly one writer.
Restarting after a crash re-opens the owned journals, requeues orphaned
RUNNING jobs, and keeps going; completed work is never repeated because
it is journaled DONE, and identical *pending* work is deduplicated by
content key.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro import faults
from repro.service.cache import VerdictCache
from repro.service.client import ServiceClient
from repro.service.fingerprint import fingerprint_options, job_key
from repro.service.jobs import (
    DEFAULT_MAX_JOB_ATTEMPTS,
    JobStore,
    ShardedJobStore,
    discover_shard_journals,
    fsync_dir,
    shard_of,
)
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import Scheduler
from repro.trace.fingerprint import sha256_file

#: Snapshot of the daemon's metrics, inside the spool's results dir.
METRICS_BASENAME = "SERVICE_metrics.json"

#: Default floor between metrics snapshots while the daemon is serving.
DEFAULT_METRICS_INTERVAL_S = 2.0

#: Default size of one batched verdict-cache flush.
DEFAULT_CACHE_BATCH = 16

#: Default floor between heartbeat writes while the daemon is serving.
DEFAULT_HEARTBEAT_INTERVAL_S = 1.0

#: A heartbeat older than this many intervals marks its daemon stale.
HEARTBEAT_STALE_FACTOR = 3.0

FP_SPOOL_INGEST = faults.register_fault_point(
    "daemon.spool.ingest",
    doc="between accepting a spooled job file (the rename commit point) "
        "and journaling it (key = job file name)",
)
FP_WAKEUP = faults.register_fault_point(
    "daemon.wakeup",
    doc="right after the daemon's control socket receives a submit ping",
)
FP_HEARTBEAT = faults.register_fault_point(
    "daemon.heartbeat.write", writes=True,
    doc="the daemon's liveness heartbeat file (before its atomic rename)",
)


@dataclass
class SpoolLayout:
    """Where everything lives inside one spool directory."""

    root: Path

    @property
    def incoming(self) -> Path:
        return self.root / "incoming"

    @property
    def accepted(self) -> Path:
        return self.root / "accepted"

    @property
    def journal(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def results(self) -> Path:
        return self.root / "results"

    @property
    def cache(self) -> Path:
        return self.root / "cache"

    @property
    def metrics_path(self) -> Path:
        return self.results / METRICS_BASENAME

    @property
    def health(self) -> Path:
        return self.root / "health"

    @property
    def dead_letters(self) -> Path:
        return self.root / "jobs" / "dead"

    def control_sockets(self) -> list[Path]:
        return sorted(self.root.glob("control-*.sock"))

    def heartbeats(self) -> list[Path]:
        if not self.health.is_dir():
            return []
        return sorted(self.health.glob("daemon-*.json"))

    def ensure(self) -> "SpoolLayout":
        for directory in (
            self.root, self.incoming, self.accepted, self.results, self.health,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        return self


def spool_layout(spool: str | Path) -> SpoolLayout:
    return SpoolLayout(Path(spool))


def _ping_daemons(layout: SpoolLayout) -> int:
    """Poke every serving daemon's wakeup socket; stale sockets of dead
    daemons are cleaned up on the way. Returns how many pings landed."""
    delivered = 0
    for sock_path in layout.control_sockets():
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM) as sock:
                sock.sendto(b"!", str(sock_path))
            delivered += 1
        except OSError:
            try:
                sock_path.unlink()
            except OSError:
                pass
    return delivered


def submit_job(
    spool: str | Path,
    formula: str | Path,
    trace: str | Path,
    options: dict | None = None,
) -> Path:
    """Drop one job file into the spool's incoming directory, atomically,
    then wake any serving daemon over its control socket.

    Paths are stored absolute so the daemon's working directory is
    irrelevant. Returns the job file's path (its basename is unique per
    content+time, so concurrent submitters never collide).
    """
    layout = spool_layout(spool).ensure()
    formula = Path(formula).resolve()
    trace = Path(trace).resolve()
    for artifact in (formula, trace):
        if not artifact.is_file():
            raise FileNotFoundError(f"no such artifact: {artifact}")
    payload = {
        "formula": str(formula),
        "trace": str(trace),
        "options": dict(options or {}),
    }
    body = json.dumps(payload, indent=2, sort_keys=True)
    stamp = f"{time.time_ns():x}-{os.getpid()}"
    path = layout.incoming / f"job-{stamp}.json"
    tmp = layout.incoming / f".job-{stamp}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(body + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(layout.incoming)
    _ping_daemons(layout)
    return path


def request_requeue(spool: str | Path, job_id: str) -> Path:
    """Ask the daemon that owns ``job_id`` to requeue it (dead-letter exit).

    Journals are single-writer, so the request travels the same road as a
    job submission: an atomically renamed control file in ``incoming/``,
    applied by the owning daemon's next ingest pass (or by
    ``repro serve --once`` when no daemon is running).
    """
    layout = spool_layout(spool).ensure()
    stamp = f"{time.time_ns():x}-{os.getpid()}"
    path = layout.incoming / f"requeue-{stamp}.json"
    tmp = layout.incoming / f".requeue-{stamp}.tmp"
    body = json.dumps({"requeue": job_id}, indent=2, sort_keys=True)
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(body + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(layout.incoming)
    _ping_daemons(layout)
    return path


def offline_requeue(spool: str | Path, job_id: str):
    """Requeue ``job_id`` by opening the shard journals directly.

    ONLY safe when no daemon is serving the spool (the caller checks
    liveness via :func:`read_health` first) — journals are single-writer.
    Opening a journal also replays it, so any RUNNING orphans of the dead
    daemon are requeued or parked as a side effect, which is exactly the
    recovery an operator running this command wants. Returns the requeued
    job, or ``None`` if no journal knows ``job_id``.
    """
    layout = spool_layout(spool)
    for journal in discover_shard_journals(layout.root):
        with JobStore(journal, dead_letter_dir=layout.dead_letters) as store:
            if store.get(job_id) is not None:
                return store.requeue(job_id)
    return None


def _dedup_key(payload: dict) -> str:
    """Content key for submit-time dedup: artifact bytes + keyed options."""
    return job_key(
        sha256_file(payload["formula"]),
        sha256_file(payload["trace"]),
        fingerprint_options(payload.get("options", {})),
    )


class CheckDaemon:
    """Serves a spool directory: event-driven ingest feeding the pool."""

    def __init__(
        self,
        spool: str | Path,
        num_workers: int = 2,
        use_cache: bool = True,
        refresh: bool = False,
        cache_dir: str | Path | None = None,
        poll_interval: float = 0.2,
        fsync: bool = False,
        num_shards: int = 1,
        owned_shards: list[int] | None = None,
        metrics_interval: float = DEFAULT_METRICS_INTERVAL_S,
        cache_batch: int = DEFAULT_CACHE_BATCH,
        exec_mode: str = "process",
        max_job_attempts: int = DEFAULT_MAX_JOB_ATTEMPTS,
        task_timeout: float | None = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ) -> None:
        self.layout = spool_layout(spool).ensure()
        self.metrics = MetricsRegistry()
        cache = None
        if use_cache:
            cache = VerdictCache(
                cache_dir or self.layout.cache,
                metrics=self.metrics,
                batch_size=max(1, cache_batch),
            )
        self.client = ServiceClient(
            cache=cache, metrics=self.metrics, use_cache=use_cache, refresh=refresh
        )
        self.store = ShardedJobStore(
            self.layout.root,
            num_shards=num_shards,
            owned=owned_shards,
            fsync=fsync,
            max_job_attempts=max_job_attempts,
        )
        self.scheduler = Scheduler(
            self.store, self.client, num_workers=num_workers,
            results_dir=self.layout.results, mode=exec_mode,
            task_timeout=task_timeout,
        )
        self.poll_interval = poll_interval
        self.metrics_interval = metrics_interval
        self.heartbeat_interval = heartbeat_interval
        self.daemon_id = f"daemon-{os.getpid()}"
        self.started_at = time.time()
        self._last_heartbeat = 0.0
        self._wakeup_sock: socket.socket | None = None
        self._wakeup_path: Path | None = None
        if self.store.requeued_on_replay:
            self.metrics.inc("jobs.requeued_on_replay", self.store.requeued_on_replay)
        if self.store.parked_on_replay:
            self.metrics.inc("jobs.parked_on_replay", self.store.parked_on_replay)
        self._recover_accepted()

    # -- spool ingestion -----------------------------------------------------

    def _recover_accepted(self) -> None:
        """Re-journal accepted job files the journal does not know.

        The accept rename and the journal append are two steps; a crash
        between them leaves the job file in ``accepted/`` with no journal
        entry — without this pass that job would be silently lost. Re-
        submission dedups by content key, so jobs that *did* get journaled
        (the overwhelmingly common case) are recognized and skipped.
        """
        if self.store.readonly or not self.layout.accepted.is_dir():
            return
        known = {job.dedup_key for job in self.store.jobs() if job.dedup_key}
        for path in sorted(self.layout.accepted.glob("*.json")):
            if path.name.startswith("requeue-"):
                continue
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                options = payload.get("options", {})
                if not isinstance(options, dict):
                    continue
                dedup = _dedup_key(payload)
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if dedup in known:
                continue
            if shard_of(dedup, self.store.num_shards) not in self.store._shards:
                continue
            self.store.submit(
                payload["formula"], payload["trace"], options, dedup_key=dedup
            )
            known.add(dedup)
            self.metrics.inc("spool.recovered")

    @property
    def _rejects_malformed(self) -> bool:
        # Exactly one instance per spool must own rejection of files whose
        # shard cannot be computed; by convention it is shard 0's owner.
        return 0 in self.store._shards

    def ingest(self) -> int:
        """Journal every waiting job file this instance owns; returns how
        many. Files routing to shards owned by *other* instances are left
        in ``incoming/`` for their owners. Requeue control files (from
        ``repro requeue``) are applied on the same pass."""
        ingested = 0
        self._apply_requeue_requests()
        for path in sorted(self.layout.incoming.glob("*.json")):
            if path.name.startswith("requeue-"):
                continue
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue  # another instance renamed it first
            try:
                payload = json.loads(text)
                formula, trace = payload["formula"], payload["trace"]
                options = payload.get("options", {})
                if not isinstance(options, dict):
                    raise ValueError("job options must be an object")
                dedup = _dedup_key(payload)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                if not self._rejects_malformed:
                    continue
                accepted = self.layout.accepted / path.name
                try:
                    os.replace(path, accepted)  # the commit point
                except OSError:
                    continue
                accepted.rename(accepted.with_suffix(".rejected"))
                self.metrics.inc("spool.rejected")
                print(f"service: rejected {path.name}: {exc}", file=sys.stderr)
                continue
            if shard_of(dedup, self.store.num_shards) not in self.store._shards:
                self.metrics.inc("spool.other_shard")
                continue
            accepted = self.layout.accepted / path.name
            try:
                os.replace(path, accepted)  # the commit point
            except OSError:
                continue  # a same-shard replica won the rename
            # A crash here loses the journal entry but not the job: the
            # file survives in accepted/, and recovery re-spools anything
            # accepted/ holds that the journal does not (re-ingest is
            # idempotent via the content dedup key).
            faults.fault_point(FP_SPOOL_INGEST, key=path.name)
            self.store.submit(formula, trace, options, dedup_key=dedup)
            self.metrics.inc("spool.ingested")
            ingested += 1
        self.metrics.set_gauge("queue.depth", self.store.queue_depth)
        return ingested

    def _apply_requeue_requests(self) -> None:
        """Apply ``repro requeue`` control files for jobs this instance owns."""
        for path in sorted(self.layout.incoming.glob("requeue-*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                job_id = payload["requeue"]
            except (OSError, ValueError, KeyError, TypeError):
                if self._rejects_malformed:
                    try:
                        path.unlink()
                        self.metrics.inc("spool.rejected")
                    except OSError:
                        pass
                continue
            job = self.store.get(job_id)
            if job is None:
                # Not ours (another instance owns the shard) — unless this
                # is the rejecting instance and nobody can ever own it.
                continue
            consumed = self.layout.accepted / path.name
            try:
                os.replace(path, consumed)  # commit: exactly one applier
            except OSError:
                continue
            if self.store.requeue(job_id) is not None:
                self.metrics.inc("jobs.requeued_by_operator")

    def snapshot_metrics(self) -> None:
        self.metrics.write(str(self.layout.metrics_path))

    # -- heartbeat / health --------------------------------------------------

    @property
    def heartbeat_path(self) -> Path:
        return self.layout.health / f"{self.daemon_id}.json"

    def write_heartbeat(self, force: bool = False) -> bool:
        """Refresh this daemon's liveness file (throttled; atomic).

        The heartbeat is how an operator tells a dead daemon from a slow
        one: ``repro status --health`` compares each file's age against
        its advertised interval. Failure to write is counted, never fatal
        — a daemon with a full disk should keep serving from memory.
        """
        now = time.monotonic()
        if not force and now - self._last_heartbeat < self.heartbeat_interval:
            return False
        payload = {
            "daemon_id": self.daemon_id,
            "pid": os.getpid(),
            "shards": list(self.store.owned),
            "num_shards": self.store.num_shards,
            "interval_s": self.heartbeat_interval,
            "started_at": self.started_at,
            "written_at": time.time(),
            "counts": self.store.counts(),
        }
        tmp = f"{self.heartbeat_path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                faults.fault_write(
                    FP_HEARTBEAT,
                    handle,
                    json.dumps(payload, indent=2, sort_keys=True) + "\n",
                )
            os.replace(tmp, self.heartbeat_path)
        except (OSError, RuntimeError):
            self.metrics.inc("daemon.heartbeat_errors")
            return False
        self._last_heartbeat = now
        self.metrics.inc("daemon.heartbeats")
        return True

    def clear_heartbeat(self) -> None:
        try:
            self.heartbeat_path.unlink()
        except OSError:
            pass

    def reap_stale_daemons(self) -> int:
        """Clean up after daemons that died without a graceful shutdown.

        Their heartbeat files and wakeup sockets are removed (so health
        output converges on the truth); their RUNNING jobs live in journals
        only a process that *opens* those journals may rewrite — this
        instance's own shards were already requeued at open, and a restart
        or ``repro serve --once`` covers the rest. Returns how many dead
        daemons were reaped.
        """
        reaped = 0
        for path in self.layout.heartbeats():
            if path == self.heartbeat_path:
                continue
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                pid = int(payload["pid"])
            except (OSError, ValueError, KeyError, TypeError):
                pid = -1
            if pid > 0 and _pid_alive(pid):
                continue
            try:
                path.unlink()
            except OSError:
                continue
            if pid > 0:
                try:
                    (self.layout.root / f"control-{pid}.sock").unlink()
                except OSError:
                    pass
            reaped += 1
            self.metrics.inc("daemon.reaped")
        return reaped

    # -- wakeup socket -------------------------------------------------------

    def _open_wakeup_socket(self) -> None:
        path = self.layout.root / f"control-{os.getpid()}.sock"
        try:
            if path.exists():
                path.unlink()
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM)
            sock.bind(str(path))
        except OSError:
            # Socket path too long / AF_UNIX unavailable: poll-only mode.
            self._wakeup_sock = None
            self._wakeup_path = None
            return
        self._wakeup_sock = sock
        self._wakeup_path = path

    def _close_wakeup_socket(self) -> None:
        if self._wakeup_sock is not None:
            try:
                self._wakeup_sock.close()
            except OSError:
                pass
            self._wakeup_sock = None
        if self._wakeup_path is not None:
            try:
                self._wakeup_path.unlink()
            except OSError:
                pass
            self._wakeup_path = None

    def _wait_for_wakeup(self, timeout: float) -> bool:
        """Block until a submitter pings us or ``timeout`` elapses."""
        if self._wakeup_sock is None:
            time.sleep(timeout)
            return False
        self._wakeup_sock.settimeout(timeout)
        try:
            self._wakeup_sock.recv(16)
        except (TimeoutError, socket.timeout):
            return False
        except OSError:
            return False
        # Coalesce any burst of pings into this one ingest pass.
        self._wakeup_sock.settimeout(0.0)
        while True:
            try:
                self._wakeup_sock.recv(16)
            except (BlockingIOError, TimeoutError, socket.timeout, OSError):
                break
        self.metrics.inc("daemon.wakeups")
        faults.fault_point(FP_WAKEUP)
        return True

    # -- run modes -----------------------------------------------------------

    def run_once(self) -> int:
        """Ingest what is waiting, drain the queue, snapshot, exit.

        This is the crash-recovery entry point too: reopening the journal
        already requeued (or quarantined) any orphaned RUNNING jobs and
        re-spooled accepted-but-unjournaled files, so a ``--once`` run
        after a SIGKILL finishes whatever the dead daemon left behind.
        """
        self.reap_stale_daemons()
        self.ingest()
        self.scheduler.drain()
        self.snapshot_metrics()
        self.store.close()
        return 0

    def run_forever(self, max_idle_s: float | None = None) -> int:
        """Serve the spool until interrupted (or idle past ``max_idle_s``).

        SIGTERM is a *graceful* stop: in-flight checks finish, batched
        verdict-cache entries flush, the heartbeat file is withdrawn —
        indistinguishable afterward from Ctrl-C. Only SIGKILL leaves
        RUNNING orphans, and those are requeued at the next journal open.

        Metrics snapshots are throttled: one write only when the service
        state changed since the last write *and* at least
        ``metrics_interval`` seconds have passed — an idle daemon performs
        zero renames per poll instead of one.
        """
        self.scheduler.start()
        self._open_wakeup_socket()
        previous_sigterm = _install_sigterm_handler()
        self.write_heartbeat(force=True)
        last_activity = time.monotonic()
        last_snapshot = 0.0
        last_signature: object = None
        try:
            while True:
                ingested = self.ingest()
                self.write_heartbeat()
                self.reap_stale_daemons()
                busy = self.store.queue_depth > 0 or not self.store.all_terminal
                if ingested or busy:
                    last_activity = time.monotonic()
                elif max_idle_s is not None and time.monotonic() - last_activity > max_idle_s:
                    return 0
                signature = (
                    self.metrics.counter("spool.ingested").value,
                    tuple(sorted(self.store.counts().items())),
                )
                now = time.monotonic()
                if signature != last_signature and now - last_snapshot >= self.metrics_interval:
                    self.snapshot_metrics()
                    last_snapshot = now
                    last_signature = signature
                self._wait_for_wakeup(self.poll_interval)
        except (KeyboardInterrupt, _GracefulShutdown):
            return 0
        finally:
            _restore_sigterm_handler(previous_sigterm)
            self._close_wakeup_socket()
            self.scheduler.stop()
            self.snapshot_metrics()
            self.clear_heartbeat()
            self.store.close()


# -- graceful shutdown ---------------------------------------------------------


class _GracefulShutdown(Exception):
    """Raised by the SIGTERM handler to unwind run_forever cleanly."""


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM)
    return True


def _install_sigterm_handler():
    """Route SIGTERM into the graceful-stop path; no-op off the main thread."""
    def _handler(signum, frame):
        raise _GracefulShutdown()
    try:
        return signal.signal(signal.SIGTERM, _handler)
    except ValueError:
        return None


def _restore_sigterm_handler(previous) -> None:
    if previous is None:
        return
    try:
        signal.signal(signal.SIGTERM, previous)
    except ValueError:
        pass


# -- read-side helpers (repro status / repro results) -------------------------


def _readonly_stores(layout: SpoolLayout):
    for journal in discover_shard_journals(layout.root):
        yield JobStore(journal, readonly=True)


def read_health(spool: str | Path, stale_after: float | None = None) -> dict:
    """Per-daemon liveness from the spool's heartbeat files.

    A daemon is ``alive`` when its pid still exists and its heartbeat is
    fresh; ``stale`` when the pid exists but the heartbeat stopped aging
    well (a hung daemon looks exactly like this); ``dead`` when the pid is
    gone. ``stale_after`` overrides the default threshold of
    ``HEARTBEAT_STALE_FACTOR`` × the daemon's own advertised interval.
    """
    layout = spool_layout(spool)
    daemons = []
    now = time.time()
    for path in layout.heartbeats():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            daemons.append({
                "daemon_id": path.stem, "status": "unreadable", "path": str(path),
            })
            continue
        pid = payload.get("pid", -1)
        age = max(0.0, now - payload.get("written_at", 0.0))
        threshold = stale_after
        if threshold is None:
            interval = payload.get("interval_s", DEFAULT_HEARTBEAT_INTERVAL_S)
            threshold = max(HEARTBEAT_STALE_FACTOR * interval, 5.0)
        pid_alive = isinstance(pid, int) and pid > 0 and _pid_alive(pid)
        if not pid_alive:
            status = "dead"
        elif age > threshold:
            status = "stale"
        else:
            status = "alive"
        daemons.append({
            "daemon_id": payload.get("daemon_id", path.stem),
            "pid": pid,
            "status": status,
            "heartbeat_age_s": round(age, 3),
            "stale_after_s": round(threshold, 3),
            "shards": payload.get("shards", []),
            "counts": payload.get("counts", {}),
        })
    return {
        "daemons": daemons,
        "alive": sum(1 for d in daemons if d["status"] == "alive"),
        "stale": sum(1 for d in daemons if d["status"] == "stale"),
        "dead": sum(1 for d in daemons if d["status"] in ("dead", "unreadable")),
    }


def read_dead_letters(spool: str | Path) -> list[dict]:
    """Every quarantined job, with its attempt history, oldest first."""
    layout = spool_layout(spool)
    dead = []
    for store in _readonly_stores(layout):
        for job in store.dead_jobs():
            entry = {
                "job_id": job.job_id,
                "formula": job.formula,
                "trace": job.trace,
                "attempts": job.attempts,
                "attempt_history": job.attempt_history,
                "error": (job.result or {}).get("error"),
            }
            letter = layout.dead_letters / f"{job.job_id}.json"
            if letter.is_file():
                entry["dead_letter_path"] = str(letter)
            dead.append(entry)
    dead.sort(key=lambda entry: entry["job_id"])
    return dead


def read_queue_status(spool: str | Path) -> dict:
    """State counts and queue depth from every shard journal, without
    mutating any of them."""
    layout = spool_layout(spool)
    incoming = (
        sum(1 for _ in layout.incoming.glob("*.json"))
        if layout.incoming.is_dir()
        else 0
    )
    journals = discover_shard_journals(layout.root)
    if not journals:
        return {"jobs": 0, "counts": {}, "queue_depth": 0, "incoming": incoming}
    jobs = 0
    queue_depth = 0
    torn = 0
    counts: dict[str, int] = {}
    for store in _readonly_stores(layout):
        jobs += len(store.jobs())
        queue_depth += store.queue_depth
        torn += store.torn_lines
        for state, count in store.counts().items():
            counts[state] = counts.get(state, 0) + count
    return {
        "jobs": jobs,
        "counts": counts,
        "queue_depth": queue_depth,
        "incoming": incoming,
        "torn_lines": torn,
        "shards": len(journals),
    }


def iter_results(spool: str | Path, job_id: str | None = None):
    """Yield (job, result-payload-or-None) for terminal jobs, oldest first,
    across every shard journal."""
    layout = spool_layout(spool)
    jobs = []
    for store in _readonly_stores(layout):
        jobs.extend(store.jobs())
    jobs.sort(key=lambda job: (job.submitted_at, job.job_id))
    for job in jobs:
        if job_id is not None and job.job_id != job_id:
            continue
        if job.state.value not in ("DONE", "FAILED"):
            continue
        payload = None
        result_path = (job.result or {}).get("result_path")
        if result_path and Path(result_path).is_file():
            try:
                payload = json.loads(Path(result_path).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                payload = None
        yield job, payload
