"""The spool-directory daemon behind ``repro serve`` / ``submit`` / ``status``.

A spool directory is the whole wire protocol — no broker, nothing the
offline environment lacks:

.. code-block:: text

    spool/
      incoming/              job files dropped by `repro submit` (atomic rename in)
      accepted/              job files after pickup (atomic rename out of incoming)
      journal.jsonl          the JobStore journal (single-shard source of truth)
      journal-KK-of-NN.jsonl sharded journals (multi-instance deployments)
      control-<pid>.sock     unix datagram wakeup socket, one per live daemon
      results/               per-job full CheckReport JSON + SERVICE_metrics.json
      cache/                 the verdict cache (shared across restarts)

``repro submit`` writes a job file into ``incoming/`` and then pings every
``control-*.sock`` it can see — a serving daemon wakes *immediately*
instead of on its next poll tick, so submit→verdict latency is bounded by
the check, not by ``poll_interval`` (which survives purely as the fallback
for submitters that cannot reach a socket). The daemon's ingest renames
the file into ``accepted/`` (rename is the commit point — two daemons can
share a spool without double-ingesting), journals it as PENDING, and the
scheduler's pre-forked pool takes it from there.

Sharded deployments give each daemon instance disjoint ``--own`` shards:
jobs route to ``shard_of(content key)``, an instance only ingests and
drains what it owns, and every journal file keeps exactly one writer.
Restarting after a crash re-opens the owned journals, requeues orphaned
RUNNING jobs, and keeps going; completed work is never repeated because
it is journaled DONE, and identical *pending* work is deduplicated by
content key.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.service.cache import VerdictCache
from repro.service.client import ServiceClient
from repro.service.fingerprint import fingerprint_options, job_key
from repro.service.jobs import ShardedJobStore, discover_shard_journals, shard_of
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import Scheduler
from repro.trace.fingerprint import sha256_file

#: Snapshot of the daemon's metrics, inside the spool's results dir.
METRICS_BASENAME = "SERVICE_metrics.json"

#: Default floor between metrics snapshots while the daemon is serving.
DEFAULT_METRICS_INTERVAL_S = 2.0

#: Default size of one batched verdict-cache flush.
DEFAULT_CACHE_BATCH = 16


@dataclass
class SpoolLayout:
    """Where everything lives inside one spool directory."""

    root: Path

    @property
    def incoming(self) -> Path:
        return self.root / "incoming"

    @property
    def accepted(self) -> Path:
        return self.root / "accepted"

    @property
    def journal(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def results(self) -> Path:
        return self.root / "results"

    @property
    def cache(self) -> Path:
        return self.root / "cache"

    @property
    def metrics_path(self) -> Path:
        return self.results / METRICS_BASENAME

    def control_sockets(self) -> list[Path]:
        return sorted(self.root.glob("control-*.sock"))

    def ensure(self) -> "SpoolLayout":
        for directory in (self.root, self.incoming, self.accepted, self.results):
            directory.mkdir(parents=True, exist_ok=True)
        return self


def spool_layout(spool: str | Path) -> SpoolLayout:
    return SpoolLayout(Path(spool))


def _ping_daemons(layout: SpoolLayout) -> int:
    """Poke every serving daemon's wakeup socket; stale sockets of dead
    daemons are cleaned up on the way. Returns how many pings landed."""
    delivered = 0
    for sock_path in layout.control_sockets():
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM) as sock:
                sock.sendto(b"!", str(sock_path))
            delivered += 1
        except OSError:
            try:
                sock_path.unlink()
            except OSError:
                pass
    return delivered


def submit_job(
    spool: str | Path,
    formula: str | Path,
    trace: str | Path,
    options: dict | None = None,
) -> Path:
    """Drop one job file into the spool's incoming directory, atomically,
    then wake any serving daemon over its control socket.

    Paths are stored absolute so the daemon's working directory is
    irrelevant. Returns the job file's path (its basename is unique per
    content+time, so concurrent submitters never collide).
    """
    layout = spool_layout(spool).ensure()
    formula = Path(formula).resolve()
    trace = Path(trace).resolve()
    for artifact in (formula, trace):
        if not artifact.is_file():
            raise FileNotFoundError(f"no such artifact: {artifact}")
    payload = {
        "formula": str(formula),
        "trace": str(trace),
        "options": dict(options or {}),
    }
    body = json.dumps(payload, indent=2, sort_keys=True)
    stamp = f"{time.time_ns():x}-{os.getpid()}"
    path = layout.incoming / f"job-{stamp}.json"
    tmp = layout.incoming / f".job-{stamp}.tmp"
    tmp.write_text(body + "\n", encoding="utf-8")
    os.replace(tmp, path)
    _ping_daemons(layout)
    return path


def _dedup_key(payload: dict) -> str:
    """Content key for submit-time dedup: artifact bytes + keyed options."""
    return job_key(
        sha256_file(payload["formula"]),
        sha256_file(payload["trace"]),
        fingerprint_options(payload.get("options", {})),
    )


class CheckDaemon:
    """Serves a spool directory: event-driven ingest feeding the pool."""

    def __init__(
        self,
        spool: str | Path,
        num_workers: int = 2,
        use_cache: bool = True,
        refresh: bool = False,
        cache_dir: str | Path | None = None,
        poll_interval: float = 0.2,
        fsync: bool = False,
        num_shards: int = 1,
        owned_shards: list[int] | None = None,
        metrics_interval: float = DEFAULT_METRICS_INTERVAL_S,
        cache_batch: int = DEFAULT_CACHE_BATCH,
        exec_mode: str = "process",
    ) -> None:
        self.layout = spool_layout(spool).ensure()
        self.metrics = MetricsRegistry()
        cache = None
        if use_cache:
            cache = VerdictCache(
                cache_dir or self.layout.cache,
                metrics=self.metrics,
                batch_size=max(1, cache_batch),
            )
        self.client = ServiceClient(
            cache=cache, metrics=self.metrics, use_cache=use_cache, refresh=refresh
        )
        self.store = ShardedJobStore(
            self.layout.root,
            num_shards=num_shards,
            owned=owned_shards,
            fsync=fsync,
        )
        self.scheduler = Scheduler(
            self.store, self.client, num_workers=num_workers,
            results_dir=self.layout.results, mode=exec_mode,
        )
        self.poll_interval = poll_interval
        self.metrics_interval = metrics_interval
        self._wakeup_sock: socket.socket | None = None
        self._wakeup_path: Path | None = None
        if self.store.requeued_on_replay:
            self.metrics.inc("jobs.requeued_on_replay", self.store.requeued_on_replay)

    # -- spool ingestion -----------------------------------------------------

    @property
    def _rejects_malformed(self) -> bool:
        # Exactly one instance per spool must own rejection of files whose
        # shard cannot be computed; by convention it is shard 0's owner.
        return 0 in self.store._shards

    def ingest(self) -> int:
        """Journal every waiting job file this instance owns; returns how
        many. Files routing to shards owned by *other* instances are left
        in ``incoming/`` for their owners."""
        ingested = 0
        for path in sorted(self.layout.incoming.glob("*.json")):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue  # another instance renamed it first
            try:
                payload = json.loads(text)
                formula, trace = payload["formula"], payload["trace"]
                options = payload.get("options", {})
                if not isinstance(options, dict):
                    raise ValueError("job options must be an object")
                dedup = _dedup_key(payload)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                if not self._rejects_malformed:
                    continue
                accepted = self.layout.accepted / path.name
                try:
                    os.replace(path, accepted)  # the commit point
                except OSError:
                    continue
                accepted.rename(accepted.with_suffix(".rejected"))
                self.metrics.inc("spool.rejected")
                print(f"service: rejected {path.name}: {exc}", file=sys.stderr)
                continue
            if shard_of(dedup, self.store.num_shards) not in self.store._shards:
                self.metrics.inc("spool.other_shard")
                continue
            accepted = self.layout.accepted / path.name
            try:
                os.replace(path, accepted)  # the commit point
            except OSError:
                continue  # a same-shard replica won the rename
            self.store.submit(formula, trace, options, dedup_key=dedup)
            self.metrics.inc("spool.ingested")
            ingested += 1
        self.metrics.set_gauge("queue.depth", self.store.queue_depth)
        return ingested

    def snapshot_metrics(self) -> None:
        self.metrics.write(str(self.layout.metrics_path))

    # -- wakeup socket -------------------------------------------------------

    def _open_wakeup_socket(self) -> None:
        path = self.layout.root / f"control-{os.getpid()}.sock"
        try:
            if path.exists():
                path.unlink()
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM)
            sock.bind(str(path))
        except OSError:
            # Socket path too long / AF_UNIX unavailable: poll-only mode.
            self._wakeup_sock = None
            self._wakeup_path = None
            return
        self._wakeup_sock = sock
        self._wakeup_path = path

    def _close_wakeup_socket(self) -> None:
        if self._wakeup_sock is not None:
            try:
                self._wakeup_sock.close()
            except OSError:
                pass
            self._wakeup_sock = None
        if self._wakeup_path is not None:
            try:
                self._wakeup_path.unlink()
            except OSError:
                pass
            self._wakeup_path = None

    def _wait_for_wakeup(self, timeout: float) -> bool:
        """Block until a submitter pings us or ``timeout`` elapses."""
        if self._wakeup_sock is None:
            time.sleep(timeout)
            return False
        self._wakeup_sock.settimeout(timeout)
        try:
            self._wakeup_sock.recv(16)
        except (TimeoutError, socket.timeout):
            return False
        except OSError:
            return False
        # Coalesce any burst of pings into this one ingest pass.
        self._wakeup_sock.settimeout(0.0)
        while True:
            try:
                self._wakeup_sock.recv(16)
            except (BlockingIOError, TimeoutError, socket.timeout, OSError):
                break
        self.metrics.inc("daemon.wakeups")
        return True

    # -- run modes -----------------------------------------------------------

    def run_once(self) -> int:
        """Ingest what is waiting, drain the queue, snapshot, exit.

        This is the crash-recovery entry point too: reopening the journal
        already requeued any orphaned RUNNING jobs, so a ``--once`` run
        after a SIGKILL finishes whatever the dead daemon left behind.
        """
        self.ingest()
        self.scheduler.drain()
        self.snapshot_metrics()
        self.store.close()
        return 0

    def run_forever(self, max_idle_s: float | None = None) -> int:
        """Serve the spool until interrupted (or idle past ``max_idle_s``).

        Metrics snapshots are throttled: one write only when the service
        state changed since the last write *and* at least
        ``metrics_interval`` seconds have passed — an idle daemon performs
        zero renames per poll instead of one.
        """
        self.scheduler.start()
        self._open_wakeup_socket()
        last_activity = time.monotonic()
        last_snapshot = 0.0
        last_signature: object = None
        try:
            while True:
                ingested = self.ingest()
                busy = self.store.queue_depth > 0 or not self.store.all_terminal
                if ingested or busy:
                    last_activity = time.monotonic()
                elif max_idle_s is not None and time.monotonic() - last_activity > max_idle_s:
                    return 0
                signature = (
                    self.metrics.counter("spool.ingested").value,
                    tuple(sorted(self.store.counts().items())),
                )
                now = time.monotonic()
                if signature != last_signature and now - last_snapshot >= self.metrics_interval:
                    self.snapshot_metrics()
                    last_snapshot = now
                    last_signature = signature
                self._wait_for_wakeup(self.poll_interval)
        except KeyboardInterrupt:
            return 0
        finally:
            self._close_wakeup_socket()
            self.scheduler.stop()
            self.snapshot_metrics()
            self.store.close()


# -- read-side helpers (repro status / repro results) -------------------------


def _readonly_stores(layout: SpoolLayout):
    from repro.service.jobs import JobStore

    for journal in discover_shard_journals(layout.root):
        yield JobStore(journal, readonly=True)


def read_queue_status(spool: str | Path) -> dict:
    """State counts and queue depth from every shard journal, without
    mutating any of them."""
    layout = spool_layout(spool)
    incoming = (
        sum(1 for _ in layout.incoming.glob("*.json"))
        if layout.incoming.is_dir()
        else 0
    )
    journals = discover_shard_journals(layout.root)
    if not journals:
        return {"jobs": 0, "counts": {}, "queue_depth": 0, "incoming": incoming}
    jobs = 0
    queue_depth = 0
    torn = 0
    counts: dict[str, int] = {}
    for store in _readonly_stores(layout):
        jobs += len(store.jobs())
        queue_depth += store.queue_depth
        torn += store.torn_lines
        for state, count in store.counts().items():
            counts[state] = counts.get(state, 0) + count
    return {
        "jobs": jobs,
        "counts": counts,
        "queue_depth": queue_depth,
        "incoming": incoming,
        "torn_lines": torn,
        "shards": len(journals),
    }


def iter_results(spool: str | Path, job_id: str | None = None):
    """Yield (job, result-payload-or-None) for terminal jobs, oldest first,
    across every shard journal."""
    layout = spool_layout(spool)
    jobs = []
    for store in _readonly_stores(layout):
        jobs.extend(store.jobs())
    jobs.sort(key=lambda job: (job.submitted_at, job.job_id))
    for job in jobs:
        if job_id is not None and job.job_id != job_id:
            continue
        if job.state.value not in ("DONE", "FAILED"):
            continue
        payload = None
        result_path = (job.result or {}).get("result_path")
        if result_path and Path(result_path).is_file():
            try:
                payload = json.loads(Path(result_path).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                payload = None
        yield job, payload
