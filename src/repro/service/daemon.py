"""The spool-directory daemon behind ``repro serve`` / ``submit`` / ``status``.

A spool directory is the whole wire protocol — no sockets, no broker,
nothing the offline environment lacks:

.. code-block:: text

    spool/
      incoming/              job files dropped by `repro submit` (atomic rename in)
      accepted/              job files after pickup (atomic rename out of incoming)
      journal.jsonl          the JobStore journal (the source of truth)
      results/               per-job full CheckReport JSON + SERVICE_metrics.json
      cache/                 the verdict cache (shared across restarts)

``repro submit`` writes a job file into ``incoming/``; the daemon's poll
loop renames it into ``accepted/`` (rename is the commit point — two
daemons can share a spool without double-ingesting), journals it as
PENDING, and the scheduler's workers take it from there. Restarting
after a crash re-opens the journal, requeues orphaned RUNNING jobs, and
keeps going; completed work is never repeated because it is journaled
DONE, and identical *pending* work is deduplicated by content key.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.service.cache import VerdictCache
from repro.service.client import ServiceClient
from repro.service.fingerprint import fingerprint_options, job_key
from repro.service.jobs import JobStore
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import Scheduler
from repro.trace.fingerprint import sha256_file

#: Snapshot of the daemon's metrics, inside the spool's results dir.
METRICS_BASENAME = "SERVICE_metrics.json"


@dataclass
class SpoolLayout:
    """Where everything lives inside one spool directory."""

    root: Path

    @property
    def incoming(self) -> Path:
        return self.root / "incoming"

    @property
    def accepted(self) -> Path:
        return self.root / "accepted"

    @property
    def journal(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def results(self) -> Path:
        return self.root / "results"

    @property
    def cache(self) -> Path:
        return self.root / "cache"

    @property
    def metrics_path(self) -> Path:
        return self.results / METRICS_BASENAME

    def ensure(self) -> "SpoolLayout":
        for directory in (self.root, self.incoming, self.accepted, self.results):
            directory.mkdir(parents=True, exist_ok=True)
        return self


def spool_layout(spool: str | Path) -> SpoolLayout:
    return SpoolLayout(Path(spool))


def submit_job(
    spool: str | Path,
    formula: str | Path,
    trace: str | Path,
    options: dict | None = None,
) -> Path:
    """Drop one job file into the spool's incoming directory, atomically.

    Paths are stored absolute so the daemon's working directory is
    irrelevant. Returns the job file's path (its basename is unique per
    content+time, so concurrent submitters never collide).
    """
    layout = spool_layout(spool).ensure()
    formula = Path(formula).resolve()
    trace = Path(trace).resolve()
    for artifact in (formula, trace):
        if not artifact.is_file():
            raise FileNotFoundError(f"no such artifact: {artifact}")
    payload = {
        "formula": str(formula),
        "trace": str(trace),
        "options": dict(options or {}),
    }
    body = json.dumps(payload, indent=2, sort_keys=True)
    stamp = f"{time.time_ns():x}-{os.getpid()}"
    path = layout.incoming / f"job-{stamp}.json"
    tmp = layout.incoming / f".job-{stamp}.tmp"
    tmp.write_text(body + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def _dedup_key(payload: dict) -> str:
    """Content key for submit-time dedup: artifact bytes + keyed options."""
    return job_key(
        sha256_file(payload["formula"]),
        sha256_file(payload["trace"]),
        fingerprint_options(payload.get("options", {})),
    )


class CheckDaemon:
    """Polls a spool directory and drains its queue through the scheduler."""

    def __init__(
        self,
        spool: str | Path,
        num_workers: int = 2,
        use_cache: bool = True,
        refresh: bool = False,
        cache_dir: str | Path | None = None,
        poll_interval: float = 0.2,
        fsync: bool = False,
    ) -> None:
        self.layout = spool_layout(spool).ensure()
        self.metrics = MetricsRegistry()
        cache = None
        if use_cache:
            cache = VerdictCache(cache_dir or self.layout.cache, metrics=self.metrics)
        self.client = ServiceClient(
            cache=cache, metrics=self.metrics, use_cache=use_cache, refresh=refresh
        )
        self.store = JobStore(self.layout.journal, fsync=fsync)
        self.scheduler = Scheduler(
            self.store, self.client, num_workers=num_workers,
            results_dir=self.layout.results,
        )
        self.poll_interval = poll_interval
        if self.store.requeued_on_replay:
            self.metrics.inc("jobs.requeued_on_replay", self.store.requeued_on_replay)

    # -- spool ingestion -----------------------------------------------------

    def ingest(self) -> int:
        """Move every waiting job file into the journal; returns how many."""
        ingested = 0
        for path in sorted(self.layout.incoming.glob("*.json")):
            accepted = self.layout.accepted / path.name
            try:
                os.replace(path, accepted)  # the commit point
            except OSError:
                continue  # another daemon won the rename
            try:
                payload = json.loads(accepted.read_text(encoding="utf-8"))
                formula, trace = payload["formula"], payload["trace"]
                options = payload.get("options", {})
                if not isinstance(options, dict):
                    raise ValueError("job options must be an object")
                dedup = _dedup_key(payload)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                accepted.rename(accepted.with_suffix(".rejected"))
                self.metrics.inc("spool.rejected")
                print(f"service: rejected {path.name}: {exc}", file=sys.stderr)
                continue
            self.store.submit(formula, trace, options, dedup_key=dedup)
            self.metrics.inc("spool.ingested")
            ingested += 1
        self.metrics.set_gauge("queue.depth", self.store.queue_depth)
        return ingested

    def snapshot_metrics(self) -> None:
        self.metrics.write(str(self.layout.metrics_path))

    # -- run modes -----------------------------------------------------------

    def run_once(self) -> int:
        """Ingest what is waiting, drain the queue, snapshot, exit.

        This is the crash-recovery entry point too: reopening the journal
        already requeued any orphaned RUNNING jobs, so a ``--once`` run
        after a SIGKILL finishes whatever the dead daemon left behind.
        """
        self.ingest()
        self.scheduler.drain()
        self.snapshot_metrics()
        self.store.close()
        return 0

    def run_forever(self, max_idle_s: float | None = None) -> int:
        """Poll the spool until interrupted (or idle past ``max_idle_s``)."""
        self.scheduler.start()
        last_activity = time.monotonic()
        try:
            while True:
                ingested = self.ingest()
                busy = self.store.queue_depth > 0 or not self.store.all_terminal
                if ingested or busy:
                    last_activity = time.monotonic()
                elif max_idle_s is not None and time.monotonic() - last_activity > max_idle_s:
                    return 0
                self.snapshot_metrics()
                time.sleep(self.poll_interval)
        except KeyboardInterrupt:
            return 0
        finally:
            self.scheduler.stop()
            self.snapshot_metrics()
            self.store.close()


# -- read-side helpers (repro status / repro results) -------------------------


def read_queue_status(spool: str | Path) -> dict:
    """State counts and queue depth from the journal, without mutating it."""
    layout = spool_layout(spool)
    incoming = (
        sum(1 for _ in layout.incoming.glob("*.json"))
        if layout.incoming.is_dir()
        else 0
    )
    if not layout.journal.exists():
        return {"jobs": 0, "counts": {}, "queue_depth": 0, "incoming": incoming}
    store = JobStore(layout.journal, readonly=True)
    return {
        "jobs": len(store.jobs()),
        "counts": store.counts(),
        "queue_depth": store.queue_depth,
        "incoming": incoming,
        "torn_lines": store.torn_lines,
    }


def iter_results(spool: str | Path, job_id: str | None = None):
    """Yield (job, result-payload-or-None) for terminal jobs, oldest first."""
    layout = spool_layout(spool)
    if not layout.journal.exists():
        return
    store = JobStore(layout.journal, readonly=True)
    for job in store.jobs():
        if job_id is not None and job.job_id != job_id:
            continue
        if job.state.value not in ("DONE", "FAILED"):
            continue
        payload = None
        result_path = (job.result or {}).get("result_path")
        if result_path and Path(result_path).is_file():
            try:
                payload = json.loads(Path(result_path).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                payload = None
        yield job, payload
