"""The persistent pre-forked checking worker pool.

The PR 5 scheduler ran CPU-bound resolution checks on ``threading.Thread``
workers — serialized by the GIL, so adding workers made the service
*slower*. This module is the replacement execution layer: long-lived
worker **processes**, forked once at pool start, that receive tasks over
pipes and stream results back. The parent never computes a verdict; it
only routes.

Three properties the thread layer could not offer:

* **real parallelism** — each worker is its own interpreter, so N workers
  use N cores (jobs/s scales with cores instead of degrading);
* **warm state** — a worker keeps decoded formulas, materialized traces
  and interned :class:`~repro.checker.store.ClauseStore`\\ s cached across
  jobs, keyed by content fingerprint. Checking ten proofs against one
  formula parses the DIMACS once and re-interns nothing (interning is
  content-addressed, so store reuse is verdict-neutral);
* **crash survival** — the parent waits on each worker's process sentinel
  alongside its pipe, so a SIGKILLed worker is detected immediately, its
  in-flight task is retried on a freshly forked replacement (bounded by
  ``max_task_retries``), and only exhaustion surfaces as a failure —
  the same supervision discipline PR 4's watchdog gave the parallel
  checker, applied to the service fleet.

:class:`ThreadWorkerPool` keeps the same interface on threads for
platforms without ``fork`` and for apples-to-apples GIL benchmarks.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import OrderedDict
from multiprocessing import connection

from repro import faults
from repro.checker.kernel import set_warm_store_provider
from repro.checker.store import ClauseStore
from repro.checker.supervisor import supervised_check
from repro.cnf import parse_dimacs_file
from repro.service.metrics import MetricsRegistry
from repro.trace.io import load_trace

#: How many distinct formulas / traces a worker keeps warm. Formulas are
#: small; traces can be large, so their bound is tighter.
DEFAULT_WARM_FORMULAS = 8
DEFAULT_WARM_TRACES = 4

#: A warm ClauseStore accumulating more interned clauses than this is
#: dropped and re-seeded — store reuse must never become a slow leak.
DEFAULT_STORE_ENTRY_BOUND = 500_000

#: How often an idle worker interrupts its pipe wait to check that its
#: parent is still alive (seconds).
PARENT_POLL_S = 1.0

#: Deprecated alias, kept importable for old drills: a path in this env
#: var makes the next worker that starts a task unlink the file and
#: SIGKILL itself. It is now translated into a ``pool.task.start`` fault
#: plan entry by :mod:`repro.faults` — prefer ``REPRO_FAULT_PLAN``.
FAULT_FILE_ENV = faults.LEGACY_POOL_FAULT_ENV

FP_TASK_START = faults.register_fault_point(
    "pool.task.start",
    doc="inside a worker process, between receiving a task and checking it",
)
FP_TASK_DISPATCH = faults.register_fault_point(
    "pool.task.dispatch",
    doc="in the parent, just before a task is piped to an idle worker",
)
FP_RESULT_COLLECT = faults.register_fault_point(
    "pool.result.collect",
    doc="in the parent collector, after a result is read off the pipe and "
        "before it is applied (key = job id)",
)

# Process-wide registry behind the kernel's warm-store provider. Keyed by
# formula object identity: warm caches hold the formula objects alive, so
# an id in here always names a live, known formula. Entries are removed
# when the owning warm cache evicts the formula.
_STORE_REGISTRY: dict[int, ClauseStore] = {}
_REGISTRY_LOCK = threading.Lock()


def _registry_provider(formula):
    with _REGISTRY_LOCK:
        return _STORE_REGISTRY.get(id(formula))


class _WarmCache:
    """Per-worker LRU of decoded artifacts, keyed by content fingerprint."""

    def __init__(
        self,
        max_formulas: int = DEFAULT_WARM_FORMULAS,
        max_traces: int = DEFAULT_WARM_TRACES,
        store_entry_bound: int = DEFAULT_STORE_ENTRY_BOUND,
    ) -> None:
        self.max_formulas = max_formulas
        self.max_traces = max_traces
        self.store_entry_bound = store_entry_bound
        self._formulas: OrderedDict[str, object] = OrderedDict()
        self._stores: dict[str, ClauseStore] = {}
        self._traces: OrderedDict[str, object] = OrderedDict()

    def formula(self, sha: str | None, path: str, stats: dict) -> object:
        if sha is not None and sha in self._formulas:
            self._formulas.move_to_end(sha)
            stats["formula_hits"] = stats.get("formula_hits", 0) + 1
            return self._formulas[sha]
        parsed = parse_dimacs_file(path)
        stats["formula_misses"] = stats.get("formula_misses", 0) + 1
        if sha is not None:
            self._formulas[sha] = parsed
            while len(self._formulas) > self.max_formulas:
                _, evicted = self._formulas.popitem(last=False)
                self._drop_store(evicted)
            for key in list(self._stores):
                if key not in self._formulas:
                    del self._stores[key]
        return parsed

    def trace(self, sha: str | None, path: str, stats: dict) -> object:
        if sha is not None and sha in self._traces:
            self._traces.move_to_end(sha)
            stats["trace_hits"] = stats.get("trace_hits", 0) + 1
            return self._traces[sha]
        # Fall back to the path itself when the trace cannot be decoded —
        # the checker will then report the malformation as the verdict.
        try:
            decoded = load_trace(path)
        except Exception:
            stats["trace_misses"] = stats.get("trace_misses", 0) + 1
            return path
        stats["trace_misses"] = stats.get("trace_misses", 0) + 1
        if sha is not None:
            self._traces[sha] = decoded
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
        return decoded

    def prime_store(self, formula, sha: str | None, options: dict, stats: dict) -> None:
        """Attach (or reuse) the warm ClauseStore for ``formula``.

        Registered by formula object identity so the kernel's
        ``make_engine`` hook finds it without API plumbing through every
        checker. Reference-engine runs (``use_kernel=False``) skip this.
        """
        if sha is None or options.get("use_kernel") is False:
            return
        store = self._stores.get(sha)
        if store is not None and len(store) > self.store_entry_bound:
            self._drop_store(self._formulas.get(sha))
            store = None
        if store is None:
            store = ClauseStore()
            self._stores[sha] = store
        else:
            stats["store_reuses"] = stats.get("store_reuses", 0) + 1
        with _REGISTRY_LOCK:
            _STORE_REGISTRY[id(formula)] = store

    @staticmethod
    def _drop_store(formula) -> None:
        if formula is None:
            return
        with _REGISTRY_LOCK:
            _STORE_REGISTRY.pop(id(formula), None)


def _execute_task(task: dict, warm: _WarmCache) -> dict:
    """Run one check task; never raises — errors become a failure result."""
    stats: dict[str, int] = {}
    started = time.perf_counter()
    try:
        fingerprint = task.get("fingerprint") or None
        shas = fingerprint or {}
        formula = warm.formula(shas.get("formula_sha256"), task["formula"], stats)
        if task["options"].get("method") in ("rup", "drat"):
            # Clausal proofs are streamed from disk by their checkers
            # (mmap for binary DRAT); decoding them as a resolution trace
            # would be wasted work at best.
            trace = task["trace"]
        else:
            trace = warm.trace(shas.get("trace_sha256"), task["trace"], stats)
        warm.prime_store(formula, shas.get("formula_sha256"), task["options"], stats)
        report = supervised_check(
            formula, trace, fingerprint=fingerprint, **task["options"]
        )
        return {
            "job_id": task["job_id"],
            "ok": True,
            "report": report.to_json(),
            "stats": stats,
            "elapsed_s": time.perf_counter() - started,
        }
    except Exception as exc:  # noqa: BLE001 - a worker must survive any job
        return {
            "job_id": task["job_id"],
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "stats": stats,
            "elapsed_s": time.perf_counter() - started,
        }


def _worker_main(name: str, conn, warm_config: tuple) -> None:
    """The long-lived worker loop: recv task, check, send result, repeat."""
    warm = _WarmCache(*warm_config)
    set_warm_store_provider(_registry_provider)
    parent = os.getppid()
    while True:
        try:
            # recv() alone cannot detect a SIGKILLed parent: fork-context
            # children inherit *both* ends of every pipe created before
            # their fork (their own parent end, and every earlier
            # sibling's), so the pipe never reaches EOF once the parent
            # is gone. Poll with a timeout and watch for reparenting —
            # an orphaned worker must exit, not survive as litter that
            # holds the dead daemon's stdio open.
            if not conn.poll(PARENT_POLL_S):
                if os.getppid() != parent:
                    break
                continue
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if task is None:
            break
        # Worker-side fault point (the legacy REPRO_POOL_FAULT_FILE hook
        # lands here as a token-gated kill entry). A raise-kind fault is a
        # crash the worker loop does not survive — exactly like a kill,
        # but visible to coverage-style in-process drills.
        faults.fault_point(FP_TASK_START, key=task.get("job_id"))
        result = _execute_task(task, warm)
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            break


class _WorkerHandle:
    """Parent-side view of one worker: its process, pipe and current task."""

    __slots__ = ("name", "process", "conn", "task", "started")

    def __init__(self, name, process, conn):
        self.name = name
        self.process = process
        self.conn = conn
        self.task = None
        self.started = 0.0


class WorkerPool:
    """Pre-forked process pool with crash replacement and task retry.

    The owner supplies ``result_handler``, invoked from the pool's
    collector thread with each result dict (``ok``/``report``/``error``
    plus per-task warm-cache ``stats``). ``submit`` assigns a task to an
    idle worker (returns ``False`` when all are busy — the caller is the
    backpressure); results, crashes and replacements are fully async.
    """

    def __init__(
        self,
        num_workers: int,
        result_handler,
        metrics: MetricsRegistry | None = None,
        max_task_retries: int = 1,
        task_timeout: float | None = None,
        warm_formulas: int = DEFAULT_WARM_FORMULAS,
        warm_traces: int = DEFAULT_WARM_TRACES,
        store_entry_bound: int = DEFAULT_STORE_ENTRY_BOUND,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.result_handler = result_handler
        self.metrics = metrics or MetricsRegistry()
        self.max_task_retries = max_task_retries
        #: A worker holding one task longer than this is presumed hung and
        #: SIGKILLed — the crash-replacement path then owns retry/surfacing,
        #: so a livelocked check degrades into an ordinary worker crash
        #: instead of silently parking one pool slot forever.
        self.task_timeout = task_timeout
        self._warm_config = (warm_formulas, warm_traces, store_entry_bound)
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context()
        self._lock = threading.Lock()
        self._workers: list[_WorkerHandle] = []
        self._collector: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._spawned = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._collector is not None:
            raise RuntimeError("pool already started")
        self._stop_event.clear()
        # Fork every worker *before* the collector thread exists: a fork
        # taken from a single-threaded parent can never inherit a held lock.
        with self._lock:
            for _ in range(self.num_workers):
                self._workers.append(self._spawn_worker())
        self._collector = threading.Thread(
            target=self._collect_loop, name="pool-collector", daemon=True
        )
        self._collector.start()

    def stop(self, grace_s: float = 5.0) -> None:
        if self._collector is None:
            return
        self._stop_event.set()
        self._collector.join(timeout=grace_s)
        with self._lock:
            workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.conn.send(None)
            except OSError:
                pass
        for worker in workers:
            worker.process.join(timeout=grace_s)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=grace_s)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._collector = None

    def _spawn_worker(self) -> _WorkerHandle:
        name = f"pool-worker-{self._spawned}"
        self._spawned += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(name, child_conn, self._warm_config),
            name=name,
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(name, process, parent_conn)

    # -- submission ----------------------------------------------------------

    def submit(self, task: dict) -> bool:
        """Hand ``task`` to an idle worker; ``False`` when all are busy."""
        faults.fault_point(FP_TASK_DISPATCH, key=task.get("job_id"))
        with self._lock:
            for worker in self._workers:
                if worker.task is None and worker.process.is_alive():
                    worker.task = task
                    worker.started = time.monotonic()
                    try:
                        worker.conn.send(task)
                    except OSError:
                        # Worker died between is_alive and send; the
                        # sentinel path will retry the task elsewhere.
                        pass
                    return True
        return False

    @property
    def idle_workers(self) -> int:
        with self._lock:
            return sum(
                1
                for worker in self._workers
                if worker.task is None and worker.process.is_alive()
            )

    def has_idle(self) -> bool:
        return self.idle_workers > 0

    def worker_pids(self) -> list[int]:
        with self._lock:
            return [worker.process.pid for worker in self._workers]

    def busy_worker_pids(self) -> list[int]:
        with self._lock:
            return [
                worker.process.pid for worker in self._workers if worker.task is not None
            ]

    # -- the collector -------------------------------------------------------

    def _collect_loop(self) -> None:
        while not self._stop_event.is_set():
            with self._lock:
                by_conn = {worker.conn: worker for worker in self._workers}
                by_sentinel = {
                    worker.process.sentinel: worker for worker in self._workers
                }
            if not by_conn:
                time.sleep(0.01)
                continue
            ready = connection.wait(
                list(by_conn) + list(by_sentinel), timeout=0.2
            )
            self._reap_hung_workers()
            for item in ready:
                worker = by_conn.get(item)
                if worker is not None:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        self._handle_crash(worker)
                        continue
                    try:
                        faults.fault_point(
                            FP_RESULT_COLLECT,
                            key=message.get("job_id") if isinstance(message, dict) else None,
                        )
                    except (faults.FaultInjected, OSError) as exc:
                        # The collector thread must survive an in-process
                        # fault; the computed result is lost, which to the
                        # owner looks exactly like the worker dying after
                        # the check — a crash, retried or quarantined.
                        self.metrics.inc("pool.injected_faults")
                        job_id = message.get("job_id") if isinstance(message, dict) else ""
                        message = {
                            "job_id": job_id,
                            "ok": False,
                            "crashed": True,
                            "error": f"result lost to injected fault: {exc}",
                            "stats": {},
                        }
                    with self._lock:
                        worker.task = None
                    self._deliver(message)
                else:
                    worker = by_sentinel.get(item)
                    if worker is not None and not worker.process.is_alive():
                        # Drain any result the worker managed to send before
                        # dying, then treat the remainder as a crash.
                        drained = False
                        try:
                            if worker.conn.poll(0):
                                message = worker.conn.recv()
                                with self._lock:
                                    worker.task = None
                                self._deliver(message)
                                drained = True
                        except (EOFError, OSError):
                            pass
                        self._handle_crash(worker, quiet=drained)

    def _reap_hung_workers(self) -> None:
        """SIGKILL any worker past ``task_timeout`` on its current task.

        The kill is the whole intervention: the process sentinel fires on
        the next wait and the ordinary crash path replaces the worker and
        retries (then quarantines) the task.
        """
        if self.task_timeout is None:
            return
        now = time.monotonic()
        with self._lock:
            stuck = [
                worker
                for worker in self._workers
                if worker.task is not None
                and worker.started
                and now - worker.started > self.task_timeout
                and worker.process.is_alive()
            ]
        for worker in stuck:
            self.metrics.inc("pool.task_timeouts")
            try:
                os.kill(worker.process.pid, signal.SIGKILL)
            except (OSError, TypeError):
                pass

    def _handle_crash(self, worker: _WorkerHandle, quiet: bool = False) -> None:
        retried = False
        with self._lock:
            if worker not in self._workers:
                return
            self._workers.remove(worker)
            task, worker.task = worker.task, None
            replacement = None
            if not self._stop_event.is_set():
                replacement = self._spawn_worker()
                self._workers.append(replacement)
            if task is not None:
                task["_retries"] = task.get("_retries", 0) + 1
                if task["_retries"] <= self.max_task_retries and replacement is not None:
                    # Pin the retry to the replacement *inside* the lock —
                    # otherwise the dispatcher can race a fresh job into the
                    # new worker's slot and the retry finds no idle worker.
                    replacement.task = task
                    replacement.started = time.monotonic()
                    try:
                        replacement.conn.send(task)
                    except OSError:
                        pass  # replacement died instantly; sentinel retries
                    retried = True
        try:
            worker.conn.close()
        except OSError:
            pass
        exitcode = worker.process.exitcode
        if not quiet or task is not None:
            self.metrics.inc("pool.worker_crashes")
        if replacement is not None:
            self.metrics.inc("pool.workers_replaced")
        if task is None:
            return
        if retried:
            self.metrics.inc("pool.task_retries")
            return
        self._deliver(
            {
                "job_id": task["job_id"],
                "ok": False,
                "error": (
                    f"worker crashed (exit code {exitcode}) and retries are "
                    f"exhausted after {task['_retries']} attempt(s)"
                ),
                "crashed": True,
                "stats": {},
            }
        )

    def _deliver(self, result: dict) -> None:
        try:
            self.result_handler(result)
        except Exception:  # noqa: BLE001 - the collector must survive handlers
            self.metrics.inc("pool.result_handler_errors")


class ThreadWorkerPool:
    """The same pool interface on threads (GIL-bound; comparison/fallback).

    Each thread owns a private :class:`_WarmCache`, so warm stores are
    never shared across concurrently running checks.
    """

    def __init__(
        self,
        num_workers: int,
        result_handler,
        metrics: MetricsRegistry | None = None,
        warm_formulas: int = DEFAULT_WARM_FORMULAS,
        warm_traces: int = DEFAULT_WARM_TRACES,
        store_entry_bound: int = DEFAULT_STORE_ENTRY_BOUND,
        **_: object,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.result_handler = result_handler
        self.metrics = metrics or MetricsRegistry()
        self._warm_config = (warm_formulas, warm_traces, store_entry_bound)
        self._lock = threading.Lock()
        self._idle = 0
        self._threads: list[threading.Thread] = []
        self._queue: list[dict] = []
        self._queue_cond = threading.Condition(self._lock)
        self._stopping = False

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("pool already started")
        set_warm_store_provider(_registry_provider)
        self._stopping = False
        self._idle = self.num_workers
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"pool-thread-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, grace_s: float = 5.0) -> None:
        with self._queue_cond:
            self._stopping = True
            self._queue_cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=grace_s)
        self._threads = []

    def submit(self, task: dict) -> bool:
        with self._queue_cond:
            if self._idle - len(self._queue) <= 0:
                return False
            self._queue.append(task)
            self._queue_cond.notify()
            return True

    @property
    def idle_workers(self) -> int:
        with self._lock:
            return max(0, self._idle - len(self._queue))

    def has_idle(self) -> bool:
        return self.idle_workers > 0

    def worker_pids(self) -> list[int]:
        return []

    def _worker_loop(self) -> None:
        warm = _WarmCache(*self._warm_config)
        while True:
            with self._queue_cond:
                while not self._queue and not self._stopping:
                    self._queue_cond.wait(timeout=0.2)
                if self._stopping and not self._queue:
                    return
                task = self._queue.pop(0)
                self._idle -= 1
            try:
                result = _execute_task(task, warm)
            finally:
                with self._lock:
                    self._idle += 1
            try:
                self.result_handler(result)
            except Exception:  # noqa: BLE001
                self.metrics.inc("pool.result_handler_errors")
