"""Checking-as-a-service: queueing, caching and metrics above the checkers.

The paper's workflow is batch-shaped — a solver emits a trace, an
independent checker replays it. This package is the layer that turns
those one-shot checks into a long-lived service, per the ROADMAP's
"serve heavy traffic" north star:

* :mod:`repro.service.fingerprint` — streaming SHA-256 content
  addressing of (formula, trace, options); the identity everything else
  keys on.
* :mod:`repro.service.cache` — :class:`VerdictCache`, the persistent
  content-addressed store of ``CheckReport`` verdicts: re-checking an
  already-validated trace is a hash plus a file read.
* :mod:`repro.service.jobs` — :class:`JobStore`, the durable queue: a
  JSONL journal with PENDING → RUNNING → DONE/FAILED transitions and
  crash-safe replay.
* :mod:`repro.service.pool` — :class:`WorkerPool`, the pre-forked
  process execution layer: long-lived workers with warm formula/trace/
  clause-store caches, crash replacement and bounded task retry.
* :mod:`repro.service.scheduler` — :class:`Scheduler`, the event-driven
  dispatcher feeding the pool and serving cache hits itself.
* :mod:`repro.service.client` — :class:`ServiceClient`, the library
  front door for embedders (the experiments harness runs through it).
* :mod:`repro.service.daemon` — :class:`CheckDaemon` and the spool
  directory protocol behind ``repro serve`` / ``submit`` / ``status`` /
  ``results``.
* :mod:`repro.service.metrics` — :class:`MetricsRegistry`: counters,
  gauges and bucketed histograms, snapshotted to
  ``SERVICE_metrics.json``.
"""

from repro.service.cache import VerdictCache
from repro.service.client import RetryPolicy, ServiceClient, call_with_retries
from repro.service.daemon import (
    CheckDaemon,
    SpoolLayout,
    iter_results,
    offline_requeue,
    read_dead_letters,
    read_health,
    read_queue_status,
    request_requeue,
    spool_layout,
    submit_job,
)
from repro.service.fingerprint import (
    fingerprint_check,
    fingerprint_formula,
    fingerprint_options,
    fingerprint_trace,
    job_key,
)
from repro.service.jobs import (
    Job,
    JobState,
    JobStore,
    ShardedJobStore,
    discover_shard_journals,
    shard_of,
)
from repro.service.metrics import MetricsRegistry, load_snapshot, render_snapshot
from repro.service.pool import ThreadWorkerPool, WorkerPool
from repro.service.scheduler import Scheduler

__all__ = [
    "VerdictCache",
    "ServiceClient",
    "RetryPolicy",
    "call_with_retries",
    "CheckDaemon",
    "SpoolLayout",
    "spool_layout",
    "submit_job",
    "read_queue_status",
    "read_health",
    "read_dead_letters",
    "request_requeue",
    "offline_requeue",
    "iter_results",
    "fingerprint_check",
    "fingerprint_formula",
    "fingerprint_options",
    "fingerprint_trace",
    "job_key",
    "Job",
    "JobState",
    "JobStore",
    "ShardedJobStore",
    "shard_of",
    "discover_shard_journals",
    "MetricsRegistry",
    "load_snapshot",
    "render_snapshot",
    "WorkerPool",
    "ThreadWorkerPool",
    "Scheduler",
]
