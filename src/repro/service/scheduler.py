"""The multi-worker dispatcher: jobs out of the store, verdicts back in.

Worker threads claim PENDING jobs from the :class:`JobStore` (the claim
itself is journaled, so a crash mid-check leaves a requeueable RUNNING
entry) and run each through the cache-aware :class:`ServiceClient` —
i.e. through PR 4's ``supervised_check`` with per-job options, budgets
and the degradation ladder intact.

Terminal-state semantics: **DONE means the service produced a verdict**,
including "this proof is bad" — a checker finding a bug is the service
working, not failing. FAILED is reserved for jobs the service could not
execute at all: missing artifacts, unparseable formulas, unknown
options. This is what lets "every job reaches a terminal state" be a
meaningful invariant across crash/restart cycles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.checker.report import REPORT_SCHEMA_VERSION, CheckReport

from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobStore

#: Job options a journal entry may carry; anything else fails the job
#: rather than TypeError-ing inside a worker. Mirrors SupervisorConfig
#: minus the service-managed fields (fingerprints, checkpoints).
ALLOWED_JOB_OPTIONS = frozenset(
    {
        "method",
        "policy",
        "timeout",
        "memory_limit",
        "max_retries",
        "window_timeout",
        "num_workers",
        "window_size",
        "use_kernel",
        "precheck",
        "count_chunk_size",
        "prune",
    }
)

#: How long an idle worker sleeps before re-polling the queue.
_IDLE_POLL_S = 0.02


class Scheduler:
    """Owns the worker threads that drain a job store."""

    def __init__(
        self,
        store: JobStore,
        client: ServiceClient,
        num_workers: int = 2,
        results_dir: str | Path | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.store = store
        self.client = client
        self.metrics = client.metrics
        self.num_workers = num_workers
        self.results_dir = Path(results_dir) if results_dir is not None else None
        if self.results_dir is not None:
            self.results_dir.mkdir(parents=True, exist_ok=True)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._busy = 0
        self._busy_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("scheduler already started")
        self._stop.clear()
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"check-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join()
        self._threads = []

    def drain(self) -> None:
        """Process until the queue is empty and every worker is idle."""
        own_workers = not self._threads
        if own_workers:
            self.start()
        try:
            while True:
                with self._busy_lock:
                    busy = self._busy
                if self.store.queue_depth == 0 and busy == 0:
                    return
                time.sleep(_IDLE_POLL_S)
        finally:
            if own_workers:
                self.stop()

    # -- the worker loop -----------------------------------------------------

    def _worker_loop(self) -> None:
        name = threading.current_thread().name
        while not self._stop.is_set():
            job = self.store.claim(name)
            if job is None:
                time.sleep(_IDLE_POLL_S)
                continue
            with self._busy_lock:
                self._busy += 1
            self.metrics.set_gauge("queue.depth", self.store.queue_depth)
            try:
                self._execute(job)
            finally:
                with self._busy_lock:
                    self._busy -= 1
                self.metrics.set_gauge("queue.depth", self.store.queue_depth)

    def _execute(self, job: Job) -> None:
        started = time.perf_counter()
        try:
            options = self._validate_options(job.options)
            report = self.client.check(job.formula, job.trace, **options)
        except Exception as exc:  # noqa: BLE001 - a worker must survive any job
            self.store.fail(job, {"error": f"{type(exc).__name__}: {exc}"})
            self.metrics.inc("jobs.failed")
            self.metrics.observe("job.latency_s", time.perf_counter() - started)
            return
        summary = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "verified": report.verified,
            "method": report.method,
            "from_cache": report.from_cache,
            "check_time_s": round(report.check_time, 6),
        }
        if report.failure is not None:
            summary["failure_kind"] = report.failure.kind.value
        if report.prune is not None:
            summary["pruned"] = True
        result_path = self._write_result(job, report)
        if result_path is not None:
            summary["result_path"] = result_path
        self.store.finish(job, summary)
        self.metrics.inc("jobs.done")
        if report.from_cache:
            self.metrics.inc("jobs.served_from_cache")
        self.metrics.observe("job.latency_s", time.perf_counter() - started)

    @staticmethod
    def _validate_options(options: dict) -> dict:
        unknown = sorted(set(options) - ALLOWED_JOB_OPTIONS)
        if unknown:
            raise ValueError(f"unknown job option(s): {', '.join(unknown)}")
        return options

    def _write_result(self, job: Job, report: CheckReport) -> str | None:
        """Persist the full report JSON next to the journal, atomically."""
        if self.results_dir is None:
            return None
        payload = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "job_id": job.job_id,
            "formula": job.formula,
            "trace": job.trace,
            "options": job.options,
            "report": report.to_json(),
        }
        path = self.results_dir / f"{job.job_id}.json"
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return str(path)
