"""The event-driven dispatcher: jobs out of the store, verdicts back in.

The execution layer is a persistent pre-forked process pool
(:mod:`repro.service.pool`); this module is the control plane around it.
One dispatcher thread claims PENDING jobs the moment a condition-variable
wakeup says there is work *and* an idle worker — no idle polling, no GIL
contention on the checks themselves. The dispatcher also owns everything
content-addressed: it fingerprints each job, serves verdict-cache hits
without ever waking a worker, and (via the pool's collector) persists
fresh verdicts through the batched cache writer.

The claim itself is journaled, so a crash mid-check leaves a requeueable
RUNNING entry, and the in-flight count is incremented *inside* the claim
critical section — ``drain()`` can therefore never observe "queue empty,
nobody busy" while a claimed job has not reached a terminal state (the
PR 5 thread scheduler had exactly that race).

Terminal-state semantics: **DONE means the service produced a verdict**,
including "this proof is bad" — a checker finding a bug is the service
working, not failing. FAILED is reserved for jobs the service could not
execute at all: missing artifacts, unparseable formulas, unknown
options, a worker crashing past its retry budget.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro import faults
from repro.checker.report import REPORT_SCHEMA_VERSION, CheckReport

from repro.service.client import ServiceClient
from repro.service.jobs import Job, fsync_dir
from repro.service.pool import ThreadWorkerPool, WorkerPool

FP_CLAIM = faults.register_fault_point(
    "scheduler.claim",
    doc="right after a PENDING job is claimed, before it is dispatched",
)
FP_FINALIZE = faults.register_fault_point(
    "scheduler.finalize",
    doc="right before a computed verdict is journaled terminal (key = job id)",
)

#: Job options a journal entry may carry; anything else fails the job
#: rather than TypeError-ing inside a worker. Mirrors SupervisorConfig
#: minus the service-managed fields (fingerprints, checkpoints).
ALLOWED_JOB_OPTIONS = frozenset(
    {
        "method",
        "policy",
        "timeout",
        "memory_limit",
        "max_retries",
        "window_timeout",
        "num_workers",
        "window_size",
        "use_kernel",
        "precheck",
        "count_chunk_size",
        "prune",
        "memory_window",
        "window_records",
        "backward",
        "proof_format",
    }
)

#: Fallback wakeup period for the dispatcher/drain condition waits. Purely
#: a safety net against a lost notification — every state change notifies
#: the condition, so the service does not *rely* on this tick.
_FALLBACK_WAIT_S = 0.5


class Scheduler:
    """Owns the worker pool and the dispatcher thread that feed it."""

    def __init__(
        self,
        store,
        client: ServiceClient,
        num_workers: int = 2,
        results_dir: str | Path | None = None,
        mode: str = "process",
        max_task_retries: int = 1,
        task_timeout: float | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown scheduler mode: {mode!r}")
        self.store = store
        self.client = client
        self.metrics = client.metrics
        self.num_workers = num_workers
        self.mode = mode
        self.max_task_retries = max_task_retries
        self.task_timeout = task_timeout
        self.results_dir = Path(results_dir) if results_dir is not None else None
        if self.results_dir is not None:
            self.results_dir.mkdir(parents=True, exist_ok=True)
        self._cond = threading.Condition()
        self._inflight: dict[str, tuple[Job, dict | None, float]] = {}
        self._stop = threading.Event()
        self._dispatcher: threading.Thread | None = None
        self.pool: WorkerPool | ThreadWorkerPool | None = None
        if hasattr(store, "add_listener"):
            store.add_listener(self.notify)

    # -- wakeups -------------------------------------------------------------

    def notify(self) -> None:
        """Wake the dispatcher (new job, freed worker, external nudge)."""
        with self._cond:
            self._cond.notify_all()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._dispatcher is not None:
            raise RuntimeError("scheduler already started")
        self._stop.clear()
        pool_cls = WorkerPool if self.mode == "process" else ThreadWorkerPool
        # Fork the pool before the dispatcher thread exists (fork safety).
        self.pool = pool_cls(
            self.num_workers,
            self._handle_result,
            metrics=self.metrics,
            max_task_retries=self.max_task_retries,
            task_timeout=self.task_timeout,
        )
        self.pool.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="check-dispatcher", daemon=True
        )
        self._dispatcher.start()

    def stop(self) -> None:
        """Stop dispatching, let in-flight work finish, shut the pool down."""
        if self._dispatcher is None:
            return
        self._stop.set()
        self.notify()
        self._dispatcher.join()
        with self._cond:
            while self._inflight:
                self._cond.wait(timeout=_FALLBACK_WAIT_S)
        self._dispatcher = None
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.stop()
        self.client.flush_cache()

    def drain(self) -> None:
        """Process until the queue is empty and every claimed job is terminal."""
        own_workers = self._dispatcher is None
        if own_workers:
            self.start()
        try:
            with self._cond:
                while self.store.queue_depth > 0 or self._inflight:
                    self._cond.wait(timeout=_FALLBACK_WAIT_S)
        finally:
            if own_workers:
                self.stop()
            else:
                self.client.flush_cache()

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            job = None
            with self._cond:
                if self.pool is not None and self.pool.has_idle():
                    # The claim and the in-flight accounting are one atomic
                    # step under the condition lock: drain() checks both
                    # under the same lock, so a claimed-but-uncounted job
                    # can never exist.
                    job = self.store.claim("dispatcher")
                    if job is not None:
                        self._inflight[job.job_id] = (job, None, time.perf_counter())
                if job is None:
                    self._cond.wait(timeout=_FALLBACK_WAIT_S)
            if job is not None:
                try:
                    faults.fault_point(FP_CLAIM, key=job.job_id)
                except faults.FaultInjected:
                    # In-process crash drill between claim and dispatch: the
                    # job goes back to PENDING, the dispatcher survives.
                    self.metrics.inc("scheduler.injected_faults")
                    self.store.requeue(job.job_id)
                    self._release(job)
                    continue
                self._dispatch(job)

    def _dispatch(self, job: Job) -> None:
        self.metrics.set_gauge("queue.depth", self.store.queue_depth)
        started = time.perf_counter()
        try:
            options = self._validate_options(job.options)
            fingerprint = self.client.fingerprint(job.formula, job.trace, options)
        except Exception as exc:  # noqa: BLE001 - bad jobs fail, never wedge
            self._finalize_failure(job, f"{type(exc).__name__}: {exc}")
            return
        with self._cond:
            self._inflight[job.job_id] = (job, fingerprint, started)
        cached = self.client.cache_lookup(fingerprint)
        if cached is not None:
            try:
                self._finalize_success(job, cached, started)
            except Exception as exc:  # noqa: BLE001 - the dispatcher survives
                self._finalize_failure(job, f"{type(exc).__name__}: {exc}")
            return
        task = {
            "job_id": job.job_id,
            "formula": job.formula,
            "trace": job.trace,
            "options": options,
            "fingerprint": fingerprint,
        }
        assert self.pool is not None
        # The dispatcher only claims against an idle worker, so a refused
        # submit is a worker dying in the claim window; the pool's crash
        # handling owns retries once submitted, but an unsubmittable task
        # simply waits for the next idle slot.
        try:
            submitted = self.pool.submit(task)
            while not submitted and not self._stop.is_set():
                with self._cond:
                    self._cond.wait(timeout=_FALLBACK_WAIT_S)
                submitted = self.pool.submit(task)
        except (faults.FaultInjected, OSError):
            # An injected dispatch fault: the claim goes back to PENDING
            # and the dispatcher thread lives on.
            self.metrics.inc("scheduler.injected_faults")
            self.store.requeue(job.job_id)
            self._release(job)
            return
        if not submitted:
            # Shutting down with the task never handed to a worker: drop it
            # from in-flight so stop() can finish; the journal replay will
            # requeue the still-RUNNING job on the next open.
            self._release(job)

    # -- results -------------------------------------------------------------

    def _handle_result(self, result: dict) -> None:
        """Pool collector callback: one finished (or failed) task."""
        job_id = result.get("job_id", "")
        with self._cond:
            entry = self._inflight.get(job_id)
        if entry is None:
            self.metrics.inc("scheduler.orphan_results")
            return
        job, fingerprint, started = entry
        for stat, count in (result.get("stats") or {}).items():
            self.metrics.inc(f"pool.{stat}", count)
        try:
            if not result.get("ok"):
                if result.get("crashed"):
                    self.metrics.inc("jobs.worker_crash_failures")
                    self._finalize_crash(job, result.get("error", "worker crashed"))
                else:
                    self._finalize_failure(
                        job, result.get("error", "unknown worker error")
                    )
                return
            report = CheckReport.from_json(result["report"])
            self.client.account(report)
            if fingerprint is not None:
                self.client.cache_store(fingerprint, report)
            self._finalize_success(job, report, started)
        except Exception as exc:  # noqa: BLE001 - the collector must survive
            self._finalize_failure(job, f"{type(exc).__name__}: {exc}")

    def _finalize_success(self, job: Job, report: CheckReport, started: float) -> None:
        faults.fault_point(FP_FINALIZE, key=job.job_id)
        summary = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "verified": report.verified,
            "method": report.method,
            "from_cache": report.from_cache,
            "check_time_s": round(report.check_time, 6),
        }
        if report.failure is not None:
            summary["failure_kind"] = report.failure.kind.value
        if report.prune is not None:
            summary["pruned"] = True
        result_path = self._write_result(job, report)
        if result_path is not None:
            summary["result_path"] = result_path
        self.store.finish(job, summary)
        self.metrics.inc("jobs.done")
        if report.from_cache:
            self.metrics.inc("jobs.served_from_cache")
        self.metrics.observe("job.latency_s", time.perf_counter() - started)
        if report.memory:
            # Resident-memory high-water marks (constant-memory claims are
            # observable at the service level, not just in reports).
            peak_clauses = report.memory.get("peak_unique_clauses")
            if peak_clauses is not None:
                self.metrics.observe("check.peak_resident_clauses", peak_clauses)
            peak_units = report.memory.get("peak_resident_units")
            if peak_units is not None:
                self.metrics.observe("check.peak_resident_units", peak_units)
            spills = report.memory.get("spilled_clauses")
            if spills:
                self.metrics.inc("check.spilled_clauses", spills)
        self._release(job)

    def _finalize_failure(self, job: Job, error: str) -> None:
        try:
            self.store.fail(job, {"error": error})
        except ValueError:
            # The job already reached a terminal state — a fault fired
            # partway through finalization. The first verdict stands.
            self.metrics.inc("scheduler.duplicate_finalizes")
        self.metrics.inc("jobs.failed")
        self._release(job)

    def _finalize_crash(self, job: Job, error: str) -> None:
        """A worker crash or task timeout ate this attempt: requeue while
        the job has attempt budget left, otherwise quarantine it — a job
        that reliably kills its worker must not crash-loop the pool."""
        budget = getattr(self.store, "max_job_attempts", 1)
        if job.attempts < budget:
            self.metrics.inc("jobs.crash_requeues")
            self.store.requeue(job.job_id)
        else:
            self.store.park(job, {"error": error})
            self.metrics.inc("jobs.parked")
        self._release(job)

    def _release(self, job: Job) -> None:
        self.metrics.set_gauge("queue.depth", self.store.queue_depth)
        with self._cond:
            self._inflight.pop(job.job_id, None)
            self._cond.notify_all()

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _validate_options(options: dict) -> dict:
        unknown = sorted(set(options) - ALLOWED_JOB_OPTIONS)
        if unknown:
            raise ValueError(f"unknown job option(s): {', '.join(unknown)}")
        return options

    def _write_result(self, job: Job, report: CheckReport) -> str | None:
        """Persist the full report JSON next to the journal, atomically."""
        if self.results_dir is None:
            return None
        payload = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "job_id": job.job_id,
            "formula": job.formula,
            "trace": job.trace,
            "options": job.options,
            "report": report.to_json(),
        }
        path = self.results_dir / f"{job.job_id}.json"
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(self.results_dir)
        return str(path)
