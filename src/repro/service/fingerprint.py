"""Content-addressing for checking work: what makes two checks "the same".

A verdict is a function of exactly three inputs: the formula, the trace,
and the checking options that can change the verdict's *content* (method,
budgets, policy). The service keys all persistent state — verdict cache
entries, job dedup — on streaming SHA-256 fingerprints of those three,
combined into one hex ``job_key``. Cruz-Filipe et al.'s observation that
pre-processed proof artifacts are worth persisting only holds if the
artifact can never be confused with another; the full 256-bit key is that
guarantee.

Trace hashing lives in :mod:`repro.trace.fingerprint` (the checkpoint
format shares it); this module adds the formula and options sides plus
the key combinator.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.cnf import CnfFormula
from repro.trace.fingerprint import sha256_file, sha256_text, trace_content_hash
from repro.trace.records import Trace

#: Option names whose values feed the cache key. Anything else (profiling,
#: checkpoint paths, worker counts) changes *how* a verdict is computed,
#: not *what* it says — two runs differing only in those must share a
#: cache line. num_workers/window_size are included because the parallel
#: checker's window_stats payload depends on them.
KEYED_OPTIONS = (
    "method",
    "policy",
    "timeout",
    "memory_limit",
    "use_kernel",
    "precheck",
    "num_workers",
    "window_size",
    # Pruning changes the report's content (prune stats, clauses_built), so
    # pruned and unpruned verdicts must occupy distinct cache lines even
    # though the verdict itself is guaranteed identical.
    "prune",
    # The streaming checker's window_stats and memory payloads depend on
    # both of these, same rationale as num_workers/window_size above.
    "memory_window",
    "window_records",
    # DRAT proofs: backward (core-first) checking changes the report's
    # content (prune/proof stats) exactly like trace pruning does, and the
    # declared proof format is part of what the verdict asserts.
    "backward",
    "proof_format",
)


def fingerprint_formula(formula: CnfFormula) -> str:
    """Streaming hash of a formula: dimensions plus every clause in ID order.

    Clause IDs are positional (1..m), so hashing the literal tuples in
    order pins both the clauses and the ID assignment the checkers rely
    on.
    """
    digest = hashlib.sha256()
    feed = digest.update
    feed(f"p cnf {formula.num_vars} {formula.num_clauses}\n".encode())
    for clause in formula:
        feed(" ".join(map(str, clause.literals)).encode())
        feed(b"\n")
    return digest.hexdigest()


def fingerprint_options(options: dict) -> str:
    """Hash of the verdict-relevant checking options, canonically encoded.

    Only :data:`KEYED_OPTIONS` participate; unset/None entries are
    dropped so "no timeout" and an absent key hash identically.
    """
    keyed = {
        name: options[name]
        for name in KEYED_OPTIONS
        if options.get(name) is not None
    }
    return sha256_text(json.dumps(keyed, sort_keys=True, separators=(",", ":")))


def fingerprint_trace(source: str | Path | Trace) -> str:
    """Content hash of the trace artifact (file bytes or canonical records)."""
    return trace_content_hash(source)


def job_key(formula_sha: str, trace_sha: str, options_sha: str) -> str:
    """Combine the three component digests into the cache/job key."""
    return sha256_text(f"{formula_sha}\n{trace_sha}\n{options_sha}")


def fingerprint_check(
    formula: CnfFormula | str | Path,
    trace_source: str | Path | Trace,
    options: dict,
) -> dict:
    """All four digests for one prospective check, as the dict the service
    threads through :attr:`CheckReport.fingerprint` and the cache.

    ``formula`` may be given as a DIMACS path — then the *file bytes* are
    hashed, which is cheaper than parsing and just as binding (the parse
    is deterministic).
    """
    if isinstance(formula, CnfFormula):
        formula_sha = fingerprint_formula(formula)
    else:
        formula_sha = sha256_file(formula)
    trace_sha = fingerprint_trace(trace_source)
    options_sha = fingerprint_options(options)
    return {
        "formula_sha256": formula_sha,
        "trace_sha256": trace_sha,
        "options_sha256": options_sha,
        "key": job_key(formula_sha, trace_sha, options_sha),
    }
