"""The content-addressed verdict cache.

Re-checking an already-validated trace should be a hash plus a file read,
not a resolution replay — the service's answer to Cruz-Filipe et al.'s
"preprocess once, reuse forever" economics. Entries are ``CheckReport``
JSON payloads keyed by the :func:`~repro.service.fingerprint.job_key`
over (formula, trace, options) digests.

Safety over speed, in order:

* an entry is only returned when its **stored component digests** match
  the requested ones — the key already encodes them, so this is a
  defense-in-depth re-check against truncated/tampered files;
* an entry whose ``schema_version`` differs from the running code's
  :data:`~repro.checker.report.REPORT_SCHEMA_VERSION` is rejected (and
  counted), never reinterpreted;
* writes are atomic (temp file + ``os.replace``), so a crashed writer
  leaves either the old entry or the new one, never a torn file;
* the store is LRU-bounded by entry count: hits refresh the entry's
  mtime, and inserts beyond ``max_entries`` evict the stalest files.

Two write disciplines share one on-disk layout:

* ``batch_size=1`` (the default) writes one ``<key>.json`` file per
  verdict, exactly as before;
* ``batch_size>1`` buffers verdicts in memory and flushes them as one
  multi-entry **segment** (``seg-<stamp>.jsonl``, one entry per line)
  with a *single* atomic ``os.replace`` per flush — what the checking
  service uses so a busy queue does not pay one rename per job. Pending
  entries are served from memory; segments are indexed at open time,
  newest-wins. A crash loses at most the unflushed buffer — never a
  previously flushed verdict, and the cache never makes a check fail.

Unreadable or corrupt entries degrade to a miss.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro import faults
from repro.checker.report import REPORT_SCHEMA_VERSION, CheckReport

from repro.service.jobs import fsync_dir
from repro.service.metrics import MetricsRegistry

FP_ENTRY_WRITE = faults.register_fault_point(
    "cache.entry.write", writes=True,
    doc="single-entry verdict file body (before its atomic rename)",
)
FP_SEGMENT_WRITE = faults.register_fault_point(
    "cache.segment.write", writes=True,
    doc="one JSONL line of a batched segment flush (key = cache key)",
)
FP_SEGMENT_RENAME = faults.register_fault_point(
    "cache.segment.rename",
    doc="just before the atomic rename that publishes a flushed segment",
)

#: Default LRU bound. Verdict entries are small (a few KiB); 4096 of them
#: is megabytes, not a disk hazard.
DEFAULT_MAX_ENTRIES = 4096

#: How long (seconds) a buffered entry may wait before a put forces a
#: flush even when the batch is not full.
DEFAULT_FLUSH_AGE_S = 2.0


class VerdictCache:
    """On-disk, content-addressed store of check verdicts."""

    def __init__(
        self,
        cache_dir: str | Path,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        metrics: MetricsRegistry | None = None,
        batch_size: int = 1,
        flush_age_s: float = DEFAULT_FLUSH_AGE_S,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.metrics = metrics or MetricsRegistry()
        self.batch_size = batch_size
        self.flush_age_s = flush_age_s
        self._lock = threading.Lock()
        self._pending: dict[str, dict] = {}
        self._pending_since: float | None = None
        # key -> segment path, built once at open; later flushes update it.
        self._segment_index: dict[str, Path] = {}
        self._segment_entries: dict[Path, int] = {}
        #: Undecodable segment lines seen at open — a crashed writer's torn
        #: tail. Counted (and exported as a metric) rather than silently
        #: skipped, so a drill can assert recovery noticed the tear.
        self.torn_lines = 0
        self._sweep_tmp_files()
        self._load_segments()

    def _sweep_tmp_files(self) -> None:
        """Remove orphaned ``*.tmp`` files a crashed writer left behind.

        They were never published (the rename did not happen), so deleting
        them loses nothing; leaving them would slowly leak disk.
        """
        for orphan in self.cache_dir.glob("*.tmp"):
            try:
                os.unlink(orphan)
            except OSError:
                continue
            self.metrics.inc("cache.tmp_sweeps")

    # -- paths ---------------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _load_segments(self) -> None:
        """Index every segment's keys; lexicographic name order is
        chronological (names embed a zero-padded nanosecond stamp), so a
        later segment's entry wins over an earlier one for the same key."""
        for segment in sorted(self.cache_dir.glob("seg-*.jsonl")):
            count = 0
            try:
                with open(segment, encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            key = json.loads(line).get("key")
                        except json.JSONDecodeError:
                            self.torn_lines += 1
                            self.metrics.inc("cache.torn_lines")
                            continue
                        if key:
                            self._segment_index[key] = segment
                            count += 1
            except OSError:
                continue
            self._segment_entries[segment] = count

    def __len__(self) -> int:
        with self._lock:
            buffered = len(self._pending)
            segmented = sum(self._segment_entries.values())
        singles = sum(1 for _ in self.cache_dir.glob("*.json"))
        return singles + segmented + buffered

    # -- lookup --------------------------------------------------------------

    def get(self, fingerprint: dict) -> CheckReport | None:
        """Return the cached verdict for ``fingerprint``, or ``None``.

        ``fingerprint`` is the dict from
        :func:`repro.service.fingerprint.fingerprint_check` (the ``key``
        plus the three component digests). Every mismatch — absent entry,
        unparseable JSON, wrong schema version, component digest
        disagreement — is a counted miss. Lookup order: the in-memory
        batch buffer, then segments, then per-entry files.
        """
        key = fingerprint["key"]
        with self._lock:
            entry = self._pending.get(key)
            segment = self._segment_index.get(key)
        if entry is None and segment is not None:
            entry = self._read_segment_entry(segment, key)
        if entry is None:
            entry = self._read_entry_file(key)
            if entry is None:
                return None
        return self._validate(entry, fingerprint)

    def _read_entry_file(self, key: str) -> dict | None:
        path = self._entry_path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.metrics.inc("cache.misses")
            return None
        except (OSError, json.JSONDecodeError):
            self.metrics.inc("cache.misses")
            self.metrics.inc("cache.corrupt_entries")
            return None
        # LRU bookkeeping: a hit makes the entry the freshest.
        try:
            os.utime(path)
        except OSError:
            pass
        return entry

    def _read_segment_entry(self, segment: Path, key: str) -> dict | None:
        try:
            with open(segment, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if entry.get("key") == key:
                        try:
                            os.utime(segment)
                        except OSError:
                            pass
                        return entry
        except OSError:
            pass
        with self._lock:
            self._segment_index.pop(key, None)
        return None

    def _validate(self, entry: dict, fingerprint: dict) -> CheckReport | None:
        if entry.get("schema_version") != REPORT_SCHEMA_VERSION:
            self.metrics.inc("cache.misses")
            self.metrics.inc("cache.schema_rejects")
            return None
        for component in ("formula_sha256", "trace_sha256", "options_sha256"):
            if entry.get(component) != fingerprint[component]:
                self.metrics.inc("cache.misses")
                self.metrics.inc("cache.fingerprint_rejects")
                return None
        try:
            report = CheckReport.from_json(entry["report"])
        except (KeyError, ValueError, TypeError):
            self.metrics.inc("cache.misses")
            self.metrics.inc("cache.corrupt_entries")
            return None
        self.metrics.inc("cache.hits")
        report.from_cache = True
        return report

    # -- insert --------------------------------------------------------------

    def put(self, fingerprint: dict, report: CheckReport) -> None:
        """Store ``report`` under ``fingerprint``, evicting LRU.

        Single-entry mode writes the entry file atomically right away;
        batch mode buffers and flushes when the batch fills or the oldest
        buffered entry exceeds ``flush_age_s``. The report's own
        ``fingerprint`` field is stamped before serialization so the
        persisted verdict names its inputs even when read outside the
        cache.
        """
        if report.fingerprint is None:
            report.fingerprint = {
                key: fingerprint[key]
                for key in ("formula_sha256", "trace_sha256", "options_sha256", "key")
            }
        entry = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "key": fingerprint["key"],
            "formula_sha256": fingerprint["formula_sha256"],
            "trace_sha256": fingerprint["trace_sha256"],
            "options_sha256": fingerprint["options_sha256"],
            "report": report.to_json(),
        }
        if self.batch_size <= 1:
            self._write_entry_file(entry)
            self.metrics.inc("cache.stores")
            self._evict_over_bound()
            return
        flush_now = False
        with self._lock:
            self._pending[entry["key"]] = entry
            if self._pending_since is None:
                self._pending_since = time.monotonic()
            self.metrics.inc("cache.batched_stores")
            if (
                len(self._pending) >= self.batch_size
                or time.monotonic() - self._pending_since >= self.flush_age_s
            ):
                flush_now = True
        if flush_now:
            self.flush()

    def _write_entry_file(self, entry: dict) -> None:
        path = self._entry_path(entry["key"])
        tmp = f"{path}.tmp"
        body = json.dumps(entry, indent=2, sort_keys=True) + "\n"
        with open(tmp, "w", encoding="utf-8") as handle:
            faults.fault_write(FP_ENTRY_WRITE, handle, body, key=entry["key"])
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(self.cache_dir)

    def flush(self) -> None:
        """Write every buffered entry as one segment — a single atomic
        ``os.replace`` regardless of how many verdicts are pending."""
        with self._lock:
            if not self._pending:
                return
            pending, self._pending = self._pending, {}
            self._pending_since = None
        segment = self.cache_dir / f"seg-{time.time_ns():020d}-{os.getpid()}.jsonl"
        tmp = f"{segment}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for entry in pending.values():
                    line = json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
                    faults.fault_write(FP_SEGMENT_WRITE, handle, line, key=entry["key"])
                handle.flush()
                os.fsync(handle.fileno())
            faults.fault_point(FP_SEGMENT_RENAME)
            os.replace(tmp, segment)
        except Exception:
            # Disk full / injected write fault: put the verdicts back in the
            # buffer (newer wins on key collision) so nothing is lost while
            # the process lives, then surface the error to the caller.
            with self._lock:
                pending.update(self._pending)
                self._pending = pending
                if self._pending_since is None:
                    self._pending_since = time.monotonic()
            try:
                os.unlink(tmp)
            except OSError:
                pass
            self.metrics.inc("cache.flush_failures")
            raise
        fsync_dir(self.cache_dir)
        with self._lock:
            for key in pending:
                self._segment_index[key] = segment
            self._segment_entries[segment] = len(pending)
        self.metrics.inc("cache.flushes")
        self.metrics.inc("cache.stores", len(pending))
        self._evict_over_bound()

    def invalidate(self, key: str) -> bool:
        """Drop one entry (``--refresh`` uses this); True if it existed.

        A key living in a flushed segment is only dropped from the index
        (the segment file is shared); it resurfaces on reopen unless a
        newer entry overwrites it — which is exactly what ``--refresh``
        does next.
        """
        existed = False
        with self._lock:
            existed |= self._pending.pop(key, None) is not None
            existed |= self._segment_index.pop(key, None) is not None
        try:
            os.unlink(self._entry_path(key))
            existed = True
        except FileNotFoundError:
            pass
        return existed

    def _evict_over_bound(self) -> None:
        with self._lock:
            weights = {
                segment: max(1, count)
                for segment, count in self._segment_entries.items()
            }
        for path in self.cache_dir.glob("*.json"):
            weights[path] = 1
        excess = sum(weights.values()) - self.max_entries
        if excess <= 0:
            return
        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0
        for stale in sorted(weights, key=mtime):
            if excess <= 0:
                return
            try:
                os.unlink(stale)
            except OSError:
                continue
            excess -= weights[stale]
            self.metrics.inc("cache.evictions", weights[stale])
            if stale.suffix == ".jsonl":
                with self._lock:
                    self._segment_entries.pop(stale, None)
                    dropped = [
                        key
                        for key, segment in self._segment_index.items()
                        if segment == stale
                    ]
                    for key in dropped:
                        del self._segment_index[key]
