"""The content-addressed verdict cache.

Re-checking an already-validated trace should be a hash plus a file read,
not a resolution replay — the service's answer to Cruz-Filipe et al.'s
"preprocess once, reuse forever" economics. Entries are ``CheckReport``
JSON payloads keyed by the :func:`~repro.service.fingerprint.job_key`
over (formula, trace, options) digests.

Safety over speed, in order:

* an entry is only returned when its **stored component digests** match
  the requested ones — the key already encodes them, so this is a
  defense-in-depth re-check against truncated/tampered files;
* an entry whose ``schema_version`` differs from the running code's
  :data:`~repro.checker.report.REPORT_SCHEMA_VERSION` is rejected (and
  counted), never reinterpreted;
* writes are atomic (temp file + ``os.replace``), so a crashed writer
  leaves either the old entry or the new one, never a torn file;
* the store is LRU-bounded by entry count: hits refresh the entry's
  mtime, and inserts beyond ``max_entries`` evict the stalest files.

Unreadable or corrupt entries degrade to a miss. The cache never makes a
check fail; at worst it makes one redundant.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.checker.report import REPORT_SCHEMA_VERSION, CheckReport

from repro.service.metrics import MetricsRegistry

#: Default LRU bound. Verdict entries are small (a few KiB); 4096 of them
#: is megabytes, not a disk hazard.
DEFAULT_MAX_ENTRIES = 4096


class VerdictCache:
    """On-disk, content-addressed store of check verdicts."""

    def __init__(
        self,
        cache_dir: str | Path,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.metrics = metrics or MetricsRegistry()

    # -- paths ---------------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    # -- lookup --------------------------------------------------------------

    def get(self, fingerprint: dict) -> CheckReport | None:
        """Return the cached verdict for ``fingerprint``, or ``None``.

        ``fingerprint`` is the dict from
        :func:`repro.service.fingerprint.fingerprint_check` (the ``key``
        plus the three component digests). Every mismatch — absent file,
        unparseable JSON, wrong schema version, component digest
        disagreement — is a counted miss.
        """
        path = self._entry_path(fingerprint["key"])
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.metrics.inc("cache.misses")
            return None
        except (OSError, json.JSONDecodeError):
            self.metrics.inc("cache.misses")
            self.metrics.inc("cache.corrupt_entries")
            return None
        if entry.get("schema_version") != REPORT_SCHEMA_VERSION:
            self.metrics.inc("cache.misses")
            self.metrics.inc("cache.schema_rejects")
            return None
        for component in ("formula_sha256", "trace_sha256", "options_sha256"):
            if entry.get(component) != fingerprint[component]:
                self.metrics.inc("cache.misses")
                self.metrics.inc("cache.fingerprint_rejects")
                return None
        try:
            report = CheckReport.from_json(entry["report"])
        except (KeyError, ValueError, TypeError):
            self.metrics.inc("cache.misses")
            self.metrics.inc("cache.corrupt_entries")
            return None
        # LRU bookkeeping: a hit makes the entry the freshest.
        try:
            os.utime(path)
        except OSError:
            pass
        self.metrics.inc("cache.hits")
        report.from_cache = True
        return report

    # -- insert --------------------------------------------------------------

    def put(self, fingerprint: dict, report: CheckReport) -> None:
        """Store ``report`` under ``fingerprint``, atomically, evicting LRU.

        The report's own ``fingerprint`` field is stamped before
        serialization so the persisted verdict names its inputs even when
        read outside the cache.
        """
        if report.fingerprint is None:
            report.fingerprint = {
                key: fingerprint[key]
                for key in ("formula_sha256", "trace_sha256", "options_sha256", "key")
            }
        entry = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "key": fingerprint["key"],
            "formula_sha256": fingerprint["formula_sha256"],
            "trace_sha256": fingerprint["trace_sha256"],
            "options_sha256": fingerprint["options_sha256"],
            "report": report.to_json(),
        }
        path = self._entry_path(fingerprint["key"])
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        self.metrics.inc("cache.stores")
        self._evict_over_bound()

    def invalidate(self, key: str) -> bool:
        """Drop one entry (``--refresh`` uses this); True if it existed."""
        try:
            os.unlink(self._entry_path(key))
            return True
        except FileNotFoundError:
            return False

    def _evict_over_bound(self) -> None:
        entries = list(self.cache_dir.glob("*.json"))
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0
        for stale in sorted(entries, key=mtime)[:excess]:
            try:
                os.unlink(stale)
                self.metrics.inc("cache.evictions")
            except OSError:
                pass
