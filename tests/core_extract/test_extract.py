"""Unsat-core extraction tests (the Table 3 machinery)."""

import pytest

from repro.cnf import CnfFormula
from repro.core_extract import extract_core, iterate_core
from repro.solver.reference import reference_is_satisfiable

from tests.conftest import pigeonhole, random_3sat


def _padded_php(pigeons, holes, padding=10):
    """PHP plus `padding` satisfiable two-literal clauses on fresh variables."""
    base = pigeonhole(pigeons, holes)
    clauses = [list(c.literals) for c in base]
    next_var = base.num_vars + 1
    for _ in range(padding):
        clauses.append([next_var, next_var + 1])
        next_var += 2
    return CnfFormula(next_var - 1, clauses), base.num_clauses


def test_extract_core_is_unsat():
    formula = pigeonhole(5, 4)
    core = extract_core(formula)
    assert core.num_clauses > 0
    sub = formula.restrict_to(core.core_clause_ids)
    assert not reference_is_satisfiable(sub)


def test_extract_core_rejects_sat_formula():
    with pytest.raises(ValueError):
        extract_core(CnfFormula(2, [[1, 2]]))


def test_core_drops_padding():
    formula, base_clauses = _padded_php(4, 3, padding=12)
    core = extract_core(formula)
    assert all(cid <= base_clauses for cid in core.core_clause_ids)
    assert core.num_clauses <= base_clauses


def test_core_variable_count():
    formula = pigeonhole(3, 2)
    core = extract_core(formula)
    assert 0 < core.num_variables <= formula.num_vars


def test_iterate_reaches_fixed_point_quickly_on_php():
    # Pigeonhole proofs need every clause: fixed point at iteration 1 or 2.
    outcome = iterate_core(pigeonhole(4, 3), max_iterations=30)
    assert outcome.reached_fixed_point
    assert outcome.num_iterations <= 5
    sizes = [clauses for clauses, _ in outcome.iterations]
    assert sizes == sorted(sizes, reverse=True)  # monotonically non-increasing


def test_iterate_shrinks_padded_instance():
    formula, base_clauses = _padded_php(4, 3, padding=15)
    outcome = iterate_core(formula, max_iterations=30)
    first_clauses, _ = outcome.first_iteration
    assert first_clauses <= base_clauses  # padding gone immediately
    final_clauses, _ = outcome.final
    assert final_clauses <= first_clauses
    # The final core, as input-formula clause IDs, is genuinely UNSAT.
    sub = formula.restrict_to(outcome.final_core_ids)
    assert not reference_is_satisfiable(sub)


def test_iterate_core_respects_max_iterations():
    outcome = iterate_core(pigeonhole(4, 3), max_iterations=1)
    assert outcome.num_iterations == 1


def test_iteration_zero_reports_used_variables():
    # Declared header vars may exceed used vars (the paper's Table 3 note).
    formula = CnfFormula(10, [[1], [-1]])
    outcome = iterate_core(formula)
    assert outcome.iterations[0] == (2, 1)


def test_random_unsat_core_iteration():
    formula = random_3sat(20, 150, seed=4)
    outcome = iterate_core(formula, max_iterations=10)
    final_clauses, final_vars = outcome.final
    assert 0 < final_clauses <= formula.num_clauses
    sub = formula.restrict_to(outcome.final_core_ids)
    assert not reference_is_satisfiable(sub)
