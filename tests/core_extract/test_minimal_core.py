"""Minimal unsatisfiable subformula extraction."""

import pytest

from repro.cnf import CnfFormula
from repro.core_extract import minimal_core
from repro.solver.reference import reference_is_satisfiable

from tests.conftest import pigeonhole, random_3sat


def _assert_is_mus(formula, core_ids):
    """The defining property: UNSAT as-is, SAT after removing any clause."""
    core = formula.restrict_to(core_ids)
    assert not reference_is_satisfiable(core)
    ordered = sorted(core_ids)
    for drop in ordered:
        weakened = formula.restrict_to([cid for cid in ordered if cid != drop])
        assert reference_is_satisfiable(weakened), f"clause {drop} is redundant"


def test_contradictory_units():
    formula = CnfFormula(2, [[1], [2], [-1]])
    core = minimal_core(formula)
    assert core == {1, 3}
    _assert_is_mus(formula, core)


def test_php_core_is_already_minimal():
    formula = pigeonhole(3, 2)
    core = minimal_core(formula)
    assert core == set(range(1, formula.num_clauses + 1))
    _assert_is_mus(formula, core)


def test_padded_instance_minimizes_to_base():
    base = pigeonhole(3, 2)
    clauses = [list(c.literals) for c in base]
    clauses.append([7, 8])  # satisfiable padding on fresh variables
    clauses.append([-7, 8])
    formula = CnfFormula(8, clauses)
    core = minimal_core(formula)
    assert core <= set(range(1, base.num_clauses + 1))
    _assert_is_mus(formula, core)


@pytest.mark.parametrize("seed", [0, 3, 4])
def test_random_unsat_mus(seed):
    formula = random_3sat(12, 70, seed=seed)
    if reference_is_satisfiable(formula):
        pytest.skip("instance happened to be SAT")
    core = minimal_core(formula)
    assert core
    _assert_is_mus(formula, core)


def test_start_from_restricts_search():
    formula = CnfFormula(2, [[1], [2], [-1], [-2]])
    # Two disjoint MUSes: {1,3} and {2,4}; seeding picks which one.
    core = minimal_core(formula, start_from={2, 4})
    assert core == {2, 4}


def test_rejects_sat_formula():
    with pytest.raises(ValueError):
        minimal_core(CnfFormula(2, [[1, 2]]))
