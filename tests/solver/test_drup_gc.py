"""Solver DRUP output under learned-clause GC: deletions are logged and the
resulting proof (text or binary) still checks end-to-end.

Deletion lines are not cosmetic — a checker that replays the proof without
them holds every learned clause forever, so the solver must emit a ``d``
step for exactly the clauses its reduce pass drops, in either encoding.
"""

from __future__ import annotations

import pytest

from repro.checker import DratChecker, RupChecker
from repro.proofs import open_proof_writer, read_proof
from repro.solver import Solver, SolverConfig
from tests.conftest import pigeonhole

#: Aggressive GC: cap the learned database at 5 clauses so the reduce pass
#: fires constantly during the PHP refutation.
GC_CONFIG = dict(seed=0, min_learned_cap=5, max_learned_factor=0.0)


def _solve_with_proof(tmp_path, fmt):
    formula = pigeonhole(7, 6)
    proof = tmp_path / f"php.{'drat' if fmt == 'binary' else 'drup'}"
    writer = open_proof_writer(proof, fmt)
    result = Solver(formula, SolverConfig(**GC_CONFIG), drup_writer=writer).solve()
    writer.close()
    assert result.is_unsat
    return formula, proof


@pytest.mark.parametrize("fmt", ["text", "binary"])
def test_gc_emits_deletions(tmp_path, fmt):
    _, proof = _solve_with_proof(tmp_path, fmt)
    doc = read_proof(proof)
    assert doc.encoding == fmt
    assert doc.has_empty
    assert doc.num_deletes > 0, "GC ran but no deletions reached the proof"
    # Every deleted clause was added first (solver deletions are never bogus).
    live: list[tuple[int, ...]] = []
    for kind, literals in doc:
        key = tuple(sorted(literals))
        if kind == "add":
            live.append(key)
        else:
            assert key in live, f"deleted clause never added: {literals}"
            live.remove(key)


@pytest.mark.parametrize("fmt", ["text", "binary"])
def test_gc_proof_checks_with_drat(tmp_path, fmt):
    formula, proof = _solve_with_proof(tmp_path, fmt)
    report = DratChecker(formula, proof).check()
    assert report.verified, report.failure
    assert report.proof["deletions"] == read_proof(proof).num_deletes


def test_gc_proof_checks_with_rup(tmp_path):
    formula, proof = _solve_with_proof(tmp_path, "text")
    report = RupChecker(formula, proof).check()
    assert report.verified, report.failure


def test_gc_proof_encodings_agree(tmp_path):
    """Text and binary runs of the same seeded solve log identical steps."""
    docs = {}
    for fmt in ("text", "binary"):
        _, proof = _solve_with_proof(tmp_path, fmt)
        docs[fmt] = read_proof(proof).steps
    assert docs["text"] == docs["binary"]
