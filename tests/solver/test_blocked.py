"""Blocked clause elimination."""

import pytest

from repro.checker import BreadthFirstChecker, DepthFirstChecker, check_model
from repro.cnf import CnfFormula
from repro.solver import Solver, SolverConfig, solve_formula
from repro.solver.blocked import (
    BlockedClauseRecord,
    _resolvent_is_tautology,
    eliminate_blocked_clauses,
    repair_model,
)
from repro.solver.database import ClauseDatabase
from repro.solver.reference import reference_is_satisfiable
from repro.trace import InMemoryTraceWriter

from tests.conftest import pigeonhole, random_3sat


def _bce_config(**kwargs):
    return SolverConfig(preprocess_blocked_clause=True, **kwargs)


class TestBlockedDetection:
    def test_resolvent_tautology_check(self):
        assert _resolvent_is_tautology([1, 2], [-1, -2, 3], pivot=1)
        assert not _resolvent_is_tautology([1, 2], [-1, 3], pivot=1)

    def test_textbook_blocked_clause_removed(self):
        # C = (x | a) is blocked on x: the only clause with ~x is
        # (~x | ~a | b) and the resolvent (a | ~a | b) is tautological.
        formula = CnfFormula(3, [[1, 2], [-1, -2, 3], [2, 3]])
        db = ClauseDatabase.from_formula(formula)
        result = eliminate_blocked_clauses(db, is_assigned=lambda v: False)
        assert result.removed >= 1
        removed_sets = [set(r.literals) for r in result.records]
        assert {1, 2} in removed_sets

    def test_pure_literal_clause_is_blocked(self):
        # No clause contains ~x at all: vacuously blocked on x.
        formula = CnfFormula(2, [[1, 2]])
        db = ClauseDatabase.from_formula(formula)
        result = eliminate_blocked_clauses(db, is_assigned=lambda v: False)
        assert result.removed == 1
        assert not db.lits

    def test_unblocked_clause_stays(self):
        formula = CnfFormula(2, [[1, 2], [-1, 2], [1, -2], [-1, -2]])
        db = ClauseDatabase.from_formula(formula)
        result = eliminate_blocked_clauses(db, is_assigned=lambda v: False)
        assert result.removed == 0
        assert len(db.lits) == 4

    def test_assigned_variables_skipped(self):
        formula = CnfFormula(2, [[1, 2]])
        db = ClauseDatabase.from_formula(formula)
        result = eliminate_blocked_clauses(db, is_assigned=lambda v: v == 1)
        assert result.removed == 0


class TestModelRepair:
    def test_flips_blocking_literal_when_falsified(self):
        records = [BlockedClauseRecord([1, 2], blocking_literal=1)]
        model = {1: False, 2: False}
        repair_model(model, records)
        assert model[1] is True

    def test_leaves_satisfied_clause_alone(self):
        records = [BlockedClauseRecord([1, 2], blocking_literal=1)]
        model = {1: False, 2: True}
        repair_model(model, records)
        assert model[1] is False

    def test_reverse_order_respects_blockedness(self):
        # C = (1|2) blocked on 1 against D = (-1|-2|3) (resolvent has the
        # 2/-2 tautology); D itself removed later, blocked on 3. Repairing
        # in reverse order flips 1 for C without ever breaking D — the
        # tautology literal (-2) keeps D satisfied, which is exactly why
        # blockedness makes the flip safe.
        records = [
            BlockedClauseRecord([1, 2], blocking_literal=1),
            BlockedClauseRecord([-1, -2, 3], blocking_literal=3),
        ]
        model = {1: False, 2: False, 3: False}
        repair_model(model, records)
        assert model[1] is True  # C was falsified: blocking literal flipped
        assert model[3] is False  # D was satisfied both times: untouched
        # Both restored clauses hold under the repaired model.
        assert model[1] or model[2]
        assert (not model[1]) or (not model[2]) or model[3]


class TestSolverIntegration:
    @pytest.mark.parametrize("seed", range(12))
    def test_correctness_preserved(self, seed):
        formula = random_3sat(14, 56, seed=seed)
        expected = reference_is_satisfiable(formula)
        result = solve_formula(formula, _bce_config(seed=seed))
        assert result.is_sat == expected
        if result.is_sat:
            assert check_model(formula, result.model)

    def test_unsat_traces_still_check(self):
        formula = pigeonhole(5, 4)
        writer = InMemoryTraceWriter()
        result = solve_formula(formula, _bce_config(), trace_writer=writer)
        assert result.is_unsat
        trace = writer.to_trace()
        assert DepthFirstChecker(formula, trace).check().verified
        assert BreadthFirstChecker(formula, trace).check().verified

    @pytest.mark.parametrize("seed", range(8))
    def test_bce_and_ve_together(self, seed):
        formula = random_3sat(14, 56, seed=seed)
        expected = reference_is_satisfiable(formula)
        config = _bce_config(preprocess_elimination=True, seed=seed)
        result = solve_formula(formula, config)
        assert result.is_sat == expected
        if result.is_sat:
            assert check_model(formula, result.model)

    def test_records_exposed(self):
        formula = CnfFormula(2, [[1, 2]])
        solver = Solver(formula, _bce_config())
        result = solver.solve()
        assert result.is_sat
        assert solver.blocked_records  # the pure clause was removed
        assert check_model(formula, result.model)
