"""Assumption queries and verified failed-assumption cores."""

import pytest

from repro.cnf import CnfFormula
from repro.solver import SolverConfig
from repro.solver.assumptions import solve_with_assumptions
from repro.solver.reference import reference_is_satisfiable

from tests.conftest import pigeonhole, random_3sat


def test_sat_under_assumptions():
    formula = CnfFormula(3, [[1, 2], [-1, 3]])
    result = solve_with_assumptions(formula, [1])
    assert result.is_sat
    assert result.model[1] is True
    assert result.model[3] is True


def test_unsat_under_assumptions_blames_them():
    formula = CnfFormula(2, [[1, 2]])
    result = solve_with_assumptions(formula, [-1, -2])
    assert result.is_unsat
    assert result.proof_verified
    assert set(result.failed_assumptions) == {-1, -2}
    assert result.core_clause_ids == {1}


def test_unsat_without_assumptions_blames_none():
    formula = pigeonhole(4, 3)
    result = solve_with_assumptions(formula, [])
    assert result.is_unsat
    assert result.failed_assumptions == []
    assert result.core_clause_ids  # the formula core itself


def test_formula_unsat_alone_can_ignore_assumptions():
    formula = pigeonhole(4, 3)
    extra_var = formula.num_vars + 1
    result = solve_with_assumptions(formula, [extra_var])
    assert result.is_unsat
    # The proof never needs the irrelevant assumption.
    assert extra_var not in result.failed_assumptions


def test_only_relevant_assumptions_blamed():
    # (a -> x)(b -> y)(~x | ~a'): assuming a, b, a' where only a & a' clash.
    formula = CnfFormula(4, [[-1, 3], [-2, 4], [-3, -1]])
    result = solve_with_assumptions(formula, [1, 2])
    assert result.is_unsat
    assert result.failed_assumptions == [1]
    assert 2 not in result.failed_assumptions


def test_contradictory_assumptions_short_circuit():
    formula = CnfFormula(2, [[1, 2]])
    result = solve_with_assumptions(formula, [1, 2, -1])
    assert result.is_unsat
    assert set(result.failed_assumptions) == {1, -1}


def test_duplicate_assumptions_tolerated():
    formula = CnfFormula(2, [[1, 2]])
    result = solve_with_assumptions(formula, [1, 1])
    assert result.is_sat


def test_zero_assumption_rejected():
    with pytest.raises(ValueError):
        solve_with_assumptions(CnfFormula(1, [[1]]), [0])


def test_assumption_on_fresh_variable_grows_formula():
    formula = CnfFormula(2, [[1, 2]])
    result = solve_with_assumptions(formula, [5])
    assert result.is_sat
    assert result.model[5] is True


def test_budget_propagates():
    formula = pigeonhole(7, 6)
    result = solve_with_assumptions(formula, [], SolverConfig(max_conflicts=2))
    assert result.status == "UNKNOWN"


@pytest.mark.parametrize("seed", range(6))
def test_agrees_with_unit_clause_semantics(seed):
    formula = random_3sat(12, 40, seed=seed)
    assumptions = [1, -2]
    result = solve_with_assumptions(formula, assumptions, SolverConfig(seed=seed))
    augmented = CnfFormula(formula.num_vars)
    for clause in formula:
        augmented.add_clause(list(clause.literals))
    for lit in assumptions:
        augmented.add_clause([lit])
    assert result.is_sat == reference_is_satisfiable(augmented)


def test_incremental_style_sweep():
    """The EDA usage pattern: one formula, many assumption queries."""
    formula = pigeonhole(4, 4)  # SAT: 4 pigeons fit 4 holes

    def hole_var(pigeon, hole):
        return pigeon * 4 + hole + 1

    # Pinning each pigeon to hole 0 one at a time stays SAT...
    for pigeon in range(4):
        assert solve_with_assumptions(formula, [hole_var(pigeon, 0)]).is_sat
    # ...but two pigeons in hole 0 is UNSAT, and both pins get the blame.
    result = solve_with_assumptions(
        formula, [hole_var(0, 0), hole_var(1, 0)]
    )
    assert result.is_unsat
    assert set(result.failed_assumptions) == {hole_var(0, 0), hole_var(1, 0)}
