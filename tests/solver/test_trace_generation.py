"""Trace-generation requirements of §3.1: the three solver modifications."""

import pytest

from repro.cnf import CnfFormula
from repro.solver import SolverConfig, solve_formula
from repro.trace import InMemoryTraceWriter
from repro.trace.records import LearnedClause, LevelZeroAssignment

from tests.conftest import pigeonhole, random_3sat


def _solve_traced(formula, **config_kwargs):
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, SolverConfig(**config_kwargs), trace_writer=writer)
    return result, writer.to_trace()


def test_header_matches_formula(php54):
    _, trace = _solve_traced(php54)
    assert trace.header.num_vars == php54.num_vars
    assert trace.header.num_original_clauses == php54.num_clauses


def test_unsat_trace_has_final_conflict_and_result(php54):
    result, trace = _solve_traced(php54)
    assert result.is_unsat
    assert trace.status == "UNSAT"
    assert len(trace.final_conflicts) == 1


def test_sat_trace_claims_sat(small_sat):
    result, trace = _solve_traced(small_sat)
    assert result.is_sat
    assert trace.status == "SAT"
    assert not trace.final_conflicts


def test_learned_ids_continue_after_originals(php54):
    _, trace = _solve_traced(php54)
    assert trace.learned
    assert min(trace.learned) == php54.num_clauses + 1
    # IDs strictly increase in generation order.
    cids = list(trace.learned)
    assert cids == sorted(cids)


def test_resolve_sources_precede_their_clause(php54):
    _, trace = _solve_traced(php54)
    for record in trace.learned.values():
        assert all(source < record.cid for source in record.sources)
        assert len(record.sources) >= 2  # single-source clauses are not learned


def test_level_zero_entries_have_antecedents(php54):
    _, trace = _solve_traced(php54)
    assert trace.level_zero
    seen = set()
    for entry in trace.level_zero:
        assert entry.antecedent >= 1
        assert entry.var not in seen  # chronological trail: no duplicates
        seen.add(entry.var)


def test_final_conflict_clause_exists(php54):
    _, trace = _solve_traced(php54)
    final = trace.final_conflicts[0]
    assert final <= php54.num_clauses or final in trace.learned


def test_trivially_unsat_trace(trivially_unsat):
    result, trace = _solve_traced(trivially_unsat)
    assert result.is_unsat
    # x assigned by clause 1, clause 2 conflicts (or vice versa).
    assert len(trace.level_zero) == 1
    assert trace.num_learned == 0


def test_input_empty_clause_trace():
    formula = CnfFormula(1, [[1]])
    empty_cid = formula.add_clause([]).cid
    result, trace = _solve_traced(formula)
    assert result.is_unsat
    assert trace.final_conflicts[0] == empty_cid
    assert not trace.level_zero


def test_trace_unaffected_by_clause_deletion():
    # Even with aggressive deletion the trace remains checkable-complete:
    # records are written at learn time.
    formula = pigeonhole(7, 6)
    result, trace = _solve_traced(formula, min_learned_cap=20, max_learned_factor=0.0)
    assert result.is_unsat
    assert result.stats.deleted_clauses > 0
    assert trace.num_learned == result.stats.learned_clauses


def test_trace_with_restarts():
    formula = pigeonhole(6, 5)
    result, trace = _solve_traced(formula, restart_first=2, restart_inc=1.1)
    assert result.is_unsat
    assert result.stats.restarts > 0
    assert trace.status == "UNSAT"


def test_learned_count_matches_stats():
    formula = random_3sat(30, 150, seed=5)
    result, trace = _solve_traced(formula)
    if result.is_unsat:
        assert trace.num_learned == result.stats.learned_clauses


def test_tracing_does_not_change_search():
    formula = pigeonhole(6, 5)
    with_trace, _ = _solve_traced(formula)
    without_trace = solve_formula(formula, SolverConfig())
    assert with_trace.stats.decisions == without_trace.stats.decisions
    assert with_trace.stats.conflicts == without_trace.stats.conflicts
