"""Solver behaviour: SAT/UNSAT answers, models, budgets, determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnf import CnfFormula
from repro.solver import SAT, UNKNOWN, UNSAT, Solver, SolverConfig, solve_formula
from repro.solver.reference import reference_is_satisfiable
from repro.checker import check_model

from tests.conftest import pigeonhole, random_3sat, xor_chain


def test_empty_formula_is_sat():
    result = solve_formula(CnfFormula(0))
    assert result.status == SAT
    assert result.model == {}


def test_single_unit_clause():
    result = solve_formula(CnfFormula(1, [[1]]))
    assert result.status == SAT
    assert result.model[1] is True


def test_contradictory_units(trivially_unsat):
    result = solve_formula(trivially_unsat)
    assert result.status == UNSAT
    assert result.model is None


def test_input_empty_clause_is_unsat():
    formula = CnfFormula(2, [[1, 2]])
    formula.add_clause([])
    assert solve_formula(formula).status == UNSAT


def test_sat_model_satisfies_formula(small_sat):
    result = solve_formula(small_sat)
    assert result.status == SAT
    assert check_model(small_sat, result.model)


def test_model_covers_all_variables():
    formula = CnfFormula(5, [[1, 2]])  # vars 3..5 unused
    result = solve_formula(formula)
    assert set(result.model) == {1, 2, 3, 4, 5}


def test_pigeonhole_unsat(php54):
    result = solve_formula(php54)
    assert result.status == UNSAT
    assert result.stats.conflicts > 0


def test_pigeonhole_sat_when_holes_suffice():
    result = solve_formula(pigeonhole(4, 4))
    assert result.status == SAT


def test_xor_chain_unsat():
    assert solve_formula(xor_chain(9, parity=True)).status == UNSAT


def test_xor_chain_sat():
    result = solve_formula(xor_chain(9, parity=False))
    assert result.status == SAT


def test_solver_is_single_shot(small_sat):
    solver = Solver(small_sat)
    solver.solve()
    with pytest.raises(RuntimeError):
        solver.solve()


def test_conflict_budget_returns_unknown():
    formula = pigeonhole(7, 6)
    config = SolverConfig(max_conflicts=3)
    result = solve_formula(formula, config)
    assert result.status == UNKNOWN
    assert result.stats.conflicts == 3


def test_decision_budget_returns_unknown():
    formula = pigeonhole(7, 6)
    config = SolverConfig(max_decisions=2)
    result = solve_formula(formula, config)
    assert result.status == UNKNOWN


def test_determinism_same_seed():
    formula = random_3sat(40, 170, seed=7)
    first = solve_formula(formula, SolverConfig(seed=3))
    second = solve_formula(formula, SolverConfig(seed=3))
    assert first.status == second.status
    assert first.stats.decisions == second.stats.decisions
    assert first.stats.conflicts == second.stats.conflicts


def test_stats_populated(php54):
    stats = solve_formula(php54).stats
    assert stats.decisions > 0
    assert stats.propagations > 0
    assert stats.solve_time >= 0.0
    assert set(stats.as_dict()) >= {"decisions", "conflicts", "learned_clauses"}


@pytest.mark.parametrize("policy", ["geometric", "luby", "none"])
def test_restart_policies_all_complete(policy):
    formula = pigeonhole(6, 5)
    config = SolverConfig(restart_policy=policy, restart_first=5, luby_unit=4)
    assert solve_formula(formula, config).status == UNSAT


def test_random_decisions_still_correct():
    formula = pigeonhole(5, 4)
    config = SolverConfig(random_decision_freq=0.3, seed=11)
    assert solve_formula(formula, config).status == UNSAT


def test_clause_deletion_exercised():
    # A small learned-clause cap forces reductions without losing soundness.
    formula = pigeonhole(7, 6)
    config = SolverConfig(min_learned_cap=20, max_learned_factor=0.0)
    result = solve_formula(formula, config)
    assert result.status == UNSAT
    assert result.stats.deleted_clauses > 0


@pytest.mark.parametrize("seed", range(12))
def test_agrees_with_reference_on_random_3sat(seed):
    # Around the phase transition ratio 4.3 both answers occur.
    formula = random_3sat(18, 77, seed=seed)
    expected = reference_is_satisfiable(formula)
    result = solve_formula(formula, SolverConfig(seed=seed))
    assert result.is_sat == expected
    if result.is_sat:
        assert check_model(formula, result.model)


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    num_vars=st.integers(min_value=1, max_value=12),
)
def test_agrees_with_reference_property(data, num_vars):
    lit = st.integers(min_value=-num_vars, max_value=num_vars).filter(lambda x: x != 0)
    clauses = data.draw(
        st.lists(st.lists(lit, min_size=1, max_size=4), min_size=1, max_size=40)
    )
    formula = CnfFormula(num_vars, clauses)
    expected = reference_is_satisfiable(formula)
    result = solve_formula(formula)
    assert result.is_sat == expected
    if result.is_sat:
        assert check_model(formula, result.model)


def test_config_validation():
    with pytest.raises(ValueError):
        SolverConfig(var_decay=0.0)
    with pytest.raises(ValueError):
        SolverConfig(restart_inc=0.9)
    with pytest.raises(ValueError):
        SolverConfig(restart_policy="chaotic")
    with pytest.raises(ValueError):
        SolverConfig(random_decision_freq=1.5)
