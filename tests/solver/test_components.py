"""Unit tests for solver internals: database, VSIDS, restarts, conflict analysis."""

import pytest

from repro.cnf import Assignment, CnfFormula
from repro.solver.conflict import analyze_conflict
from repro.solver.database import ClauseDatabase
from repro.solver.restarts import (
    GeometricRestartPolicy,
    LubyRestartPolicy,
    NoRestartPolicy,
    make_restart_policy,
)
from repro.solver.vsids import VsidsHeuristic


class TestClauseDatabase:
    def test_from_formula_numbers_clauses(self):
        formula = CnfFormula(3, [[1, 2], [-2, 3]])
        db = ClauseDatabase.from_formula(formula)
        assert db.num_original == 2
        assert db.clause_literals(1) == [1, 2]
        assert db.clause_literals(2) == [-2, 3]

    def test_special_original_clauses_tracked(self):
        db = ClauseDatabase(3)
        unit = db.add_original([2])
        empty = db.add_original([])
        assert db.unit_originals == [unit]
        assert db.empty_original == empty

    def test_watches_attached_to_first_two_literals(self):
        db = ClauseDatabase(4)
        cid = db.add_original([1, -2, 3])
        assert cid in db.watchers_of(1)
        assert cid in db.watchers_of(-2)
        assert cid not in db.watchers_of(3)

    def test_learned_ids_continue_numbering(self):
        db = ClauseDatabase(3)
        db.add_original([1, 2])
        learned = db.add_learned([-1, 3])
        assert learned == 2
        assert db.is_learned(learned)
        assert not db.is_learned(1)

    def test_reduce_learned_respects_locked_and_binary(self):
        db = ClauseDatabase(6)
        db.add_original([1, 2])
        locked = db.add_learned([-1, 2, 3])
        low_activity = db.add_learned([-2, 3, 4])
        binary = db.add_learned([5, 6])
        db.bump_clause(locked)
        deleted = db.reduce_learned(locked={locked})
        assert deleted == [(low_activity, [-2, 3, 4])]
        assert locked in db
        assert binary in db
        assert low_activity not in db

    def test_deleted_clause_detached_from_watches(self):
        db = ClauseDatabase(4)
        db.add_original([1, 2])
        cid = db.add_learned([-1, 3, 4])
        db.reduce_learned(locked=set())
        assert cid not in db.watchers_of(-1)
        assert cid not in db.watchers_of(3)

    def test_activity_rescale(self):
        db = ClauseDatabase(3)
        cid = db.add_learned([1, 2, 3])
        db.cla_inc = 1e100
        db.bump_clause(cid)
        assert db.activity[cid] < 1e100


class TestVsids:
    def test_picks_unassigned_variable(self):
        heuristic = VsidsHeuristic(3)
        assignment = Assignment(3)
        assignment.assign(1)
        assignment.assign(2)
        lit = heuristic.pick_branch(assignment)
        assert abs(lit) == 3

    def test_highest_activity_wins(self):
        heuristic = VsidsHeuristic(5)
        assignment = Assignment(5)
        heuristic.bump(4)
        heuristic.bump(4)
        heuristic.bump(2)
        assert abs(heuristic.pick_branch(assignment)) == 4

    def test_all_assigned_returns_none(self):
        heuristic = VsidsHeuristic(2)
        assignment = Assignment(2)
        assignment.assign(1)
        assignment.assign(-2)
        assert heuristic.pick_branch(assignment) is None

    def test_phase_saving(self):
        heuristic = VsidsHeuristic(2, default_phase=False)
        assignment = Assignment(2)
        heuristic.bump(1)
        assert heuristic.pick_branch(assignment) == -1  # default negative
        heuristic.save_phase(1)
        heuristic.requeue(1)
        assert heuristic.pick_branch(assignment) == 1  # remembered positive

    def test_decay_keeps_relative_order(self):
        heuristic = VsidsHeuristic(3)
        heuristic.bump(1)
        heuristic.decay()
        heuristic.bump(2)  # post-decay bump outweighs the earlier one
        assignment = Assignment(3)
        assert abs(heuristic.pick_branch(assignment)) == 2

    def test_activity_rescale(self):
        heuristic = VsidsHeuristic(2)
        heuristic.var_inc = 1e100
        heuristic.bump(1)
        heuristic.bump(1)
        assert heuristic.activity[1] < 1e100

    def test_random_decisions_deterministic_by_seed(self):
        picks_a = []
        picks_b = []
        for picks, seed in ((picks_a, 9), (picks_b, 9)):
            heuristic = VsidsHeuristic(10, random_freq=1.0, seed=seed)
            assignment = Assignment(10)
            for _ in range(5):
                lit = heuristic.pick_branch(assignment)
                picks.append(lit)
                assignment.assign(lit)
        assert picks_a == picks_b


class TestRestartPolicies:
    def test_no_restart(self):
        assert not NoRestartPolicy().should_restart(10**9)

    def test_geometric_growth(self):
        policy = GeometricRestartPolicy(first=10, inc=2.0)
        assert not policy.should_restart(9)
        assert policy.should_restart(10)
        policy.on_restart()
        assert not policy.should_restart(19)
        assert policy.should_restart(20)

    def test_geometric_validation(self):
        with pytest.raises(ValueError):
            GeometricRestartPolicy(first=0)
        with pytest.raises(ValueError):
            GeometricRestartPolicy(inc=0.5)

    def test_luby_sequence_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [LubyRestartPolicy.luby(i) for i in range(1, 16)] == expected

    def test_luby_policy_advances(self):
        policy = LubyRestartPolicy(unit=2)
        assert policy.should_restart(2)
        policy.on_restart()
        assert policy.should_restart(2)
        policy.on_restart()
        assert not policy.should_restart(2)  # third element is 2 -> needs 4
        assert policy.should_restart(4)

    def test_factory(self):
        assert isinstance(make_restart_policy("none"), NoRestartPolicy)
        assert isinstance(make_restart_policy("geometric"), GeometricRestartPolicy)
        assert isinstance(make_restart_policy("luby"), LubyRestartPolicy)
        with pytest.raises(ValueError):
            make_restart_policy("fibonacci")


class TestConflictAnalysis:
    def _setup(self):
        """Hand-built scenario with a conflict at decision level 2.

        Clauses: c1 = (-1, 2), c2 = (-1, -3, 4), c3 = (-2, -4, 5),
        c4 = (-4, -5). Decisions: x1@1, x3@2. BCP at level 2: c2 implies
        x4, c3 implies x5, c4 conflicts.
        """
        formula = CnfFormula(5, [[-1, 2], [-1, -3, 4], [-2, -4, 5], [-4, -5]])
        db = ClauseDatabase.from_formula(formula)
        assignment = Assignment(5)
        assignment.new_decision_level()
        assignment.assign(1)
        assignment.assign(2, antecedent=1)
        assignment.new_decision_level()
        assignment.assign(3)
        assignment.assign(4, antecedent=2)
        assignment.assign(5, antecedent=3)
        return db, assignment

    def test_first_uip(self):
        db, assignment = self._setup()
        analysis = analyze_conflict(4, db, assignment)
        # Resolving c4 with c3 (pivot x5) gives (-2, -4): x4 is the 1-UIP.
        assert analysis.asserting_literal == -4
        assert set(analysis.learned_literals) == {-2, -4}
        assert analysis.sources == [4, 3]
        assert analysis.backtrack_level == 1

    def test_sources_order_resolves_cleanly(self):
        from repro.checker.resolution import resolve_chain

        db, assignment = self._setup()
        analysis = analyze_conflict(4, db, assignment)
        chain = [(cid, frozenset(db.clause_literals(cid))) for cid in analysis.sources]
        assert resolve_chain(chain) == frozenset(analysis.learned_literals)

    def test_rejects_level_zero(self):
        db, assignment = self._setup()
        assignment.backtrack(0)
        with pytest.raises(ValueError):
            analyze_conflict(4, db, assignment)

    def test_bump_callbacks_invoked(self):
        db, assignment = self._setup()
        bumped_vars: list[int] = []
        bumped_clauses: list[int] = []
        analyze_conflict(
            4, db, assignment,
            bump_var=bumped_vars.append,
            bump_clause=bumped_clauses.append,
        )
        assert 4 in bumped_vars and 5 in bumped_vars
        assert bumped_clauses[0] == 4  # the conflicting clause
