"""Watched-literal BCP invariants.

After every successful propagation pass, no clause in the database may be
conflicting (all literals false) or unit (one unassigned, rest false) —
otherwise the watching scheme silently missed work, which is the classic
two-watched-literal bug class.
"""

import pytest

from repro.cnf import FALSE, UNASSIGNED
from repro.solver import Solver, SolverConfig
from repro.solver.reference import reference_is_satisfiable

from tests.conftest import pigeonhole, random_3sat, xor_chain


class InvariantCheckingSolver(Solver):
    """Checks BCP completeness after every quiescent propagation."""

    checks = 0

    def _propagate(self):
        conflict = super()._propagate()
        if conflict is None:
            self._assert_no_missed_work()
        return conflict

    def _assert_no_missed_work(self):
        type(self).checks += 1
        for cid, literals in self.db.lits.items():
            statuses = [self.assignment.value_of_lit(lit) for lit in literals]
            if any(status not in (FALSE, UNASSIGNED) for status in statuses):
                continue  # clause satisfied
            unassigned = statuses.count(UNASSIGNED)
            assert unassigned != 0, f"clause {cid} conflicting but BCP returned quiescent"
            assert unassigned != 1, f"clause {cid} unit but BCP returned quiescent"


@pytest.mark.parametrize("seed", range(8))
def test_no_missed_propagation_random(seed):
    formula = random_3sat(16, 68, seed=seed)
    InvariantCheckingSolver.checks = 0
    solver = InvariantCheckingSolver(formula, SolverConfig(seed=seed))
    result = solver.solve()
    assert InvariantCheckingSolver.checks > 0
    assert result.is_sat == reference_is_satisfiable(formula)


def test_no_missed_propagation_php():
    solver = InvariantCheckingSolver(pigeonhole(5, 4), SolverConfig())
    assert solver.solve().is_unsat


def test_no_missed_propagation_with_deletion_and_restarts():
    config = SolverConfig(min_learned_cap=10, max_learned_factor=0.0, restart_first=3)
    solver = InvariantCheckingSolver(pigeonhole(5, 4), config)
    assert solver.solve().is_unsat


def test_no_missed_propagation_with_elimination():
    config = SolverConfig(preprocess_elimination=True)
    solver = InvariantCheckingSolver(xor_chain(11, parity=True), config)
    assert solver.solve().is_unsat


def test_no_missed_propagation_with_minimization():
    config = SolverConfig(minimize_learned=True)
    solver = InvariantCheckingSolver(pigeonhole(5, 4), config)
    assert solver.solve().is_unsat
